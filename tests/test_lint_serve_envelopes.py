"""Wire ``tools/check_serve_envelopes.py`` into the suite.

The serving dispatch layer may only raise :class:`ServeError` subclasses
defined in ``repro/serve/errors.py`` — that is what guarantees every
client-visible failure is a structured envelope, not a traceback.  The
lint also keeps the ``OPS`` table and the ``_op_*`` dispatchers in exact
agreement.
"""

import textwrap

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_serve_envelopes", ROOT / "tools" / "check_serve_envelopes.py"
)
check_serve_envelopes = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_serve_envelopes)


FAKE_ERRORS = textwrap.dedent(
    """
    class ServeError(Exception):
        pass

    class BoomError(ServeError):
        pass

    class NestedError(BoomError):
        pass
    """
)


def _write(tmp_path, errors_src, server_src):
    errors_path = tmp_path / "errors.py"
    server_path = tmp_path / "server.py"
    errors_path.write_text(errors_src)
    server_path.write_text(textwrap.dedent(server_src))
    return server_path, errors_path


def test_real_server_is_clean():
    assert check_serve_envelopes.check() == []


def test_error_registry_includes_resilience_codes():
    names = check_serve_envelopes.serve_error_classes()
    assert {"OverloadedError", "NotReadyError", "DeadlineExceededError",
            "SnapshotError", "RolloutError"} <= names


def test_transitive_subclasses_are_allowed(tmp_path):
    server_path, errors_path = _write(
        tmp_path, FAKE_ERRORS,
        """
        class EmbeddingServer:
            OPS = {"embed": "_op_embed"}

            def _op_embed(self, request, version_id, deadline):
                raise NestedError("fine: subclass of a subclass")
        """,
    )
    assert check_serve_envelopes.check(server_path, errors_path) == []


def test_flags_non_serve_error_raise(tmp_path):
    server_path, errors_path = _write(
        tmp_path, FAKE_ERRORS,
        """
        class EmbeddingServer:
            OPS = {"embed": "_op_embed"}

            def _op_embed(self, request, version_id, deadline):
                raise ValueError("raw")
        """,
    )
    findings = check_serve_envelopes.check(server_path, errors_path)
    assert len(findings) == 1 and "ValueError" in findings[0]


def test_flags_bare_raise(tmp_path):
    server_path, errors_path = _write(
        tmp_path, FAKE_ERRORS,
        """
        class EmbeddingServer:
            OPS = {"embed": "_op_embed"}

            def _op_embed(self, request, version_id, deadline):
                try:
                    return {}
                except KeyError:
                    raise
        """,
    )
    findings = check_serve_envelopes.check(server_path, errors_path)
    assert len(findings) == 1 and "bare 'raise'" in findings[0]


def test_flags_op_with_missing_method(tmp_path):
    server_path, errors_path = _write(
        tmp_path, FAKE_ERRORS,
        """
        class EmbeddingServer:
            OPS = {"embed": "_op_embed", "ghost": "_op_ghost"}

            def _op_embed(self, request, version_id, deadline):
                return {}
        """,
    )
    findings = check_serve_envelopes.check(server_path, errors_path)
    assert len(findings) == 1 and "_op_ghost" in findings[0]


def test_flags_orphan_dispatcher(tmp_path):
    server_path, errors_path = _write(
        tmp_path, FAKE_ERRORS,
        """
        class EmbeddingServer:
            OPS = {"embed": "_op_embed"}

            def _op_embed(self, request, version_id, deadline):
                return {}

            def _op_orphan(self, request, version_id, deadline):
                return {}
        """,
    )
    findings = check_serve_envelopes.check(server_path, errors_path)
    assert len(findings) == 1 and "_op_orphan" in findings[0]


def test_helpers_are_checked_too(tmp_path):
    server_path, errors_path = _write(
        tmp_path, FAKE_ERRORS,
        """
        class EmbeddingServer:
            OPS = {"embed": "_op_embed"}

            def _op_embed(self, request, version_id, deadline):
                return {}

            def _dispatch(self, op, version_id, request, deadline):
                raise RuntimeError("raw in helper")
        """,
    )
    findings = check_serve_envelopes.check(server_path, errors_path)
    assert len(findings) == 1 and "RuntimeError" in findings[0]
