"""The Def. 1 objective: incremental evaluator vs direct evaluation.

The central invariant: ``RepresentativityObjective`` (sorted-suffix
incremental version used by Alg. 2) must produce *exactly* the same costs
as the direct O(n·k) evaluation of Eq. 14 — for any selection sequence.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RepresentativityObjective,
    build_cluster_model,
    representativity_cost,
)


def model_from(seed, n=40, d=4, clusters=5):
    rng = np.random.default_rng(seed)
    r = rng.normal(size=(n, d))
    return build_cluster_model(r, clusters, rng=rng)


class TestClusterModel:
    def test_members_partition_nodes(self):
        model = model_from(0)
        all_members = np.sort(np.concatenate(model.members))
        np.testing.assert_array_equal(all_members, np.arange(40))

    def test_d_max_is_max_member_distance(self):
        model = model_from(1)
        for i, mem in enumerate(model.members):
            if mem.size:
                dists = np.linalg.norm(model.r[mem] - model.centers[i], axis=1)
                assert model.d_max[i] == pytest.approx(dists.max())

    def test_center_distances_shape_and_values(self):
        model = model_from(2)
        manual = np.linalg.norm(model.r[:, None, :] - model.centers[None, :, :], axis=2)
        np.testing.assert_allclose(model.center_distances, manual, atol=1e-9)


class TestIncrementalEqualsDirect:
    def test_cost_matches_after_each_addition(self):
        model = model_from(3)
        objective = RepresentativityObjective(model)
        rng = np.random.default_rng(0)
        selection = rng.choice(40, size=10, replace=False)
        for v in selection:
            objective.add(int(v))
            direct = representativity_cost(model, objective.selected)
            assert objective.cost() == pytest.approx(direct, rel=1e-9)

    def test_marginal_gain_matches_cost_difference(self):
        model = model_from(4)
        objective = RepresentativityObjective(model)
        rng = np.random.default_rng(1)
        for v in rng.choice(40, size=8, replace=False):
            predicted_gain = objective.marginal_gain(int(v))
            realized = objective.add(int(v))
            assert predicted_gain == pytest.approx(realized, rel=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500), st.integers(1, 8))
    def test_property_incremental_equals_direct(self, seed, num_adds):
        model = model_from(seed, n=25, clusters=4)
        objective = RepresentativityObjective(model)
        rng = np.random.default_rng(seed + 1)
        for v in rng.choice(25, size=num_adds, replace=False):
            objective.add(int(v))
        direct = representativity_cost(model, objective.selected)
        assert objective.cost() == pytest.approx(direct, rel=1e-9)


class TestObjectiveProperties:
    def test_gains_are_nonnegative(self):
        model = model_from(5)
        objective = RepresentativityObjective(model)
        for v in range(15):
            assert objective.marginal_gain(v) >= -1e-9

    def test_cost_monotonically_decreases(self):
        model = model_from(6)
        objective = RepresentativityObjective(model)
        previous = objective.cost()
        for v in np.random.default_rng(2).choice(40, size=12, replace=False):
            objective.add(int(v))
            current = objective.cost()
            assert current <= previous + 1e-9
            previous = current

    def test_selecting_all_nodes_gives_zero_intra_distance(self):
        model = model_from(7, n=15, clusters=3)
        objective = RepresentativityObjective(model)
        for v in range(15):
            objective.add(v)
        # Every node is selected, so each covers itself at distance 0.
        assert objective.eff.max() == pytest.approx(0.0, abs=1e-12)

    def test_duplicate_add_gains_nothing(self):
        model = model_from(8)
        objective = RepresentativityObjective(model)
        objective.add(3)
        assert objective.marginal_gain(3) == pytest.approx(0.0, abs=1e-9)

    def test_empty_selection_cost_is_cap_times_n(self):
        model = model_from(9)
        objective = RepresentativityObjective(model)
        assert objective.cost() == pytest.approx(40 * objective.unrepresented_cost)

    def test_same_cluster_node_reduces_own_cluster(self):
        """Adding a node must cover its cluster-mates via exact distances."""
        model = model_from(10)
        objective = RepresentativityObjective(model)
        candidate = int(model.members[0][0])
        objective.add(candidate)
        mates = model.members[0]
        assert objective.eff[mates].max() < objective.unrepresented_cost


class TestChunkedGains:
    """``marginal_gains`` must be exact regardless of the memory budget that
    slices the candidate batch (up to summation-order float noise), and the
    incremental ``add`` path it feeds must keep agreeing with the direct
    Eq. 14 evaluation."""

    def test_tiny_budget_matches_default(self):
        model = model_from(7)
        candidates = np.arange(40)
        unchunked = RepresentativityObjective(model).marginal_gains(candidates)
        one_at_a_time = RepresentativityObjective(
            model, gain_budget_bytes=1
        ).marginal_gains(candidates)
        np.testing.assert_allclose(one_at_a_time, unchunked, rtol=1e-7, atol=1e-9)

    def test_chunked_gains_match_scalar_after_adds(self):
        model = model_from(8)
        objective = RepresentativityObjective(model, gain_budget_bytes=2048)
        for v in (3, 17, 29):
            objective.add(v)
        gains = objective.marginal_gains(np.arange(40))
        for v in range(40):
            assert gains[v] == pytest.approx(objective.marginal_gain(v), rel=1e-7, abs=1e-9)

    def test_incremental_add_matches_direct_cost_under_tiny_budget(self):
        model = model_from(9)
        objective = RepresentativityObjective(model, gain_budget_bytes=1)
        rng = np.random.default_rng(5)
        for v in rng.choice(40, size=12, replace=False):
            gains = objective.marginal_gains(np.arange(40))
            best = int(np.argmax(gains))
            realized = objective.add(best)
            assert realized == pytest.approx(gains[best], rel=1e-9, abs=1e-9)
            assert objective.cost() == pytest.approx(
                representativity_cost(model, objective.selected), rel=1e-9
            )

    def test_empty_candidate_batch(self):
        objective = RepresentativityObjective(model_from(10))
        assert objective.marginal_gains(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            RepresentativityObjective(model_from(11), gain_budget_bytes=0)
