"""E2GCLConfig validation and ablation derivation."""

import pytest

from repro.core import E2GCLConfig, ablation_config


class TestValidation:
    def test_defaults_valid(self):
        E2GCLConfig()

    def test_node_ratio_bounds(self):
        with pytest.raises(ValueError):
            E2GCLConfig(node_ratio=0.0)
        with pytest.raises(ValueError):
            E2GCLConfig(node_ratio=1.5)
        E2GCLConfig(node_ratio=1.0)  # all nodes is legal

    def test_unknown_loss_rejected(self):
        with pytest.raises(ValueError):
            E2GCLConfig(loss="triplet")

    def test_negative_tau_rejected(self):
        with pytest.raises(ValueError):
            E2GCLConfig(tau_hat=-0.1)

    def test_epochs_positive(self):
        with pytest.raises(ValueError):
            E2GCLConfig(epochs=0)

    def test_layers_positive(self):
        with pytest.raises(ValueError):
            E2GCLConfig(num_layers=0)


class TestBudget:
    def test_budget_formula(self):
        assert E2GCLConfig(node_ratio=0.4).budget_for(1000) == 400

    def test_budget_minimum_two(self):
        assert E2GCLConfig(node_ratio=0.01).budget_for(10) == 2


class TestOverrides:
    def test_with_overrides_returns_new_config(self):
        base = E2GCLConfig()
        derived = base.with_overrides(epochs=99)
        assert derived.epochs == 99
        assert base.epochs != 99

    def test_with_overrides_validates(self):
        with pytest.raises(ValueError):
            E2GCLConfig().with_overrides(loss="bogus")


class TestAblationVariants:
    def test_table6_variants(self):
        base = E2GCLConfig()
        au = ablation_config(base, "A,U")
        assert not au.use_coreset and not au.edge_aware and not au.feature_aware
        si = ablation_config(base, "S,I")
        assert si.use_coreset and si.edge_aware and si.feature_aware
        su = ablation_config(base, "S,U")
        assert su.use_coreset and not su.edge_aware
        ai = ablation_config(base, "A,I")
        assert not ai.use_coreset and ai.edge_aware

    def test_table8_variants(self):
        base = E2GCLConfig()
        no_both = ablation_config(base, "\\F\\S")
        assert not no_both.edge_aware and not no_both.feature_aware
        no_s = ablation_config(base, "\\S")
        assert not no_s.edge_aware and no_s.feature_aware
        no_f = ablation_config(base, "\\F")
        assert no_f.edge_aware and not no_f.feature_aware

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            ablation_config(E2GCLConfig(), "X,Y")
