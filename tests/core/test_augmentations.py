"""The eight primitive operations and the Prop. 1 constructive proof."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALL_OPERATIONS,
    MINIMAL_OPERATIONS,
    add_edges,
    add_nodes,
    apply_view_plan,
    drop_edges,
    drop_features,
    drop_nodes,
    express_with_minimal_ops,
    mask_features,
    perturb_features,
    subgraph_sample,
)
from repro.graphs import load_dataset, random_graph


@pytest.fixture
def graph():
    return random_graph(25, 0.2, seed=3, num_features=5)


class TestEdgeOps:
    def test_drop_edges_rate_zero_identity(self, graph, rng):
        view = drop_edges(graph, 0.0, rng)
        assert view.num_edges == graph.num_edges

    def test_drop_edges_rate_one_removes_all(self, graph, rng):
        assert drop_edges(graph, 1.0, rng).num_edges == 0

    def test_drop_edges_only_removes(self, graph, rng):
        view = drop_edges(graph, 0.4, rng)
        original = {tuple(e) for e in graph.edge_array()}
        assert {tuple(e) for e in view.edge_array()} <= original

    def test_drop_edges_invalid_rate(self, graph, rng):
        with pytest.raises(ValueError):
            drop_edges(graph, 1.5, rng)

    def test_add_edges_only_adds(self, graph, rng):
        view = add_edges(graph, 0.3, rng)
        original = {tuple(e) for e in graph.edge_array()}
        assert original <= {tuple(e) for e in view.edge_array()}
        assert view.num_edges > graph.num_edges

    def test_add_edges_rate_zero_identity(self, graph, rng):
        assert add_edges(graph, 0.0, rng).num_edges == graph.num_edges

    def test_add_edges_view_valid(self, graph, rng):
        add_edges(graph, 0.5, rng).validate()


class TestNodeOps:
    def test_drop_nodes_count(self, graph, rng):
        view, kept = drop_nodes(graph, 0.2, rng)
        assert view.num_nodes == 20
        assert kept.shape == (20,)

    def test_drop_nodes_features_follow(self, graph, rng):
        view, kept = drop_nodes(graph, 0.2, rng)
        np.testing.assert_allclose(view.features, graph.features[kept])

    def test_add_nodes_appends(self, graph, rng):
        view = add_nodes(graph, 3, rng)
        assert view.num_nodes == 28
        view.validate()

    def test_add_nodes_zero_is_copy(self, graph, rng):
        view = add_nodes(graph, 0, rng)
        assert view.num_nodes == graph.num_nodes

    def test_subgraph_sample_size(self, graph, rng):
        view, mapping = subgraph_sample(graph, 0.5, rng)
        assert view.num_nodes <= graph.num_nodes
        assert view.num_nodes == mapping.shape[0]

    def test_subgraph_sample_is_induced(self, graph, rng):
        view, mapping = subgraph_sample(graph, 0.6, rng)
        for a, b in view.edge_array():
            assert graph.has_edge(int(mapping[a]), int(mapping[b]))


class TestFeatureOps:
    def test_mask_features_zeroes_columns(self, graph, rng):
        view = mask_features(graph, 0.5, rng)
        zero_cols = np.flatnonzero((view.features == 0).all(axis=0))
        # Either masked columns exist or the draw kept them all (rate 0.5, 5 dims).
        assert view.features.shape == graph.features.shape
        for col in zero_cols:
            assert (view.features[:, col] == 0).all()

    def test_mask_rate_one_zeroes_everything(self, graph, rng):
        view = mask_features(graph, 1.0, rng)
        assert (view.features == 0).all()

    def test_drop_features_entrywise(self, graph, rng):
        view = drop_features(graph, 0.5, rng)
        changed = view.features != graph.features
        assert (view.features[changed] == 0).all()

    def test_perturb_features_zero_prob_identity(self, graph, rng):
        view = perturb_features(graph, 0.0, rng)
        np.testing.assert_allclose(view.features, graph.features)

    def test_perturb_magnitude_bound(self, graph, rng):
        """Eq. 16: |x̂ − x| ≤ magnitude·|x| entrywise."""
        view = perturb_features(graph, 1.0, rng, magnitude=1.0)
        delta = np.abs(view.features - graph.features)
        bound = np.abs(graph.features) + 1e-12
        assert (delta <= bound).all()

    def test_perturb_keeps_zeros_zero(self, rng):
        g = random_graph(10, 0.3, seed=1, num_features=4)
        g = g.with_features(np.zeros((10, 4)))
        view = perturb_features(g, 1.0, rng)
        assert (view.features == 0).all()

    def test_perturb_matrix_probability(self, graph, rng):
        prob = np.zeros_like(graph.features)
        prob[0, :] = 1.0
        view = perturb_features(graph, prob, rng)
        np.testing.assert_allclose(view.features[1:], graph.features[1:])

    def test_perturb_invalid_probability(self, graph, rng):
        with pytest.raises(ValueError):
            perturb_features(graph, 1.5, rng)


class TestPurity:
    def test_operations_do_not_mutate_input(self, graph, rng):
        before_edges = graph.num_edges
        before_features = graph.features.copy()
        drop_edges(graph, 0.5, rng)
        add_edges(graph, 0.5, rng)
        mask_features(graph, 0.5, rng)
        perturb_features(graph, 0.5, rng)
        assert graph.num_edges == before_edges
        np.testing.assert_allclose(graph.features, before_features)


class TestProposition1:
    """Constructive content of Prop. 1: any composite view over the same node
    set is reproduced exactly by {edge deletion, edge addition, feature
    perturbation}."""

    def test_minimal_set_is_three_ops(self):
        assert len(MINIMAL_OPERATIONS) == 3
        assert set(MINIMAL_OPERATIONS) < set(ALL_OPERATIONS)
        assert len(ALL_OPERATIONS) == 8

    def _roundtrip(self, original, target):
        plan = express_with_minimal_ops(original, target)
        rebuilt = apply_view_plan(original, *plan)
        assert (rebuilt.adjacency != target.adjacency).nnz == 0
        np.testing.assert_allclose(rebuilt.features, target.features, atol=1e-12)

    def test_expresses_edge_composite(self, graph, rng):
        target = add_edges(drop_edges(graph, 0.4, rng), 0.3, rng)
        self._roundtrip(graph, target)

    def test_expresses_feature_composite(self, graph, rng):
        target = perturb_features(mask_features(graph, 0.4, rng), 0.5, rng)
        self._roundtrip(graph, target)

    def test_expresses_node_drop_as_aligned_view(self, graph, rng):
        """Node dropping = delete its incident edges + perturb its features to
        zero, embedded over the common node superset."""
        view, kept = drop_nodes(graph, 0.3, rng)
        dropped = np.setdiff1d(np.arange(graph.num_nodes), kept)
        aligned_features = graph.features.copy()
        aligned_features[dropped] = 0.0
        keep_mask = np.isin(graph.edge_array(), kept).all(axis=1)
        from repro.graphs import adjacency_from_edge_mask, Graph

        aligned = Graph(adjacency_from_edge_mask(graph, keep_mask), aligned_features)
        self._roundtrip(graph, aligned)

    def test_rejects_mismatched_node_sets(self, graph, rng):
        view, _ = drop_nodes(graph, 0.3, rng)
        with pytest.raises(ValueError, match="aligned node sets"):
            express_with_minimal_ops(graph, view)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_random_composites_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        g = random_graph(12, 0.25, seed=seed % 100, num_features=3)
        target = g
        for _ in range(int(rng.integers(1, 4))):
            op = rng.integers(5)
            if op == 0:
                target = drop_edges(target, float(rng.random() * 0.6), rng)
            elif op == 1:
                target = add_edges(target, float(rng.random() * 0.4), rng)
            elif op == 2:
                target = mask_features(target, float(rng.random() * 0.6), rng)
            elif op == 3:
                target = drop_features(target, float(rng.random() * 0.6), rng)
            else:
                target = perturb_features(target, float(rng.random()), rng)
        self._roundtrip(g, target)
