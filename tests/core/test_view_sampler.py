"""The vectorized Alg. 3 sampler internals.

``generate_global_view`` replaces per-node ``rng.choice(p=...)`` calls with
one exponential-race draw; these tests pin down the count formula and the
distributional behaviour of that trick.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_edge_scores, compute_feature_scores
from repro.core.view_generator import _batched_weighted_sample, _sample_count
from repro.graphs import load_dataset


class TestSampleCount:
    def test_zero_tau_zero(self):
        assert _sample_count(0.0, 5.0, 10) == 0

    def test_zero_candidates_zero(self):
        assert _sample_count(1.0, 5.0, 0) == 0

    def test_rounds_tau_times_degree(self):
        assert _sample_count(1.0, 4.0, 100) == 4
        assert _sample_count(0.5, 4.0, 100) == 2
        assert _sample_count(1.2, 5.0, 100) == 6

    def test_at_least_one_when_tau_positive(self):
        assert _sample_count(0.1, 1.0, 10) == 1

    def test_clamped_to_candidates(self):
        assert _sample_count(2.0, 50.0, 7) == 7

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 3), st.floats(0, 50), st.integers(0, 100))
    def test_property_bounds(self, tau, degree, candidates):
        count = _sample_count(tau, degree, candidates)
        assert 0 <= count <= candidates
        if tau > 0 and candidates > 0:
            assert count >= 1


class TestBatchedWeightedSample:
    @pytest.fixture(scope="class")
    def table(self):
        graph = load_dataset("cora", seed=7, scale=0.2)
        return graph, compute_edge_scores(graph, rng=np.random.default_rng(0))

    def test_sources_draw_from_own_candidates(self, table):
        graph, edge_table = table
        src, dst = _batched_weighted_sample(edge_table, 1.0, np.random.default_rng(1))
        for s, d in zip(src[:300], dst[:300]):
            assert d in edge_table.candidates[s]

    def test_no_duplicate_picks_per_source(self, table):
        graph, edge_table = table
        src, dst = _batched_weighted_sample(edge_table, 1.0, np.random.default_rng(2))
        pairs = set()
        for s, d in zip(src, dst):
            assert (s, d) not in pairs
            pairs.add((s, d))

    def test_counts_match_formula(self, table):
        graph, edge_table = table
        src, _dst = _batched_weighted_sample(edge_table, 0.8, np.random.default_rng(3))
        counts = np.bincount(src, minlength=graph.num_nodes)
        for u in range(graph.num_nodes):
            expected = _sample_count(0.8, float(edge_table.base_degree[u]),
                                     edge_table.candidates[u].size)
            assert counts[u] == expected

    def test_high_probability_candidates_sampled_more(self, table):
        """The exponential race must respect the weights: across many draws
        a candidate with 10x the probability appears far more often."""
        graph, edge_table = table
        # pick a node with a spread-out distribution
        node = max(range(graph.num_nodes),
                   key=lambda u: (edge_table.probabilities[u].max()
                                  if edge_table.candidates[u].size > 4 else -1))
        probs = edge_table.probabilities[node]
        top = edge_table.candidates[node][probs.argmax()]
        bottom = edge_table.candidates[node][probs.argmin()]
        rng = np.random.default_rng(4)
        top_hits = bottom_hits = 0
        for _ in range(80):
            src, dst = _batched_weighted_sample(edge_table, 0.5, rng)
            picked = dst[src == node]
            top_hits += int(top in picked)
            bottom_hits += int(bottom in picked)
        assert top_hits > bottom_hits

    def test_empty_table(self):
        from repro.graphs import Graph
        import scipy.sparse as sp

        graph = Graph(sp.csr_matrix((4, 4)), np.ones((4, 2)))
        edge_table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        src, dst = _batched_weighted_sample(edge_table, 1.0, np.random.default_rng(0))
        assert src.size == 0 and dst.size == 0
