"""The vectorized Alg. 3 sampler internals.

``generate_global_view`` replaces per-node ``rng.choice(p=...)`` calls with
one exponential-race draw; these tests pin down the count formula and the
distributional behaviour of that trick.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_edge_scores, compute_feature_scores, generate_global_view
from repro.core.view_generator import (
    _batched_weighted_sample,
    _sample_count,
    _sample_counts,
    _sequential_weighted_sample,
)
from repro.graphs import load_dataset


class TestSampleCount:
    def test_zero_tau_zero(self):
        assert _sample_count(0.0, 5.0, 10) == 0

    def test_zero_candidates_zero(self):
        assert _sample_count(1.0, 5.0, 0) == 0

    def test_rounds_tau_times_degree(self):
        assert _sample_count(1.0, 4.0, 100) == 4
        assert _sample_count(0.5, 4.0, 100) == 2
        assert _sample_count(1.2, 5.0, 100) == 6

    def test_at_least_one_when_tau_positive(self):
        assert _sample_count(0.1, 1.0, 10) == 1

    def test_clamped_to_candidates(self):
        assert _sample_count(2.0, 50.0, 7) == 7

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 3), st.floats(0, 50), st.integers(0, 100))
    def test_property_bounds(self, tau, degree, candidates):
        count = _sample_count(tau, degree, candidates)
        assert 0 <= count <= candidates
        if tau > 0 and candidates > 0:
            assert count >= 1


class TestBatchedWeightedSample:
    @pytest.fixture(scope="class")
    def table(self):
        graph = load_dataset("cora", seed=7, scale=0.2)
        return graph, compute_edge_scores(graph, rng=np.random.default_rng(0))

    def test_sources_draw_from_own_candidates(self, table):
        graph, edge_table = table
        src, dst = _batched_weighted_sample(edge_table, 1.0, np.random.default_rng(1))
        for s, d in zip(src[:300], dst[:300]):
            assert d in edge_table.candidates[s]

    def test_no_duplicate_picks_per_source(self, table):
        graph, edge_table = table
        src, dst = _batched_weighted_sample(edge_table, 1.0, np.random.default_rng(2))
        pairs = set()
        for s, d in zip(src, dst):
            assert (s, d) not in pairs
            pairs.add((s, d))

    def test_counts_match_formula(self, table):
        graph, edge_table = table
        src, _dst = _batched_weighted_sample(edge_table, 0.8, np.random.default_rng(3))
        counts = np.bincount(src, minlength=graph.num_nodes)
        for u in range(graph.num_nodes):
            expected = _sample_count(0.8, float(edge_table.base_degree[u]),
                                     edge_table.candidates[u].size)
            assert counts[u] == expected

    def test_high_probability_candidates_sampled_more(self, table):
        """The exponential race must respect the weights: across many draws
        a candidate with 10x the probability appears far more often."""
        graph, edge_table = table
        # pick a node with a spread-out distribution
        node = max(range(graph.num_nodes),
                   key=lambda u: (edge_table.probabilities[u].max()
                                  if edge_table.candidates[u].size > 4 else -1))
        probs = edge_table.probabilities[node]
        top = edge_table.candidates[node][probs.argmax()]
        bottom = edge_table.candidates[node][probs.argmin()]
        rng = np.random.default_rng(4)
        top_hits = bottom_hits = 0
        for _ in range(80):
            src, dst = _batched_weighted_sample(edge_table, 0.5, rng)
            picked = dst[src == node]
            top_hits += int(top in picked)
            bottom_hits += int(bottom in picked)
        assert top_hits > bottom_hits

    def test_empty_table(self):
        from repro.graphs import Graph
        import scipy.sparse as sp

        graph = Graph(sp.csr_matrix((4, 4)), np.ones((4, 2)))
        edge_table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        src, dst = _batched_weighted_sample(edge_table, 1.0, np.random.default_rng(0))
        assert src.size == 0 and dst.size == 0


class TestVectorizedCounts:
    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 3), st.lists(st.tuples(st.floats(0, 50), st.integers(0, 100)),
                                     min_size=1, max_size=20))
    def test_matches_scalar_formula(self, tau, rows):
        degrees = np.asarray([d for d, _ in rows])
        candidates = np.asarray([c for _, c in rows], dtype=np.int64)
        vectorized = _sample_counts(tau, degrees, candidates)
        scalar = [_sample_count(tau, float(d), int(c)) for d, c in rows]
        np.testing.assert_array_equal(vectorized, scalar)


@pytest.fixture(scope="module")
def sampler_table():
    graph = load_dataset("cora", seed=11, scale=0.2)
    return graph, compute_edge_scores(graph, rng=np.random.default_rng(0))


class TestSamplerEquivalence:
    """The exponential race must be *distributionally* interchangeable with
    sequential ``rng.choice(p=...)`` draws — the contract that lets
    ``generate_global_view`` use the batched kernel."""

    def test_identical_pick_counts_per_node(self, sampler_table):
        graph, table = sampler_table
        bsrc, _ = _batched_weighted_sample(table, 0.7, np.random.default_rng(5))
        ssrc, _ = _sequential_weighted_sample(table, 0.7, np.random.default_rng(6))
        np.testing.assert_array_equal(
            np.bincount(bsrc, minlength=graph.num_nodes),
            np.bincount(ssrc, minlength=graph.num_nodes),
        )

    @pytest.mark.slow
    def test_chi_square_inclusion_frequencies(self, sampler_table):
        """Chi-square homogeneity over per-candidate inclusion counts: across
        repeated draws, the batched sampler's hit profile on the most
        contended node must be statistically indistinguishable from the
        sequential reference's."""
        from scipy import stats

        graph, table = sampler_table
        tau = 0.5
        # Most contended node: largest candidate set still subsampled at tau.
        counts = table.counts
        want = _sample_counts(tau, table.base_degree, counts)
        contended = np.flatnonzero((want > 0) & (want < counts))
        assert contended.size, "fixture graph must have a contended node"
        node = int(contended[np.argmax(counts[contended])])
        cands = table.candidates[node]
        assert cands.size >= 5

        runs = 300
        pos = {int(c): i for i, c in enumerate(cands)}
        hits = np.zeros((2, cands.size))
        rng_b, rng_s = np.random.default_rng(21), np.random.default_rng(22)
        for _ in range(runs):
            bsrc, bdst = _batched_weighted_sample(table, tau, rng_b)
            ssrc, sdst = _sequential_weighted_sample(table, tau, rng_s)
            for row, (src, dst) in enumerate([(bsrc, bdst), (ssrc, sdst)]):
                for d in dst[src == node]:
                    hits[row, pos[int(d)]] += 1

        # Drop sparse cells so the chi-square approximation is valid.
        keep = hits.sum(axis=0) >= 10
        assert keep.sum() >= 2
        _chi2, p, _dof, _exp = stats.chi2_contingency(hits[:, keep])
        assert p > 1e-3, f"samplers diverge in distribution (p={p:.2e})"


class TestDeterminism:
    def test_same_seed_same_view(self, sampler_table):
        graph, table = sampler_table
        feature_table = compute_feature_scores(graph)
        views = [
            generate_global_view(graph, 0.8, 0.3, table, feature_table,
                                 np.random.default_rng(123))
            for _ in range(2)
        ]
        assert (views[0].adjacency != views[1].adjacency).nnz == 0
        np.testing.assert_array_equal(views[0].features, views[1].features)

    def test_same_seed_same_picks(self, sampler_table):
        _graph, table = sampler_table
        a = _batched_weighted_sample(table, 0.6, np.random.default_rng(9))
        b = _batched_weighted_sample(table, 0.6, np.random.default_rng(9))
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_different_seeds_differ(self, sampler_table):
        _graph, table = sampler_table
        a = _batched_weighted_sample(table, 0.6, np.random.default_rng(9))
        b = _batched_weighted_sample(table, 0.6, np.random.default_rng(10))
        assert a[1].shape != b[1].shape or not np.array_equal(a[1], b[1])
