"""Alg. 3 — per-node and batched view generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    compute_edge_scores,
    compute_feature_scores,
    generate_global_view,
    generate_global_view_pair,
    generate_node_view,
    generate_node_view_pair,
)
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=17, scale=0.3)


@pytest.fixture(scope="module")
def tables(graph):
    rng = np.random.default_rng(0)
    return (
        compute_edge_scores(graph, rng=rng),
        compute_feature_scores(graph),
    )


class TestNodeView:
    def test_contains_anchor(self, graph, tables):
        edge_t, feat_t = tables
        rng = np.random.default_rng(1)
        view = generate_node_view(graph, 5, hops=2, tau=1.0, eta=0.3,
                                  edge_table=edge_t, feature_table=feat_t, rng=rng)
        assert view.node_ids[view.center] == 5

    def test_view_is_valid_graph(self, graph, tables):
        edge_t, feat_t = tables
        rng = np.random.default_rng(2)
        view = generate_node_view(graph, 0, hops=2, tau=1.0, eta=0.3,
                                  edge_table=edge_t, feature_table=feat_t, rng=rng)
        view.graph.validate()

    def test_edges_come_from_candidate_sets(self, graph, tables):
        """Every view edge (u, w) must satisfy w ∈ N_u^1 ∪ N_u^2 (or the
        symmetric condition) — Alg. 3 line 6."""
        edge_t, feat_t = tables
        rng = np.random.default_rng(3)
        view = generate_node_view(graph, 10, hops=2, tau=1.0, eta=0.0,
                                  edge_table=edge_t, feature_table=feat_t, rng=rng)
        for a, b in view.graph.edge_array():
            u, w = int(view.node_ids[a]), int(view.node_ids[b])
            cand_u = set(edge_t.candidates[u].tolist())
            cand_w = set(edge_t.candidates[w].tolist())
            assert w in cand_u or u in cand_w

    def test_eta_zero_preserves_features(self, graph, tables):
        edge_t, feat_t = tables
        rng = np.random.default_rng(4)
        view = generate_node_view(graph, 3, hops=1, tau=1.0, eta=0.0,
                                  edge_table=edge_t, feature_table=feat_t, rng=rng)
        np.testing.assert_allclose(view.graph.features, graph.features[view.node_ids])

    def test_tau_zero_gives_singleton(self, graph, tables):
        edge_t, feat_t = tables
        rng = np.random.default_rng(5)
        view = generate_node_view(graph, 7, hops=2, tau=0.0, eta=0.0,
                                  edge_table=edge_t, feature_table=feat_t, rng=rng)
        assert view.graph.num_nodes == 1
        assert view.graph.num_edges == 0

    def test_zero_hops_gives_singleton(self, graph, tables):
        edge_t, feat_t = tables
        rng = np.random.default_rng(6)
        view = generate_node_view(graph, 7, hops=0, tau=1.0, eta=0.0,
                                  edge_table=edge_t, feature_table=feat_t, rng=rng)
        assert view.graph.num_nodes == 1

    def test_larger_tau_larger_views(self, graph, tables):
        edge_t, feat_t = tables
        sizes = {}
        for tau in (0.4, 1.4):
            total = 0
            rng = np.random.default_rng(7)
            for anchor in range(0, graph.num_nodes, 29):
                view = generate_node_view(graph, anchor, hops=2, tau=tau, eta=0.0,
                                          edge_table=edge_t, feature_table=feat_t, rng=rng)
                total += view.graph.num_nodes
            sizes[tau] = total
        assert sizes[1.4] > sizes[0.4]

    def test_invalid_anchor_rejected(self, graph, tables):
        edge_t, feat_t = tables
        with pytest.raises(ValueError):
            generate_node_view(graph, graph.num_nodes + 1, hops=1, tau=1.0, eta=0.0,
                               edge_table=edge_t, feature_table=feat_t,
                               rng=np.random.default_rng(0))

    def test_pair_views_are_diverse(self, graph, tables):
        """Independently sampled positive pairs should differ (Def. 2 diversity)."""
        edge_t, feat_t = tables
        rng = np.random.default_rng(8)
        hat, tilde = generate_node_view_pair(graph, 4, hops=2,
                                             edge_table=edge_t, feature_table=feat_t,
                                             rng=rng, eta_hat=0.5, eta_tilde=0.5)
        same_nodes = (hat.node_ids.shape == tilde.node_ids.shape and
                      np.array_equal(hat.node_ids, tilde.node_ids))
        if same_nodes:
            assert (hat.graph.adjacency != tilde.graph.adjacency).nnz > 0 or \
                not np.allclose(hat.graph.features, tilde.graph.features)


class TestGlobalView:
    def test_same_node_set(self, graph, tables):
        edge_t, feat_t = tables
        view = generate_global_view(graph, tau=1.0, eta=0.3, edge_table=edge_t,
                                    feature_table=feat_t, rng=np.random.default_rng(9))
        assert view.num_nodes == graph.num_nodes
        view.validate()

    def test_eta_zero_keeps_features(self, graph, tables):
        edge_t, feat_t = tables
        view = generate_global_view(graph, tau=1.0, eta=0.0, edge_table=edge_t,
                                    feature_table=feat_t, rng=np.random.default_rng(10))
        np.testing.assert_allclose(view.features, graph.features)

    def test_edge_count_scales_with_tau(self, graph, tables):
        edge_t, feat_t = tables
        small = generate_global_view(graph, tau=0.4, eta=0.0, edge_table=edge_t,
                                     feature_table=feat_t, rng=np.random.default_rng(11))
        large = generate_global_view(graph, tau=1.4, eta=0.0, edge_table=edge_t,
                                     feature_table=feat_t, rng=np.random.default_rng(11))
        assert large.num_edges > small.num_edges

    def test_edges_within_candidate_closure(self, graph, tables):
        edge_t, feat_t = tables
        view = generate_global_view(graph, tau=1.0, eta=0.0, edge_table=edge_t,
                                    feature_table=feat_t, rng=np.random.default_rng(12))
        for a, b in view.edge_array()[:200]:
            cand_a = set(edge_t.candidates[a].tolist())
            cand_b = set(edge_t.candidates[b].tolist())
            assert b in cand_a or a in cand_b

    def test_pair_is_diverse(self, graph, tables):
        edge_t, feat_t = tables
        hat, tilde = generate_global_view_pair(graph, edge_t, feat_t,
                                               np.random.default_rng(13))
        assert (hat.adjacency != tilde.adjacency).nnz > 0

    def test_importance_preserves_high_score_edges(self, graph):
        """Score-aware sampling keeps important (similar, central) neighbors
        more often than uniform sampling keeps them."""
        rng = np.random.default_rng(14)
        aware = compute_edge_scores(graph, beta=0.9, rng=rng)
        feat_t = compute_feature_scores(graph)
        # For a sample of nodes, the highest-probability candidate should be
        # sampled into the view much more often than a random candidate.
        view = generate_global_view(graph, tau=0.6, eta=0.0, edge_table=aware,
                                    feature_table=feat_t, rng=np.random.default_rng(15))
        kept_top = 0
        total = 0
        for u in range(graph.num_nodes):
            if aware.candidates[u].size < 4:
                continue
            top = int(aware.candidates[u][aware.probabilities[u].argmax()])
            kept_top += int(view.has_edge(u, top))
            total += 1
        assert total > 0
        assert kept_top / total > 0.4
