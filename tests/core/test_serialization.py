"""Model checkpointing."""

import numpy as np
import pytest

from repro.core import E2GCL, E2GCLConfig, load_model, save_model


@pytest.fixture(scope="module")
def fitted(request, tmp_path_factory):
    import repro.graphs as graphs

    graph = graphs.load_dataset("cora", seed=4, scale=0.25)
    model = E2GCL(E2GCLConfig(epochs=4, num_clusters=8, sample_size=20,
                              node_ratio=0.3, hidden_dim=16, embedding_dim=8))
    model.fit(graph)
    return graph, model


class TestSaveLoad:
    def test_roundtrip_embeddings_identical(self, fitted, tmp_path):
        graph, model = fitted
        path = save_model(model, tmp_path / "ckpt.npz")
        restored = load_model(path)
        np.testing.assert_allclose(model.embed(graph), restored.embed(graph))

    def test_coreset_preserved(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        np.testing.assert_array_equal(restored.coreset.selected, model.coreset.selected)
        np.testing.assert_array_equal(restored.coreset.weights, model.coreset.weights)

    def test_config_preserved(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        assert restored.config == model.config

    def test_loaded_model_requires_explicit_graph(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        with pytest.raises(ValueError, match="pass one"):
            restored.embed()

    def test_loaded_model_resaves(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "a.npz"))
        again = load_model(save_model(restored, tmp_path / "b.npz"))
        np.testing.assert_allclose(model.embed(graph), again.embed(graph))

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            save_model(E2GCL(), tmp_path / "x.npz")

    def test_embed_on_new_graph(self, fitted, tmp_path):
        """A checkpointed encoder transfers to any graph with matching
        feature dimension (the transfer-learning promise of GCL)."""
        import repro.graphs as graphs

        graph, model = fitted
        other = graphs.load_dataset("cora", seed=99, scale=0.2)
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        h = restored.embed(other)
        assert h.shape == (other.num_nodes, 8)
