"""Model checkpointing."""

import numpy as np
import pytest

from repro.core import E2GCL, E2GCLConfig, load_model, save_model


@pytest.fixture(scope="module")
def fitted(request, tmp_path_factory):
    import repro.graphs as graphs

    graph = graphs.load_dataset("cora", seed=4, scale=0.25)
    model = E2GCL(E2GCLConfig(epochs=4, num_clusters=8, sample_size=20,
                              node_ratio=0.3, hidden_dim=16, embedding_dim=8))
    model.fit(graph)
    return graph, model


class TestSaveLoad:
    def test_roundtrip_embeddings_identical(self, fitted, tmp_path):
        graph, model = fitted
        path = save_model(model, tmp_path / "ckpt.npz")
        restored = load_model(path)
        np.testing.assert_allclose(model.embed(graph), restored.embed(graph))

    def test_coreset_preserved(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        np.testing.assert_array_equal(restored.coreset.selected, model.coreset.selected)
        np.testing.assert_array_equal(restored.coreset.weights, model.coreset.weights)

    def test_config_preserved(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        assert restored.config == model.config

    def test_loaded_model_requires_explicit_graph(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        with pytest.raises(ValueError, match="pass one"):
            restored.embed()

    def test_loaded_model_resaves(self, fitted, tmp_path):
        graph, model = fitted
        restored = load_model(save_model(model, tmp_path / "a.npz"))
        again = load_model(save_model(restored, tmp_path / "b.npz"))
        np.testing.assert_allclose(model.embed(graph), again.embed(graph))

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            save_model(E2GCL(), tmp_path / "x.npz")

    def test_embed_on_new_graph(self, fitted, tmp_path):
        """A checkpointed encoder transfers to any graph with matching
        feature dimension (the transfer-learning promise of GCL)."""
        import repro.graphs as graphs

        graph, model = fitted
        other = graphs.load_dataset("cora", seed=99, scale=0.2)
        restored = load_model(save_model(model, tmp_path / "ckpt.npz"))
        h = restored.embed(other)
        assert h.shape == (other.num_nodes, 8)


class TestExportEncoder:
    """Method-agnostic frozen-artifact extraction (the serving surface)."""

    def _checkpoint(self, method_name, graph, path, epochs=2):
        from repro.baselines import get_method
        from repro.engine import PeriodicCheckpoint

        method = get_method(method_name, epochs=epochs, seed=0)
        method.fit(graph, hooks=[PeriodicCheckpoint(str(path), every=1)])
        return method

    @pytest.mark.parametrize("method_name", ["grace", "dgi", "e2gcl"])
    def test_gcn_methods_bit_identical(self, method_name, tiny_cora, tmp_path):
        from repro.core.serialization import export_encoder

        path = tmp_path / f"{method_name}.npz"
        method = self._checkpoint(method_name, tiny_cora, path)
        artifact = export_encoder(path)
        assert artifact.kind == "gcn"
        assert artifact.inductive
        np.testing.assert_array_equal(artifact.embed(tiny_cora),
                                      method.embed(tiny_cora))

    def test_walk_method_exports_table(self, tiny_cora, tmp_path):
        from repro.core.serialization import export_encoder

        path = tmp_path / "node2vec.npz"
        method = self._checkpoint("node2vec", tiny_cora, path, epochs=1)
        artifact = export_encoder(path)
        assert artifact.kind == "table"
        assert not artifact.inductive
        np.testing.assert_array_equal(artifact.embed(tiny_cora),
                                      method.embed(tiny_cora))

    def test_table_artifact_rejects_other_graph(self, tiny_cora, tmp_path):
        import repro.graphs as graphs
        from repro.core.serialization import export_encoder

        path = tmp_path / "deepwalk.npz"
        self._checkpoint("deepwalk", tiny_cora, path, epochs=1)
        artifact = export_encoder(path)
        other = graphs.load_dataset("cora", seed=9, scale=0.1)
        with pytest.raises(ValueError, match="transductive"):
            artifact.embed(other)

    def test_gcn_artifact_rejects_feature_mismatch(self, tiny_cora, tmp_path):
        from repro.core.serialization import export_encoder
        from repro.graphs import Graph

        path = tmp_path / "grace.npz"
        self._checkpoint("grace", tiny_cora, path)
        artifact = export_encoder(path)
        bad = Graph.from_edge_list(3, [(0, 1)], features=np.ones((3, 2)))
        with pytest.raises(ValueError, match="features"):
            artifact.embed(bad)

    def test_reads_legacy_v1_files(self, fitted, tmp_path):
        """export_encoder must keep serving pre-engine E2GCL model files."""
        import warnings

        from repro.core.serialization import export_encoder

        graph, model = fitted
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            path = save_model(model, tmp_path / "v1.npz")
        artifact = export_encoder(path)
        assert artifact.kind == "gcn"
        assert artifact.step_class == "E2GCLTrainer"
        np.testing.assert_allclose(artifact.embed(graph), model.embed(graph))

    def test_corrupt_checkpoint_raises(self, tiny_cora, tmp_path):
        from repro.core.serialization import export_encoder
        from repro.engine import CheckpointCorruptError
        from repro.resilience import FaultPlan

        path = tmp_path / "grace.npz"
        self._checkpoint("grace", tiny_cora, path)
        FaultPlan(seed=0).flip_bytes(path, count=16)
        with pytest.raises(CheckpointCorruptError):
            export_encoder(path)


class TestArtifactRoundTrip:
    """save_artifact/load_artifact: the frozen-artifact persistence lock."""

    def test_gcn_round_trip_bit_identical(self, tiny_cora, tmp_path):
        from repro.core.serialization import (
            EncoderArtifact, load_artifact, save_artifact,
        )
        from repro.nn import GCN

        artifact = EncoderArtifact.from_encoder(
            GCN(tiny_cora.num_features, 16, 8, seed=3))
        path = save_artifact(artifact, tmp_path / "artifact.npz")
        restored = load_artifact(path)
        assert restored.kind == "gcn"
        assert restored.fingerprint == artifact.fingerprint
        np.testing.assert_array_equal(restored.embed(tiny_cora),
                                      artifact.embed(tiny_cora))

    def test_table_round_trip(self, tmp_path):
        from repro.core.serialization import (
            EncoderArtifact, load_artifact, save_artifact,
        )
        from repro.engine import payload_digest

        table = np.random.default_rng(0).normal(size=(9, 5))
        artifact = EncoderArtifact(
            kind="table", step_class="DeepWalk",
            fingerprint=payload_digest({"embeddings": table}),
            table=table, fitted_nodes=9)
        restored = load_artifact(save_artifact(artifact, tmp_path / "t.npz"))
        assert restored.kind == "table"
        assert restored.fitted_nodes == 9
        np.testing.assert_array_equal(restored.table, table)

    def test_corrupt_artifact_rejected(self, tmp_path):
        from repro.core.serialization import (
            EncoderArtifact, load_artifact, save_artifact,
        )
        from repro.engine import CheckpointCorruptError
        from repro.nn import GCN
        from repro.resilience import FaultPlan

        path = save_artifact(EncoderArtifact.from_encoder(GCN(4, 8, 2, seed=0)),
                             tmp_path / "artifact.npz")
        FaultPlan(seed=5).flip_bytes(path, count=8)
        with pytest.raises(CheckpointCorruptError):
            load_artifact(path)

    def test_truncated_artifact_rejected(self, tmp_path):
        from repro.core.serialization import (
            EncoderArtifact, load_artifact, save_artifact,
        )
        from repro.engine import CheckpointCorruptError
        from repro.nn import GCN
        from repro.resilience import FaultPlan

        path = save_artifact(EncoderArtifact.from_encoder(GCN(4, 8, 2, seed=0)),
                             tmp_path / "artifact.npz")
        FaultPlan(seed=5).truncate_file(path, keep_fraction=0.5)
        with pytest.raises(CheckpointCorruptError):
            load_artifact(path)


class TestDeprecatedV1Shim:
    def test_save_model_warns(self, fitted, tmp_path):
        graph, model = fitted
        with pytest.warns(DeprecationWarning, match="v1"):
            save_model(model, tmp_path / "warned.npz")

    def test_load_model_warns(self, fitted, tmp_path):
        import warnings

        graph, model = fitted
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            path = save_model(model, tmp_path / "warned.npz")
        with pytest.warns(DeprecationWarning, match="export_encoder"):
            load_model(path)
