"""From-scratch KMeans: correctness, repair, determinism, properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kmeans


def blobs(rng, centers, n_per=30, spread=0.3):
    points = [rng.normal(size=(n_per, len(centers[0]))) * spread + np.asarray(c) for c in centers]
    return np.concatenate(points)


class TestBasics:
    def test_recovers_well_separated_blobs(self, rng):
        x = blobs(rng, [(0, 0), (10, 10), (-10, 10)])
        result = kmeans(x, 3, rng=rng)
        # Each blob should land in a single cluster.
        for start in (0, 30, 60):
            block = result.assignments[start:start + 30]
            assert len(np.unique(block)) == 1
        assert result.num_clusters == 3

    def test_assignment_is_nearest_center(self, rng):
        x = rng.normal(size=(50, 4))
        result = kmeans(x, 5, rng=rng)
        d = ((x[:, None, :] - result.centers[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(result.assignments, d.argmin(axis=1))

    def test_inertia_matches_assignments(self, rng):
        x = rng.normal(size=(40, 3))
        result = kmeans(x, 4, rng=rng)
        manual = ((x - result.centers[result.assignments]) ** 2).sum()
        assert result.inertia == pytest.approx(manual)

    def test_more_clusters_reduce_inertia(self, rng):
        x = rng.normal(size=(60, 3))
        few = kmeans(x, 2, rng=np.random.default_rng(1))
        many = kmeans(x, 10, rng=np.random.default_rng(1))
        assert many.inertia < few.inertia

    def test_deterministic_given_rng(self):
        x = np.random.default_rng(0).normal(size=(50, 3))
        r1 = kmeans(x, 4, rng=np.random.default_rng(5))
        r2 = kmeans(x, 4, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(r1.assignments, r2.assignments)


class TestEdgeCases:
    def test_k_capped_at_n(self, rng):
        x = rng.normal(size=(3, 2))
        result = kmeans(x, 10, rng=rng)
        assert result.num_clusters == 3
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one(self, rng):
        x = rng.normal(size=(20, 2))
        result = kmeans(x, 1, rng=rng)
        np.testing.assert_allclose(result.centers[0], x.mean(axis=0), atol=1e-9)

    def test_identical_points(self, rng):
        x = np.ones((10, 3))
        result = kmeans(x, 3, rng=rng)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_empty_dataset_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((0, 2)), 2, rng=rng)

    def test_invalid_k_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0, rng=rng)

    def test_1d_input_rejected(self, rng):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2, rng=rng)

    def test_nonfinite_points_rejected(self, rng):
        x = np.zeros((6, 2))
        x[3, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            kmeans(x, 2, rng=rng)

    def test_empty_cluster_repair_keeps_k_effective(self):
        """Pathological init: one far outlier forces a potential empty cluster."""
        x = np.concatenate([np.zeros((20, 2)), np.full((1, 2), 100.0)])
        result = kmeans(x, 3, rng=np.random.default_rng(0))
        # All 3 clusters should end non-degenerate (outlier isolated).
        assert len(np.unique(result.assignments)) >= 2


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(5, 40), st.integers(0, 1000))
def test_property_valid_output(k, n, seed):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    result = kmeans(x, k, rng=rng)
    assert result.assignments.shape == (n,)
    assert result.assignments.min() >= 0
    assert result.assignments.max() < result.num_clusters
    assert np.isfinite(result.centers).all()
    assert result.inertia >= 0
