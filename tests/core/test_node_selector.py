"""Alg. 2 — greedy coreset selection."""

import numpy as np
import pytest

from repro.core import (
    RepresentativityObjective,
    build_cluster_model,
    recommended_sample_size,
    representativity_cost,
    select_coreset,
)
from repro.graphs import load_dataset, propagated_features


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=11, scale=0.3)


class TestSelection:
    def test_budget_respected(self, graph):
        result = select_coreset(graph, budget=25, num_clusters=10, sample_size=40,
                                rng=np.random.default_rng(0))
        assert result.budget == 25
        assert len(set(result.selected.tolist())) == 25

    def test_selected_indices_valid(self, graph):
        result = select_coreset(graph, budget=15, num_clusters=8, sample_size=30,
                                rng=np.random.default_rng(1))
        assert result.selected.min() >= 0
        assert result.selected.max() < graph.num_nodes

    def test_weights_sum_to_num_nodes(self, graph):
        result = select_coreset(graph, budget=20, num_clusters=10, sample_size=40,
                                rng=np.random.default_rng(2))
        assert result.weights.sum() == graph.num_nodes
        assert (result.weights >= 0).all()

    def test_assignment_consistent_with_weights(self, graph):
        result = select_coreset(graph, budget=20, num_clusters=10, sample_size=40,
                                rng=np.random.default_rng(3))
        counts = np.bincount(result.assignment, minlength=result.budget)
        np.testing.assert_array_equal(counts, result.weights.astype(int))

    def test_selected_node_represents_itself(self, graph):
        result = select_coreset(graph, budget=20, num_clusters=10, sample_size=40,
                                rng=np.random.default_rng(4))
        for pos, node in enumerate(result.selected):
            assert result.assignment[node] == pos

    def test_budget_exceeding_nodes_clamps(self, graph):
        result = select_coreset(graph, budget=10 ** 6, num_clusters=10, sample_size=40,
                                rng=np.random.default_rng(5))
        assert result.budget == graph.num_nodes

    def test_invalid_budget_rejected(self, graph):
        with pytest.raises(ValueError):
            select_coreset(graph, budget=0)

    def test_selection_time_recorded(self, graph):
        result = select_coreset(graph, budget=10, num_clusters=8, sample_size=20,
                                rng=np.random.default_rng(6))
        assert result.selection_seconds > 0

    def test_deterministic_given_rng(self, graph):
        r1 = select_coreset(graph, budget=15, num_clusters=10, sample_size=30,
                            rng=np.random.default_rng(7))
        r2 = select_coreset(graph, budget=15, num_clusters=10, sample_size=30,
                            rng=np.random.default_rng(7))
        np.testing.assert_array_equal(r1.selected, r2.selected)
        np.testing.assert_array_equal(r1.weights, r2.weights)


class TestQuality:
    def test_beats_random_selection_on_objective(self, graph):
        """Greedy RS must be better (lower) than random RS — the point of Alg. 2."""
        rng = np.random.default_rng(8)
        r = propagated_features(graph, 2)
        model = build_cluster_model(r, 10, rng=np.random.default_rng(8))
        greedy = select_coreset(graph, budget=15, num_clusters=10, sample_size=50,
                                rng=np.random.default_rng(9), r=r, cluster_model=model)
        random_costs = []
        for trial in range(5):
            random_sel = np.random.default_rng(trial).choice(graph.num_nodes, size=15, replace=False)
            random_costs.append(representativity_cost(model, random_sel))
        assert greedy.representativity < np.mean(random_costs)

    def test_gains_trend_downward(self, graph):
        """Submodularity: early additions gain more than late ones (on average)."""
        result = select_coreset(graph, budget=30, num_clusters=10, sample_size=60,
                                rng=np.random.default_rng(10))
        first_half = np.mean(result.gains[:10])
        second_half = np.mean(result.gains[-10:])
        assert first_half > second_half

    def test_larger_budget_lower_cost(self, graph):
        small = select_coreset(graph, budget=5, num_clusters=10, sample_size=40,
                               rng=np.random.default_rng(11))
        large = select_coreset(graph, budget=40, num_clusters=10, sample_size=40,
                               rng=np.random.default_rng(11))
        assert large.representativity < small.representativity


class TestDegradation:
    """The degree fallback keeps Alg. 2's output contract when the
    representativity objective carries no signal."""

    def constant_graph(self):
        from repro.resilience import degenerate_graph

        return degenerate_graph("constant_features", num_nodes=16,
                                num_features=4)

    def test_constant_features_fall_back_to_degree(self):
        graph = self.constant_graph()
        with pytest.warns(RuntimeWarning, match="degree-based"):
            result = select_coreset(graph, budget=4, num_clusters=3,
                                    sample_size=8,
                                    rng=np.random.default_rng(0))
        assert result.budget == 4
        assert result.weights.sum() == graph.num_nodes
        assert result.gains == []
        assert np.isfinite(result.representativity)

    def test_nonfinite_propagated_features_fall_back(self, graph):
        r = propagated_features(graph, 2).copy()
        r[0, 0] = np.nan
        with pytest.warns(RuntimeWarning, match="non-finite"):
            result = select_coreset(graph, budget=5, num_clusters=4,
                                    sample_size=10,
                                    rng=np.random.default_rng(1), r=r)
        assert result.budget == 5
        assert result.weights.sum() == graph.num_nodes
        # Highest-degree nodes win under the fallback.
        top = np.sort(np.argsort(-graph.degrees, kind="stable")[:5])
        np.testing.assert_array_equal(result.selected, top)

    def test_fallback_is_deterministic(self):
        graph = self.constant_graph()
        results = []
        with pytest.warns(RuntimeWarning):
            for _ in range(2):
                results.append(select_coreset(
                    graph, budget=4, num_clusters=3, sample_size=8,
                    rng=np.random.default_rng(2)))
        np.testing.assert_array_equal(results[0].selected,
                                      results[1].selected)


class TestSampleSize:
    def test_recommended_formula(self):
        # n_s = (n/k) log(1/eps)
        assert recommended_sample_size(1000, 100, epsilon=np.exp(-1)) == 10

    def test_at_least_one(self):
        assert recommended_sample_size(10, 10, epsilon=0.99) >= 1

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            recommended_sample_size(100, 0)

    def test_default_used_when_none(self, graph):
        result = select_coreset(graph, budget=10, num_clusters=8, sample_size=None,
                                rng=np.random.default_rng(12))
        assert result.budget == 10
