"""Edge and feature scores (Sec. IV-C)."""

import numpy as np
import pytest

from repro.core import (
    compute_edge_scores,
    compute_feature_scores,
    similarity_offset,
)
from repro.graphs import Graph, load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=13, scale=0.3)


class TestSimilarityOffset:
    def test_is_max_edge_feature_distance(self, triangle_graph):
        edges = triangle_graph.edge_array()
        dists = [np.linalg.norm(triangle_graph.features[u] - triangle_graph.features[v])
                 for u, v in edges]
        assert similarity_offset(triangle_graph) == pytest.approx(max(dists))

    def test_edgeless_graph_zero(self):
        g = Graph.from_edge_list(3, [], features=np.eye(3))
        assert similarity_offset(g) == 0.0


class TestEdgeScores:
    def test_candidates_are_one_or_two_hop(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        for u in range(0, graph.num_nodes, 37):
            expected = set(graph.two_hop_neighbors(u).tolist())
            assert set(table.candidates[u].tolist()) <= expected

    def test_candidates_exclude_self(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        for u in range(0, graph.num_nodes, 23):
            assert u not in table.candidates[u]

    def test_probabilities_normalized(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        for u in range(0, graph.num_nodes, 23):
            if table.candidates[u].size:
                assert table.probabilities[u].sum() == pytest.approx(1.0)
                assert (table.probabilities[u] >= 0).all()

    def test_existing_neighbors_favored_with_high_beta(self, graph):
        """With β → 1, existing neighbors should carry almost all the mass."""
        table = compute_edge_scores(graph, beta=0.95, rng=np.random.default_rng(0))
        checked = 0
        for u in range(graph.num_nodes):
            cands = table.candidates[u]
            if cands.size < 4:
                continue
            neighbors = set(graph.neighbors(u).tolist())
            is_n = np.array([int(c) in neighbors for c in cands])
            if is_n.any() and (~is_n).any():
                neighbor_mass = table.probabilities[u][is_n].sum()
                assert neighbor_mass > 0.5
                checked += 1
            if checked >= 10:
                break
        assert checked > 0

    def test_uniform_mode_equalizes_within_group(self, graph):
        table = compute_edge_scores(graph, beta=0.7, uniform=True,
                                    rng=np.random.default_rng(0))
        for u in range(graph.num_nodes):
            cands = table.candidates[u]
            if cands.size < 3:
                continue
            neighbors = set(graph.neighbors(u).tolist())
            is_n = np.array([int(c) in neighbors for c in cands])
            probs = table.probabilities[u]
            if is_n.sum() >= 2:
                group = probs[is_n]
                np.testing.assert_allclose(group, group[0])
                break

    def test_max_candidates_caps(self, graph):
        table = compute_edge_scores(graph, max_candidates=5, rng=np.random.default_rng(0))
        assert max(c.size for c in table.candidates) <= 5

    def test_beta_validated(self, graph):
        with pytest.raises(ValueError):
            compute_edge_scores(graph, beta=1.0)

    def test_isolated_node_has_no_candidates(self, isolated_node_graph):
        table = compute_edge_scores(isolated_node_graph, rng=np.random.default_rng(0))
        assert table.candidates[3].size == 0
        assert table.probabilities[3].size == 0

    def test_base_degree_matches_graph(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        np.testing.assert_allclose(table.base_degree, graph.degrees)


class TestFeatureScores:
    def test_dimension_scores_formula(self, star_graph):
        """w_i^f = Σ_v φ_c(v)·|x_v[i]|."""
        table = compute_feature_scores(star_graph)
        phi = np.log(star_graph.degrees + 1.0)
        expected = phi @ np.abs(star_graph.features)
        np.testing.assert_allclose(table.dimension_scores, expected)

    def test_score_matrix_is_outer_product(self, star_graph):
        table = compute_feature_scores(star_graph)
        phi = np.log(star_graph.degrees + 1.0)
        np.testing.assert_allclose(table.scores, np.outer(phi, table.dimension_scores))

    def test_normalized_in_unit_interval(self, graph):
        table = compute_feature_scores(graph)
        assert table.normalized.min() >= 0.0
        assert table.normalized.max() <= 1.0

    def test_low_score_entries_perturbed_more(self, graph):
        """Eq. 16 monotonicity: lower importance → higher perturb probability."""
        table = compute_feature_scores(graph)
        probs = table.perturb_probability(0.5)
        low = table.scores < np.quantile(table.scores, 0.1)
        high = table.scores > np.quantile(table.scores, 0.9)
        assert probs[low].mean() > probs[high].mean()

    def test_eta_scales_probabilities(self, graph):
        table = compute_feature_scores(graph)
        p_small = table.perturb_probability(0.2)
        p_large = table.perturb_probability(0.8)
        assert (p_large >= p_small - 1e-12).all()

    def test_probabilities_clipped_at_one(self, graph):
        table = compute_feature_scores(graph)
        assert table.perturb_probability(1.4).max() <= 1.0

    def test_negative_eta_rejected(self, graph):
        with pytest.raises(ValueError):
            compute_feature_scores(graph).perturb_probability(-0.1)

    def test_uniform_mode_flat(self, graph):
        table = compute_feature_scores(graph, uniform=True)
        probs = table.perturb_probability(0.3)
        np.testing.assert_allclose(probs, 0.3)

    def test_per_dimension_normalization_mode(self, graph):
        table = compute_feature_scores(graph, normalization="per_dimension")
        assert table.normalized.min() >= 0.0
        assert table.normalized.max() <= 1.0

    def test_unknown_normalization_rejected(self, graph):
        with pytest.raises(ValueError):
            compute_feature_scores(graph, normalization="zscore")


class TestCsrLayout:
    """The flat CSR storage behind ``EdgeScoreTable`` and its list-style views."""

    def test_indptr_is_valid_csr(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        assert table.indptr[0] == 0
        assert table.indptr[-1] == table.num_entries
        assert table.indptr.shape == (table.num_nodes + 1,)
        assert np.all(np.diff(table.indptr) >= 0)

    def test_counts_are_segment_lengths(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(table.counts, np.diff(table.indptr))
        assert table.indices.shape == (table.num_entries,)
        assert table.probs.shape == (table.num_entries,)

    def test_views_are_zero_copy_segments(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        for u in range(table.num_nodes):
            lo, hi = table.indptr[u], table.indptr[u + 1]
            np.testing.assert_array_equal(table.candidates[u], table.indices[lo:hi])
            np.testing.assert_array_equal(table.probabilities[u], table.probs[lo:hi])
        nonempty = int(np.flatnonzero(table.counts > 0)[0])
        assert np.shares_memory(table.candidates[nonempty], table.indices)
        assert np.shares_memory(table.probabilities[nonempty], table.probs)

    def test_segment_ids_expand_indptr(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(
            table.segment_ids(),
            np.repeat(np.arange(table.num_nodes), table.counts),
        )

    def test_flat_probs_normalized_per_segment(self, graph):
        table = compute_edge_scores(graph, rng=np.random.default_rng(0))
        starts = table.indptr[:-1][table.counts > 0]
        sums = np.add.reduceat(table.probs, starts)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)
