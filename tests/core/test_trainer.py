"""E2GCL trainer and facade: integration behaviour."""

import numpy as np
import pytest

from repro.core import E2GCL, E2GCLConfig, E2GCLTrainer


def fast_config(**overrides):
    base = dict(
        epochs=8,
        num_clusters=10,
        sample_size=30,
        node_ratio=0.3,
        hidden_dim=16,
        embedding_dim=8,
    )
    base.update(overrides)
    return E2GCLConfig(**base)


class TestTrainer:
    def test_trains_and_returns_history(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config())
        result = trainer.train()
        assert len(result.history) == 8
        assert np.isfinite(result.final_loss)
        assert result.total_seconds > 0

    def test_coreset_used_when_enabled(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config())
        trainer.setup()
        assert trainer.coreset is not None
        assert trainer.coreset.budget == fast_config().budget_for(tiny_cora.num_nodes)

    def test_all_nodes_when_coreset_disabled(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config(use_coreset=False))
        trainer.setup()
        assert trainer.coreset is None
        assert trainer._anchors.shape[0] == tiny_cora.num_nodes

    def test_custom_selector_hook(self, tiny_cora):
        calls = {}

        def selector(graph, budget, rng):
            calls["budget"] = budget
            selected = np.arange(budget)
            return selected, np.full(budget, graph.num_nodes / budget)

        trainer = E2GCLTrainer(tiny_cora, fast_config(), selector=selector)
        trainer.setup()
        assert calls["budget"] == fast_config().budget_for(tiny_cora.num_nodes)
        np.testing.assert_array_equal(trainer._anchors, np.arange(calls["budget"]))

    def test_loss_decreases_over_training(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config(epochs=25, lr=0.02))
        result = trainer.train()
        first = np.mean([r.loss for r in result.history[:5]])
        last = np.mean([r.loss for r in result.history[-5:]])
        assert last < first

    def test_infonce_loss_variant_runs(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config(loss="infonce"))
        result = trainer.train()
        assert np.isfinite(result.final_loss)

    def test_callback_invoked_every_epoch(self, tiny_cora):
        epochs_seen = []
        trainer = E2GCLTrainer(tiny_cora, fast_config())
        trainer.train(callback=lambda e, t: epochs_seen.append(e))
        assert epochs_seen == list(range(8))

    def test_view_refresh_interval(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config(view_refresh_interval=4))
        result = trainer.train()
        assert len(result.history) == 8

    def test_embed_shape(self, tiny_cora):
        trainer = E2GCLTrainer(tiny_cora, fast_config())
        trainer.train()
        h = trainer.embed()
        assert h.shape == (tiny_cora.num_nodes, 8)

    def test_deterministic_under_seed(self, tiny_cora):
        h1 = E2GCLTrainer(tiny_cora, fast_config(seed=5)).train().encoder.embed(tiny_cora)
        h2 = E2GCLTrainer(tiny_cora, fast_config(seed=5)).train().encoder.embed(tiny_cora)
        np.testing.assert_allclose(h1, h2)

    def test_single_anchor_euclidean_loss_raises_clear_error(self, tiny_cora):
        """Regression: a degenerate coreset budget (1 anchor) used to reach
        ``sample_negative_indices`` with ``num_negatives <= 0``; the trainer
        now fails up front with an actionable message."""

        def one_node_selector(graph, budget, rng):
            return np.array([0]), np.array([float(graph.num_nodes)])

        trainer = E2GCLTrainer(
            tiny_cora, fast_config(loss="euclidean"), selector=one_node_selector
        )
        with pytest.raises(ValueError, match="at least 2 coreset anchors"):
            trainer.train()

    def test_single_anchor_infonce_still_trains(self, tiny_cora):
        """The InfoNCE variant has no negative-sampling step; a 1-anchor
        coreset is degenerate but must not crash."""

        def one_node_selector(graph, budget, rng):
            return np.array([0]), np.array([float(graph.num_nodes)])

        trainer = E2GCLTrainer(
            tiny_cora, fast_config(epochs=2, loss="infonce"), selector=one_node_selector
        )
        result = trainer.train()
        assert np.isfinite(result.final_loss)

    def test_different_seeds_differ(self, tiny_cora):
        h1 = E2GCLTrainer(tiny_cora, fast_config(seed=1)).train().encoder.embed(tiny_cora)
        h2 = E2GCLTrainer(tiny_cora, fast_config(seed=2)).train().encoder.embed(tiny_cora)
        assert np.abs(h1 - h2).max() > 1e-9


class TestFacade:
    def test_fit_embed_evaluate(self, tiny_cora):
        model = E2GCL(fast_config())
        model.fit(tiny_cora)
        h = model.embed()
        assert h.shape[0] == tiny_cora.num_nodes
        result = model.evaluate(trials=2)
        assert 0.0 <= result.test_accuracy.mean <= 1.0

    def test_keyword_overrides(self, tiny_cora):
        model = E2GCL(epochs=3, num_clusters=8, sample_size=20, node_ratio=0.3)
        assert model.config.epochs == 3

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            E2GCL().embed()

    def test_timing_properties(self, tiny_cora):
        model = E2GCL(fast_config()).fit(tiny_cora)
        assert model.selection_seconds > 0
        assert model.training_seconds >= model.selection_seconds

    def test_coreset_accessible(self, tiny_cora):
        model = E2GCL(fast_config()).fit(tiny_cora)
        assert model.coreset is not None
        assert model.coreset.weights.sum() == tiny_cora.num_nodes

    def test_learned_beats_untrained_encoder(self, small_cora):
        """Pre-training should beat a random-init encoder on linear eval."""
        from repro.eval import evaluate_embeddings
        from repro.nn import GCN

        model = E2GCL(fast_config(epochs=40, node_ratio=0.4)).fit(small_cora)
        trained = model.evaluate(trials=3).test_accuracy.mean
        random_encoder = GCN(small_cora.num_features, 16, 8, seed=0)
        untrained = evaluate_embeddings(
            small_cora, random_encoder.embed(small_cora), trials=3
        ).test_accuracy.mean
        assert trained > untrained - 0.02  # must at least match; usually beats
