"""Contrastive losses: Eq. 5 semantics, InfoNCE, negative sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.core import (
    euclidean_contrastive_loss,
    infonce_loss,
    sample_negative_indices,
)


def random_embeddings(rng, m=12, d=6):
    return Tensor(rng.normal(size=(m, d)), requires_grad=True)


class TestEuclideanLoss:
    def test_identical_views_give_negative_loss(self, rng):
        """Positive distance 0, negatives positive → loss < 0 (Eq. 5)."""
        h = random_embeddings(rng)
        negs = sample_negative_indices(12, 4, rng)
        loss = euclidean_contrastive_loss(h, Tensor(h.data.copy()), negs)
        assert loss.item() < 0

    def test_decreases_when_positives_align(self, rng):
        h1 = random_embeddings(rng)
        h2 = random_embeddings(rng)
        negs = sample_negative_indices(12, 4, rng)
        far = euclidean_contrastive_loss(h1, h2, negs).item()
        near = euclidean_contrastive_loss(h1, Tensor(h1.data.copy()), negs).item()
        assert near < far

    def test_bounded_by_normalization(self, rng):
        """With l2-normalized embeddings each squared distance ≤ 4, so the
        loss is within [−4, 4] regardless of raw magnitudes."""
        h1 = Tensor(rng.normal(size=(10, 4)) * 1e6)
        h2 = Tensor(rng.normal(size=(10, 4)) * 1e-6)
        negs = sample_negative_indices(10, 3, rng)
        loss = euclidean_contrastive_loss(h1, h2, negs).item()
        assert -4.0 <= loss <= 4.0

    def test_weights_reweight_anchors(self, rng):
        h1 = random_embeddings(rng, m=4)
        h2 = random_embeddings(rng, m=4)
        negs = sample_negative_indices(4, 2, rng)
        w_first = np.array([100.0, 1e-9, 1e-9, 1e-9])
        w_last = np.array([1e-9, 1e-9, 1e-9, 100.0])
        l_first = euclidean_contrastive_loss(h1, h2, negs, weights=w_first).item()
        l_last = euclidean_contrastive_loss(h1, h2, negs, weights=w_last).item()
        assert l_first != pytest.approx(l_last)

    def test_gradients_flow_to_both_views(self, rng):
        h1 = random_embeddings(rng)
        h2 = random_embeddings(rng)
        negs = sample_negative_indices(12, 4, rng)
        euclidean_contrastive_loss(h1, h2, negs).backward()
        assert h1.grad is not None and np.abs(h1.grad).sum() > 0
        assert h2.grad is not None and np.abs(h2.grad).sum() > 0

    def test_negatives_shape_validated(self, rng):
        h = random_embeddings(rng, m=5)
        with pytest.raises(ValueError):
            euclidean_contrastive_loss(h, h, np.zeros((3, 2), dtype=int))

    def test_weight_length_validated(self, rng):
        h = random_embeddings(rng, m=5)
        negs = sample_negative_indices(5, 2, rng)
        with pytest.raises(ValueError):
            euclidean_contrastive_loss(h, h, negs, weights=np.ones(3))


class TestInfoNCE:
    def test_matches_manual_computation(self, rng):
        """Cross-check one direction against a dense numpy recomputation."""
        m, d, t = 5, 3, 0.5
        a = rng.normal(size=(m, d))
        b = rng.normal(size=(m, d))
        loss = infonce_loss(Tensor(a), Tensor(b), temperature=t, symmetric=False).item()

        z1 = a / np.linalg.norm(a, axis=1, keepdims=True)
        z2 = b / np.linalg.norm(b, axis=1, keepdims=True)
        cross = z1 @ z2.T / t
        intra = z1 @ z1.T / t
        manual = 0.0
        for i in range(m):
            denom_terms = np.concatenate([cross[i], np.delete(intra[i], i)])
            log_denom = np.log(np.exp(denom_terms - denom_terms.max()).sum()) + denom_terms.max()
            manual += (log_denom - cross[i, i]) / m
        assert loss == pytest.approx(manual, rel=1e-6)

    def test_aligned_pairs_score_lower(self, rng):
        a = rng.normal(size=(10, 4))
        aligned = infonce_loss(Tensor(a), Tensor(a.copy())).item()
        shuffled = infonce_loss(Tensor(a), Tensor(a[::-1].copy())).item()
        assert aligned < shuffled

    def test_symmetric_averages_directions(self, rng):
        a, b = rng.normal(size=(8, 4)), rng.normal(size=(8, 4))
        sym = infonce_loss(Tensor(a), Tensor(b), symmetric=True).item()
        d1 = infonce_loss(Tensor(a), Tensor(b), symmetric=False).item()
        d2 = infonce_loss(Tensor(b), Tensor(a), symmetric=False).item()
        assert sym == pytest.approx((d1 + d2) / 2, rel=1e-9)

    def test_temperature_validated(self, rng):
        a = Tensor(rng.normal(size=(4, 3)))
        with pytest.raises(ValueError):
            infonce_loss(a, a, temperature=0.0)

    def test_gradients_flow(self, rng):
        h1 = random_embeddings(rng, m=6)
        h2 = random_embeddings(rng, m=6)
        infonce_loss(h1, h2).backward()
        assert np.abs(h1.grad).sum() > 0


class TestNegativeSampling:
    def test_shape(self, rng):
        negs = sample_negative_indices(10, 4, rng)
        assert negs.shape == (10, 4)

    def test_never_self(self, rng):
        negs = sample_negative_indices(50, 8, rng)
        anchors = np.arange(50)[:, None]
        assert (negs != anchors).all()

    def test_indices_in_range(self, rng):
        negs = sample_negative_indices(20, 5, rng)
        assert negs.min() >= 0 and negs.max() < 20

    def test_requires_two_anchors(self, rng):
        with pytest.raises(ValueError):
            sample_negative_indices(1, 1, rng)

    def test_requires_positive_count(self, rng):
        with pytest.raises(ValueError):
            sample_negative_indices(5, 0, rng)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 10), st.integers(0, 10_000))
    def test_property_no_self_negatives(self, m, q, seed):
        rng = np.random.default_rng(seed)
        negs = sample_negative_indices(m, q, rng)
        assert (negs != np.arange(m)[:, None]).all()
        assert negs.min() >= 0 and negs.max() < m
