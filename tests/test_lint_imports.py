"""Wire ``tools/check_imports.py`` into the suite: ``src/`` stays import-clean."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_imports", ROOT / "tools" / "check_imports.py"
)
check_imports = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_imports)


def test_src_has_no_unused_imports():
    findings = []
    for path in sorted((ROOT / "src").rglob("*.py")):
        if path.name == "__init__.py":
            continue
        findings.extend(check_imports.check_file(path))
    assert not findings, "unused imports:\n" + "\n".join(findings)


def test_detects_unused_import(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("import os\nimport sys\n\nprint(sys.argv)\n")
    findings = check_imports.check_file(module)
    assert len(findings) == 1 and "os" in findings[0]


def test_attribute_usage_counts(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("import os.path\n\nprint(os.path.sep)\n")
    assert check_imports.check_file(module) == []


def test_future_imports_exempt(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("from __future__ import annotations\n\nx = 1\n")
    assert check_imports.check_file(module) == []
