"""Seed-for-seed loss-trajectory equivalence across the engine refactor.

The reference values below were captured by running the pre-engine code
(each method's hand-rolled optimizer loop) at the repository state just
before the port, with ``epochs=6, embedding_dim=8, hidden_dim=16, seed=0``
on the shared ``tiny_cora`` graph.  The engine port must reproduce them to
1e-8 per epoch: optimizer construction, RNG stream consumption order, and
module seeding all moved, and any slip shows up here as a diverged
trajectory.
"""

import numpy as np
import pytest

from repro.baselines import get_method

KWARGS = dict(epochs=6, embedding_dim=8, hidden_dim=16, seed=0)

# Per-epoch losses of the pre-refactor implementations (6 epochs, seed 0).
REFERENCE_LOSSES = {
    "grace": [
        5.654061706092769,
        5.662198389569422,
        5.731176977691955,
        5.559432988506691,
        5.549300904950453,
        5.549232044424922,
    ],
    "bgrl": [
        2.4809346728606783,
        2.017810511096933,
        1.6607712891647664,
        1.389215978681448,
        1.2022238248244381,
        0.9926430921057262,
    ],
    "e2gcl": [
        4.547301675400685,
        4.213976768752556,
        4.001879156440164,
        3.8804190927571094,
        3.806671660271287,
        3.729183132911804,
    ],
}


@pytest.mark.parametrize("name", sorted(REFERENCE_LOSSES))
def test_engine_port_reproduces_prerefactor_losses(name, tiny_cora):
    method = get_method(name, **KWARGS)
    method.fit(tiny_cora)
    np.testing.assert_allclose(
        method.info.losses,
        REFERENCE_LOSSES[name],
        rtol=0.0,
        atol=1e-8,
        err_msg=f"{name}: engine trajectory diverged from pre-refactor reference",
    )


@pytest.mark.parametrize("name", sorted(REFERENCE_LOSSES))
def test_two_engine_runs_are_bit_identical(name, tiny_cora):
    runs = []
    for _ in range(2):
        method = get_method(name, **KWARGS)
        method.fit(tiny_cora)
        runs.append((list(method.info.losses), method.embed(tiny_cora)))
    assert runs[0][0] == runs[1][0]
    np.testing.assert_array_equal(runs[0][1], runs[1][1])
