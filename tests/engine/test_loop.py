"""Unit tests for the unified training loop and its stock hooks."""

import numpy as np
import pytest

from repro.autograd import Parameter
from repro.engine import (
    CallbackHook,
    EarlyStopping,
    EpochRecord,
    Hook,
    RngStreams,
    RunHistory,
    StopAfter,
    TrainLoop,
    TrainStep,
)


class QuadraticStep(TrainStep):
    """Minimize ||w - target||^2 — the smallest real optimization problem."""

    def __init__(self, target=(1.0, -2.0, 3.0)):
        self.target = np.asarray(target, dtype=np.float64)
        self.w = Parameter(np.zeros_like(self.target))
        self.prepared = False

    def prepare(self, loop):
        self.prepared = True

    def trainable_parameters(self):
        return [self.w]

    def compute_loss(self, loop, epoch):
        return ((self.w - self.target) ** 2.0).mean()

    def checkpoint_components(self):
        return {"w": self.w}


class ScriptedStep(TrainStep):
    """Replay a fixed loss sequence (no optimizer; tests loop mechanics)."""

    def __init__(self, losses):
        self.losses = list(losses)

    def run_epoch(self, loop, epoch):
        return self.losses[epoch]


class RecordingHook(Hook):
    """Log every event for ordering assertions."""

    def __init__(self, name, log):
        self.name = name
        self.log = log

    def on_setup(self, loop):
        self.log.append((self.name, "setup"))

    def on_epoch_start(self, loop, epoch):
        self.log.append((self.name, "start", epoch))

    def on_epoch_end(self, loop, epoch, record):
        self.log.append((self.name, "end", epoch))

    def on_stop(self, loop):
        self.log.append((self.name, "stop"))


def test_loop_decreases_quadratic_loss():
    step = QuadraticStep()
    history = TrainLoop(step, epochs=200, lr=0.1).run()
    assert step.prepared
    assert len(history.records) == 200
    assert history.final_loss < history.losses[0]
    np.testing.assert_allclose(step.w.data, step.target, atol=0.1)


def test_history_is_monotone_in_time_and_epoch():
    history = TrainLoop(QuadraticStep(), epochs=5, lr=0.1).run()
    epochs = [r.epoch for r in history.records]
    assert epochs == list(range(5))
    elapsed = history.elapsed
    assert all(b >= a for a, b in zip(elapsed, elapsed[1:]))
    assert history.total_seconds >= elapsed[-1]


def test_no_optimizer_for_parameterless_steps():
    loop = TrainLoop(ScriptedStep([3.0, 2.0, 1.0]), epochs=3)
    history = loop.run()
    assert loop.optimizer is None
    assert history.losses == [3.0, 2.0, 1.0]


def test_hooks_fire_in_list_order():
    log = []
    hooks = [RecordingHook("a", log), RecordingHook("b", log)]
    TrainLoop(ScriptedStep([1.0, 0.5]), epochs=2, hooks=hooks).run()
    assert log == [
        ("a", "setup"), ("b", "setup"),
        ("a", "start", 0), ("b", "start", 0),
        ("a", "end", 0), ("b", "end", 0),
        ("a", "start", 1), ("b", "start", 1),
        ("a", "end", 1), ("b", "end", 1),
        ("a", "stop"), ("b", "stop"),
    ]


def test_early_stopping_stops_after_patience_bad_epochs():
    # Loss improves twice, then plateaus: patience=2 stops at epoch 4.
    losses = [5.0, 4.0, 4.0, 4.0, 4.0, 3.0, 2.0]
    stopper = EarlyStopping(patience=2)
    loop = TrainLoop(ScriptedStep(losses), epochs=len(losses), hooks=[stopper])
    history = loop.run()
    assert stopper.stopped_epoch == 3
    assert stopper.best_epoch == 1
    assert stopper.best_loss == 4.0
    assert len(history.records) == 4
    assert "early stop" in loop.stop_reason


def test_early_stopping_min_delta_counts_tiny_gains_as_plateau():
    losses = [1.0, 0.999, 0.998, 0.997]
    stopper = EarlyStopping(patience=2, min_delta=0.01)
    history = TrainLoop(
        ScriptedStep(losses), epochs=len(losses), hooks=[stopper]
    ).run()
    assert stopper.stopped_epoch == 2
    assert len(history.records) == 3


def test_early_stopping_never_fires_on_improving_loss():
    losses = [4.0, 3.0, 2.0, 1.0]
    stopper = EarlyStopping(patience=1)
    history = TrainLoop(
        ScriptedStep(losses), epochs=len(losses), hooks=[stopper]
    ).run()
    assert stopper.stopped_epoch is None
    assert len(history.records) == 4


def test_early_stopping_rejects_nonpositive_patience():
    with pytest.raises(ValueError):
        EarlyStopping(patience=0)


def test_stop_after_truncates_the_run():
    history = TrainLoop(
        ScriptedStep([1.0] * 10), epochs=10, hooks=[StopAfter(3)]
    ).run()
    assert [r.epoch for r in history.records] == [0, 1, 2, 3]


def test_callback_hook_preserves_legacy_signature():
    seen = []
    owner = object()
    hook = CallbackHook(lambda epoch, who: seen.append((epoch, who)), owner=owner)
    TrainLoop(ScriptedStep([1.0, 2.0]), epochs=2, hooks=[hook]).run()
    assert seen == [(0, owner), (1, owner)]


def test_exclude_seconds_deducts_probe_time():
    class Excluding(Hook):
        def on_epoch_end(self, hook_loop, epoch, record):
            hook_loop.exclude_seconds(100.0)

    loop = TrainLoop(ScriptedStep([1.0]), epochs=1, hooks=[Excluding()])
    history = loop.run()
    assert history.total_seconds < 0  # 100 fake seconds were deducted


def test_rng_streams_are_deterministic_and_named():
    a, b = RngStreams(7), RngStreams(7)
    assert a.main.random() == b.main.random()
    assert a.stream("views", offset=5).random() == b.stream("views", offset=5).random()
    # Distinct offsets seed distinct streams; lookups are cached by name.
    c = RngStreams(7)
    assert c.stream("x", offset=1).random() != c.stream("y", offset=2).random()
    assert c.stream("x") is c.stream("x", offset=99)
    # State round-trips through the JSON-friendly snapshot.
    state = a.state()
    before = a.main.random()
    a.set_state(state)
    assert a.main.random() == before


def test_run_history_row_round_trip():
    history = RunHistory()
    history.append(EpochRecord(epoch=0, loss=2.5, elapsed_seconds=0.1))
    history.append(EpochRecord(epoch=1, loss=1.5, elapsed_seconds=0.2))
    history.total_seconds = 0.3
    clone = RunHistory.from_rows(history.to_rows())
    assert clone.losses == history.losses
    assert clone.elapsed == history.elapsed
    assert clone.next_epoch == 2


def test_negative_epochs_rejected():
    with pytest.raises(ValueError):
        TrainLoop(ScriptedStep([]), epochs=-1)
