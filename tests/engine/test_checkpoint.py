"""Engine checkpoint (v2) save / resume / reload behaviour.

Two guarantees:

* every registered method round-trips through ``fit`` →
  ``PeriodicCheckpoint`` → ``load_checkpoint`` → ``embed`` with identical
  embeddings (no retraining);
* a run killed mid-training (simulated with :class:`StopAfter`) resumed
  from its last checkpoint finishes with **bit-identical** final
  embeddings and loss trajectory — parameters, optimizer slots, RNG
  streams, and E2GCL's cached views all restore exactly.
"""

import numpy as np
import pytest

from repro.baselines import available_methods, get_method
from repro.engine import (
    CHECKPOINT_VERSION,
    CheckpointCorruptError,
    PeriodicCheckpoint,
    StopAfter,
    atomic_savez,
    find_latest_valid,
    load_step_state,
    payload_digest,
    read_checkpoint,
    verify_checkpoint,
)

KWARGS = dict(epochs=6, embedding_dim=8, hidden_dim=16, seed=0)

RESUME_METHODS = ("grace", "bgrl", "e2gcl")


def make(name):
    kwargs = dict(KWARGS)
    if name in ("deepwalk", "node2vec"):
        kwargs.pop("epochs")  # walk methods run one engine epoch regardless
        kwargs.pop("hidden_dim")
    return get_method(name, **kwargs)


@pytest.mark.parametrize("name", available_methods())
def test_save_load_embed_round_trip(name, tiny_cora, tmp_path):
    path = tmp_path / f"{name}.npz"
    method = make(name)
    method.fit(tiny_cora, hooks=[PeriodicCheckpoint(path, every=2)])
    expected = method.embed(tiny_cora)

    restored = make(name).load_checkpoint(path, tiny_cora)
    np.testing.assert_array_equal(restored.embed(tiny_cora), expected)


@pytest.mark.parametrize("name", available_methods())
def test_checkpoint_metadata(name, tiny_cora, tmp_path):
    path = tmp_path / f"{name}.npz"
    method = make(name)
    method.fit(tiny_cora, hooks=[PeriodicCheckpoint(path, every=100)])
    meta, _arrays = read_checkpoint(path)
    assert meta["version"] == CHECKPOINT_VERSION
    assert meta["epoch_next"] == len(method.info.losses)
    assert [row[1] for row in meta["history"]] == method.info.losses
    assert meta["elapsed_seconds"] > 0


@pytest.mark.parametrize("name", RESUME_METHODS)
def test_killed_run_resumes_bit_identically(name, tiny_cora, tmp_path):
    # Reference: one uninterrupted run.
    reference = make(name)
    reference.fit(tiny_cora)
    expected_losses = list(reference.info.losses)
    expected_embed = reference.embed(tiny_cora)

    # Interrupted run: checkpoint every epoch, killed after epoch 2.
    path = tmp_path / f"{name}.npz"
    killed = make(name)
    killed.fit(
        tiny_cora,
        hooks=[PeriodicCheckpoint(path, every=1), StopAfter(2)],
    )
    assert len(killed.info.losses) == 3

    # Resume and finish: trajectory and embeddings must match bit-for-bit.
    resumed = make(name)
    resumed.fit(tiny_cora, resume_from=path)
    assert resumed.info.losses == expected_losses
    np.testing.assert_array_equal(resumed.embed(tiny_cora), expected_embed)


def test_e2gcl_resume_mid_view_refresh_interval(tiny_cora, tmp_path):
    """Killing E2GCL between view refreshes exercises the RNG replay path:
    the cached views are regenerated from the saved refresh-time state."""
    kwargs = dict(KWARGS, view_refresh_interval=4)

    reference = get_method("e2gcl", **kwargs)
    reference.fit(tiny_cora)
    expected_embed = reference.embed(tiny_cora)

    path = tmp_path / "e2gcl.npz"
    killed = get_method("e2gcl", **kwargs)
    # Stop after epoch 1 — inside the first 4-epoch refresh interval.
    killed.fit(tiny_cora, hooks=[PeriodicCheckpoint(path, every=1), StopAfter(1)])

    resumed = get_method("e2gcl", **kwargs)
    resumed.fit(tiny_cora, resume_from=path)
    assert resumed.info.losses == reference.info.losses
    np.testing.assert_array_equal(resumed.embed(tiny_cora), expected_embed)


def test_resume_continues_elapsed_clock(tiny_cora, tmp_path):
    path = tmp_path / "grace.npz"
    method = make("grace")
    method.fit(tiny_cora, hooks=[PeriodicCheckpoint(path, every=1), StopAfter(2)])
    saved_elapsed = method.last_loop.history.records[-1].elapsed_seconds

    resumed = make("grace")
    resumed.fit(tiny_cora, resume_from=path)
    # Epoch 3's timestamp includes the interrupted run's elapsed time.
    assert resumed.last_loop.history.records[3].elapsed_seconds > saved_elapsed


def test_step_class_mismatch_rejected(tiny_cora, tmp_path):
    path = tmp_path / "grace.npz"
    make("grace").fit(tiny_cora, hooks=[PeriodicCheckpoint(path, every=100)])
    wrong = make("bgrl")
    wrong.materialize(tiny_cora)
    with pytest.raises(ValueError, match="written by step"):
        load_step_state(wrong, path)


def test_load_checkpoint_rejects_unfitted_path(tmp_path, tiny_cora):
    with pytest.raises((FileNotFoundError, OSError)):
        make("grace").load_checkpoint(tmp_path / "missing.npz", tiny_cora)


class TestCrashSafety:
    """Atomic writes, digest validation, and corrupt-aware discovery."""

    def write_one(self, tiny_cora, path):
        method = make("grace")
        method.fit(tiny_cora, hooks=[PeriodicCheckpoint(path, every=100)])
        return method

    def test_atomic_savez_leaves_no_tmp_files(self, tmp_path):
        payload = {"a": np.arange(5), "b": np.eye(2)}
        out = atomic_savez(tmp_path / "blob.npz", payload)
        assert out.exists()
        assert list(tmp_path.glob(".*.tmp-*")) == []
        with np.load(out) as data:
            np.testing.assert_array_equal(data["a"], np.arange(5))

    def test_checkpoints_carry_a_valid_digest(self, tiny_cora, tmp_path):
        path = tmp_path / "grace.npz"
        self.write_one(tiny_cora, path)
        assert verify_checkpoint(path)
        with np.load(path) as data:
            assert "meta/digest" in data.files

    def test_digest_mismatch_is_corruption(self, tiny_cora, tmp_path):
        path = tmp_path / "grace.npz"
        self.write_one(tiny_cora, path)
        # Rewrite one payload array without refreshing the digest: the
        # file stays a perfectly readable zip, only the digest disagrees.
        with np.load(path) as data:
            contents = {key: data[key] for key in data.files}
        first_state = next(k for k in contents if k.startswith("state/"))
        contents[first_state] = contents[first_state] + 1.0
        atomic_savez(path, contents)
        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointCorruptError, match="digest"):
            read_checkpoint(path)

    def test_truncated_file_is_corruption(self, tiny_cora, tmp_path):
        path = tmp_path / "grace.npz"
        self.write_one(tiny_cora, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        assert not verify_checkpoint(path)
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(path)

    def test_find_latest_valid_prefers_newest_intact(self, tiny_cora, tmp_path):
        method = make("grace")
        method.fit(tiny_cora, hooks=[PeriodicCheckpoint(tmp_path / "a.npz", every=100)])
        # Same state, later "epoch" via a second longer fit.
        longer = get_method("grace", **dict(KWARGS, epochs=8))
        longer.fit(tiny_cora, hooks=[PeriodicCheckpoint(tmp_path / "b.npz", every=100)])
        assert find_latest_valid(tmp_path).name == "b.npz"
        (tmp_path / "b.npz").write_bytes(b"junk")
        assert find_latest_valid(tmp_path).name == "a.npz"

    def test_find_latest_valid_empty_or_missing_dir(self, tmp_path):
        assert find_latest_valid(tmp_path) is None
        assert find_latest_valid(tmp_path / "nope") is None

    def test_payload_digest_ignores_the_digest_entry(self):
        payload = {"x": np.arange(3)}
        digest = payload_digest(payload)
        payload["meta/digest"] = np.frombuffer(digest.encode(), dtype=np.uint8)
        assert payload_digest(payload) == digest
