"""Wire ``tools/check_no_silent_except.py`` into the suite.

``src/`` must never swallow exceptions silently: no bare ``except:``, no
``except Exception:`` with a do-nothing body (outside the tool's
allowlist).  Silent handlers are how injected NaNs and corrupt
checkpoints would escape the resilience guards.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_no_silent_except", ROOT / "tools" / "check_no_silent_except.py"
)
check_no_silent_except = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_no_silent_except)


def test_src_has_no_silent_excepts():
    findings = []
    for path in sorted((ROOT / "src").rglob("*.py")):
        findings.extend(check_no_silent_except.check_file(path))
    assert not findings, "silent except handlers:\n" + "\n".join(findings)


def test_detects_bare_except(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("try:\n    x = 1\nexcept:\n    x = 2\n")
    findings = check_no_silent_except.check_file(module)
    assert len(findings) == 1 and "bare" in findings[0]


def test_detects_broad_silent_handler(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("try:\n    x = 1\nexcept Exception:\n    pass\n")
    findings = check_no_silent_except.check_file(module)
    assert len(findings) == 1 and "swallows" in findings[0]


def test_broad_in_tuple_is_caught(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "try:\n    x = 1\nexcept (ValueError, BaseException):\n    ...\n"
    )
    assert len(check_no_silent_except.check_file(module)) == 1


def test_narrow_silent_handler_is_legal(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("try:\n    import foo\nexcept ImportError:\n    pass\n")
    assert check_no_silent_except.check_file(module) == []


def test_broad_handler_with_real_body_is_legal(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "try:\n    x = 1\nexcept Exception as exc:\n    raise RuntimeError(str(exc))\n"
    )
    assert check_no_silent_except.check_file(module) == []


def test_allowlist_suppresses(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("try:\n    x = 1\nexcept Exception:\n    pass\n")
    key = f"{module}:3"
    check_no_silent_except.ALLOWLIST[key] = "test fixture"
    try:
        assert check_no_silent_except.check_file(module) == []
    finally:
        del check_no_silent_except.ALLOWLIST[key]
