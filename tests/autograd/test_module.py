"""Module tree mechanics: parameter registration, state dicts, train/eval."""

import numpy as np
import pytest

from repro.autograd import Module, Parameter, Sequential, Tensor, ops


class Affine(Module):
    def __init__(self, scale=2.0):
        super().__init__()
        self.weight = Parameter(np.array([scale]))

    def forward(self, x):
        return ops.mul(x, self.weight)


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Affine(3.0)
        self.bias = Parameter(np.array([1.0]))

    def forward(self, x):
        return ops.add(self.inner(x), self.bias)


class TestRegistration:
    def test_parameters_collected_recursively(self):
        model = Nested()
        params = model.parameters()
        assert len(params) == 2

    def test_named_parameters_paths(self):
        names = dict(Nested().named_parameters())
        assert set(names) == {"bias", "inner.weight"}

    def test_num_parameters(self):
        assert Nested().num_parameters() == 2


class TestStateDict:
    def test_roundtrip(self):
        model = Nested()
        state = model.state_dict()
        model.inner.weight.data[:] = 99.0
        model.load_state_dict(state)
        assert model.inner.weight.data[0] == 3.0

    def test_state_dict_is_a_copy(self):
        model = Nested()
        state = model.state_dict()
        state["bias"][:] = 42.0
        assert model.bias.data[0] == 1.0

    def test_mismatched_keys_raise(self):
        model = Nested()
        with pytest.raises(KeyError):
            model.load_state_dict({"bias": np.array([1.0])})

    def test_mismatched_shape_raises(self):
        model = Nested()
        state = model.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError, match="shape"):
            model.load_state_dict(state)


class TestTrainEval:
    def test_mode_propagates(self):
        model = Nested()
        model.eval()
        assert not model.training and not model.inner.training
        model.train()
        assert model.training and model.inner.training


class TestGradFlow:
    def test_zero_grad_clears_all(self):
        model = Nested()
        out = ops.sum(model(Tensor(np.array([2.0]))))
        out.backward()
        assert model.inner.weight.grad is not None
        model.zero_grad()
        assert model.inner.weight.grad is None
        assert model.bias.grad is None

    def test_forward_backward_through_tree(self):
        model = Nested()
        x = Tensor(np.array([2.0]))
        ops.sum(model(x)).backward()
        assert model.inner.weight.grad[0] == pytest.approx(2.0)
        assert model.bias.grad[0] == pytest.approx(1.0)


class TestSequential:
    def test_chains_modules(self):
        model = Sequential(Affine(2.0), Affine(5.0))
        out = model(Tensor(np.array([1.0])))
        assert out.data[0] == pytest.approx(10.0)
        assert len(model.parameters()) == 2
