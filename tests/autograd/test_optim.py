"""Optimizers: convergence on convex problems, decay semantics, schedulers."""

import numpy as np
import pytest

from repro.autograd import SGD, Adam, AdamW, CosineAnnealingLR, ExponentialLR, Parameter, Tensor, ops


def quadratic_loss(param: Parameter, target: np.ndarray):
    diff = ops.sub(param, Tensor(target))
    return ops.sum(ops.mul(diff, diff))


def run_steps(optimizer, param, target, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        quadratic_loss(param, target).backward()
        optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        target = np.array([1.0, 2.0])
        run_steps(SGD([p], lr=0.1), p, target, 100)
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        target = np.array([1.0])
        plain = Parameter(np.array([10.0]))
        run_steps(SGD([plain], lr=0.01), plain, target, 30)
        momentum = Parameter(np.array([10.0]))
        run_steps(SGD([momentum], lr=0.01, momentum=0.9), momentum, target, 30)
        assert abs(momentum.data[0] - 1.0) < abs(plain.data[0] - 1.0)

    def test_weight_decay_shrinks_params(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        ops.sum(ops.mul(p, 0.0)).backward()  # zero data gradient
        opt.step()
        assert p.data[0] == pytest.approx(0.9)

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([5.0]))
        SGD([p], lr=0.1).step()  # no backward happened
        assert p.data[0] == 5.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([8.0, -3.0]))
        target = np.array([0.5, 0.5])
        run_steps(Adam([p], lr=0.1), p, target, 300)
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ≈ lr * sign(grad).
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        quadratic_loss(p, np.array([0.0])).backward()
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.01, abs=1e-6)


class TestAdamW:
    def test_decoupled_decay_applies_before_update(self):
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        ops.sum(ops.mul(p, 0.0)).backward()
        opt.step()
        # decay: 1.0 - 0.1*0.5*1.0 = 0.95; grad is 0 so Adam adds nothing.
        assert p.data[0] == pytest.approx(0.95)

    def test_decay_restored_after_step(self):
        p = Parameter(np.array([1.0]))
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        quadratic_loss(p, np.array([0.0])).backward()
        opt.step()
        assert opt.weight_decay == 0.5


class TestValidation:
    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)


class TestSchedulers:
    def test_exponential_decay(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5)
        sched.step()
        sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_cosine_annealing_endpoints(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decreasing(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=5)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        assert all(a > b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_invalid_tmax(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)
