"""Tensor mechanics: construction, backward, accumulation, broadcasting."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd.tensor import _unbroadcast, ensure_tensor


class TestConstruction:
    def test_wraps_array(self):
        t = Tensor(np.ones((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert not t.requires_grad

    def test_coerces_scalars_and_lists(self):
        assert Tensor(3.0).data.dtype == np.float64
        assert Tensor([[1, 2], [3, 4]]).shape == (2, 2)

    def test_ensure_tensor_passthrough(self):
        t = Tensor(1.0)
        assert ensure_tensor(t) is t
        assert isinstance(ensure_tensor(2.0), Tensor)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2.0).detach()
        assert not b.requires_grad
        c = ops.sum(b * 3.0)
        c.backward()
        assert a.grad is None

    def test_item_scalar(self):
        assert Tensor(5.0).item() == 5.0


class TestBackward:
    def test_scalar_backward_default_grad(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a).backward()
        assert a.grad == pytest.approx(4.0)

    def test_nonscalar_requires_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (a * 2.0).backward()

    def test_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_gradient_accumulates_across_backwards(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 2.0).backward()
        (a * 2.0).backward()
        assert a.grad == pytest.approx(4.0)

    def test_zero_grad(self):
        a = Tensor(1.0, requires_grad=True)
        (a * 2.0).backward()
        a.zero_grad()
        assert a.grad is None

    def test_diamond_graph_accumulation(self):
        # f = (a*2) + (a*3): grad should be 5, requiring correct topo order.
        a = Tensor(1.0, requires_grad=True)
        b = a * 2.0
        c = a * 3.0
        (b + c).backward()
        assert a.grad == pytest.approx(5.0)

    def test_shared_subexpression(self):
        # f = (a*b) + (a*b) computed through one shared node.
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(3.0, requires_grad=True)
        prod = a * b
        (prod + prod).backward()
        assert a.grad == pytest.approx(6.0)
        assert b.grad == pytest.approx(4.0)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(1.0, requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.backward()
        assert a.grad == pytest.approx(1.0)

    def test_constant_branch_untouched(self):
        a = Tensor(1.0, requires_grad=True)
        c = Tensor(5.0)  # constant
        (a * c).backward()
        assert c.grad is None


class TestBroadcasting:
    def test_unbroadcast_row(self):
        grad = np.ones((4, 3))
        out = _unbroadcast(grad, (3,))
        np.testing.assert_allclose(out, [4.0, 4.0, 4.0])

    def test_unbroadcast_keepdims_axis(self):
        grad = np.ones((4, 3))
        out = _unbroadcast(grad, (4, 1))
        np.testing.assert_allclose(out, np.full((4, 1), 3.0))

    def test_broadcast_add_gradients(self):
        a = Tensor(np.zeros((2, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        ops.sum(a + b).backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, [2.0, 2.0, 2.0])

    def test_broadcast_mul_gradients(self):
        a = Tensor(np.full((2, 3), 2.0), requires_grad=True)
        b = Tensor(np.full((1, 3), 3.0), requires_grad=True)
        ops.sum(a * b).backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 3.0))
        np.testing.assert_allclose(b.grad, np.full((1, 3), 4.0))

    def test_scalar_broadcast(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        ops.sum(a * 2.0 + 1.0).backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))


class TestOperatorOverloads:
    def test_arithmetic_values(self):
        a = Tensor([4.0])
        b = Tensor([2.0])
        assert (a + b).data[0] == 6.0
        assert (a - b).data[0] == 2.0
        assert (a * b).data[0] == 8.0
        assert (a / b).data[0] == 2.0
        assert (-a).data[0] == -4.0
        assert (a ** 2).data[0] == 16.0

    def test_reflected_ops(self):
        a = Tensor([2.0])
        assert (1.0 + a).data[0] == 3.0
        assert (1.0 - a).data[0] == -1.0
        assert (3.0 * a).data[0] == 6.0
        assert (8.0 / a).data[0] == 4.0

    def test_matmul_and_transpose(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3))
        b = Tensor(np.arange(6, dtype=float).reshape(3, 2))
        np.testing.assert_allclose((a @ b).data, a.data @ b.data)
        np.testing.assert_allclose(a.T.data, a.data.T)

    def test_indexing(self):
        a = Tensor(np.arange(9, dtype=float).reshape(3, 3), requires_grad=True)
        row = a[1]
        np.testing.assert_allclose(row.data, [3.0, 4.0, 5.0])

    def test_reshape_method(self):
        a = Tensor(np.arange(6, dtype=float))
        assert a.reshape(2, 3).shape == (2, 3)
        assert a.reshape((3, 2)).shape == (3, 2)
