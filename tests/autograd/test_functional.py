"""Loss functions: values against hand computations, gradients, edge cases."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional, ops


class TestMSE:
    def test_value(self):
        pred = Tensor([[1.0, 2.0]])
        loss = functional.mse_loss(pred, np.array([[0.0, 0.0]]))
        assert loss.item() == pytest.approx((1 + 4) / 2)

    def test_zero_at_target(self):
        pred = Tensor([[3.0]])
        assert functional.mse_loss(pred, np.array([[3.0]])).item() == 0.0


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = Tensor(np.zeros((4, 3)), requires_grad=True)
        loss = functional.cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_confident_correct_is_near_zero(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss = functional.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="disagree"):
            functional.cross_entropy(Tensor(np.zeros((3, 2))), np.array([0, 1]))

    def test_weighted_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]))
        labels = np.array([0, 0])  # second example is wrong
        w = np.array([1.0, 3.0])
        loss = functional.cross_entropy(logits, labels, weights=w)
        log_p = np.log(np.exp([2.0, 0.0]) / np.exp([2.0, 0.0]).sum())
        log_p2 = np.log(np.exp([0.0, 2.0]) / np.exp([0.0, 2.0]).sum())
        expected = -(1.0 * log_p[0] + 3.0 * log_p2[0]) / 4.0
        assert loss.item() == pytest.approx(expected)

    def test_gradient_shape_and_direction(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        functional.cross_entropy(logits, np.array([0, 1])).backward()
        # Gradient should be negative at the true class, positive elsewhere.
        assert logits.grad[0, 0] < 0 < logits.grad[0, 1]
        assert logits.grad[1, 1] < 0 < logits.grad[1, 0]
        np.testing.assert_allclose(logits.grad.sum(axis=1), 0.0, atol=1e-12)


class TestBCEWithLogits:
    def test_matches_reference(self):
        logits = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        targets = np.array([0.0, 1.0, 1.0, 0.0, 1.0])
        loss = functional.binary_cross_entropy_with_logits(Tensor(logits), targets)
        p = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-9)

    def test_stable_at_extreme_logits(self):
        logits = Tensor(np.array([-1000.0, 1000.0]), requires_grad=True)
        loss = functional.binary_cross_entropy_with_logits(logits, np.array([0.0, 1.0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()


class TestRegularization:
    def test_l2_value(self):
        params = [Tensor(np.array([3.0, 4.0]), requires_grad=True)]
        reg = functional.l2_regularization(params, 0.1)
        assert reg.item() == pytest.approx(2.5)

    def test_empty_params_raise(self):
        with pytest.raises(ValueError):
            functional.l2_regularization([], 0.1)


class TestDistances:
    def test_pairwise_sq_euclidean_matches_manual(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(5, 3))
        out = functional.pairwise_sq_euclidean(Tensor(a), Tensor(b)).data
        manual = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(out, manual, atol=1e-10)

    def test_rowwise_sq_euclidean(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[3.0, 4.0], [1.0, 1.0]])
        out = functional.rowwise_sq_euclidean(Tensor(a), Tensor(b)).data
        np.testing.assert_allclose(out, [25.0, 0.0])

    def test_cosine_similarity_bounds_and_self(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(6, 4))
        sims = functional.cosine_similarity_matrix(Tensor(a), Tensor(a)).data
        assert sims.max() <= 1.0 + 1e-9
        assert sims.min() >= -1.0 - 1e-9
        np.testing.assert_allclose(np.diag(sims), 1.0, atol=1e-9)

    def test_bootstrap_cosine_loss_zero_when_aligned(self):
        a = np.array([[1.0, 0.0], [0.0, 2.0]])
        loss = functional.bootstrap_cosine_loss(Tensor(a), Tensor(a * 5.0))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_bootstrap_cosine_loss_max_when_opposed(self):
        a = np.array([[1.0, 0.0]])
        loss = functional.bootstrap_cosine_loss(Tensor(a), Tensor(-a))
        assert loss.item() == pytest.approx(4.0)
