"""Finite-difference verification of every differentiable op.

One parametrized case per public function of ``repro.autograd.ops`` and
``repro.autograd.functional``; a meta-test asserts the case list actually
covers the full public surface, so adding an op without a gradcheck case
fails the suite.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.autograd import functional as F
from repro.autograd import gradcheck, ops
from repro.autograd.gradcheck import GradcheckResult

RNG = np.random.default_rng(42)


def _mat(rows=3, cols=4, low=-2.0, high=2.0, away_from=None, margin=0.25):
    """Random matrix; optionally pushed ``margin`` away from a kink point."""
    x = RNG.uniform(low, high, size=(rows, cols))
    if away_from is not None:
        x = np.where(np.abs(x - away_from) < margin,
                     x + np.sign(x - away_from + 1e-12) * margin, x)
    return x


A = _mat()
B = _mat()
POS = _mat(low=0.5, high=2.0)
KINKED = _mat(away_from=0.0)          # for relu/abs/leaky_relu/elu
NONZERO_ROWS = _mat(low=0.5, high=2.0)  # for l2_normalize_rows/row_norms
SQUARE = _mat(3, 3)
VEC = RNG.uniform(-2.0, 2.0, size=4)
LABELS = np.array([0, 2, 1])
TARGETS01 = RNG.uniform(0.05, 0.95, size=(3, 4))
SPARSE = sp.random(3, 3, density=0.6, random_state=7, format="csr")
IDX = np.array([0, 2, 1, 2])
BIAS3 = RNG.uniform(0.1, 0.6, size=3)
ZEROS = np.zeros((3, 4))
# (3, 2) negative-index matrix for the gather kernel and the sampled
# objective paths; column 2 repeats across rows to exercise scatter-add.
NEGS = np.array([[1, 2], [0, 2], [0, 1]])
POS_SCORES = RNG.uniform(-1.5, 1.5, size=3)
NEG_SCORES = RNG.uniform(-1.5, 1.5, size=5)
WEIGHTS3 = np.array([1.0, 3.0, 2.0])


# Each case: (name, fn, inputs).  ``name`` doubles as the coverage key —
# everything before the first "/" must be the op's public name.
OP_CASES = [
    ("add", lambda a, b: ops.add(a, b), [A, B]),
    ("add/broadcast", lambda a, b: ops.add(a, b), [A, VEC]),
    ("sub", lambda a, b: ops.sub(a, b), [A, B]),
    ("mul", lambda a, b: ops.mul(a, b), [A, B]),
    ("div", lambda a, b: ops.div(a, b), [A, POS]),
    ("neg", lambda a: ops.neg(a), [A]),
    ("power", lambda a: ops.power(a, 3.0), [A]),
    ("power/fractional", lambda a: ops.power(a, 1.5), [POS]),
    ("exp", lambda a: ops.exp(a), [A]),
    ("log", lambda a: ops.log(a), [POS]),
    ("log/eps", lambda a: ops.log(a, eps=0.1), [POS]),
    # Boundary regression: at a == 0 the eps-clamped backward must return
    # the finite 1/eps, not divide by the raw (zero) input.
    ("log/boundary-eps", lambda a: ops.log(a, eps=0.5), [ZEROS]),
    ("sqrt", lambda a: ops.sqrt(a), [POS]),
    ("abs", lambda a: ops.abs(a), [KINKED]),
    ("relu", lambda a: ops.relu(a), [KINKED]),
    ("leaky_relu", lambda a: ops.leaky_relu(a, 0.2), [KINKED]),
    ("sigmoid", lambda a: ops.sigmoid(a), [A]),
    ("tanh", lambda a: ops.tanh(a), [A]),
    ("elu", lambda a: ops.elu(a, alpha=1.3), [KINKED]),
    ("softmax", lambda a: ops.softmax(a), [A]),
    ("softmax/axis0", lambda a: ops.softmax(a, axis=0), [A]),
    ("log_softmax", lambda a: ops.log_softmax(a), [A]),
    ("matmul", lambda a, b: ops.matmul(a, b), [A, B.T.copy()]),
    ("spmm", lambda d: ops.spmm(SPARSE, d), [SQUARE]),
    ("transpose", lambda a: ops.transpose(a), [A]),
    ("sum", lambda a: ops.sum(a), [A]),
    ("sum/axis", lambda a: ops.sum(a, axis=1), [A]),
    ("sum/keepdims", lambda a: ops.sum(a, axis=0, keepdims=True), [A]),
    ("mean", lambda a: ops.mean(a), [A]),
    ("mean/axis", lambda a: ops.mean(a, axis=0), [A]),
    ("reshape", lambda a: ops.reshape(a, (4, 3)), [A]),
    ("index", lambda a: ops.index(a, (np.arange(3), LABELS)), [A]),
    ("gather_rows", lambda a: ops.gather_rows(a, IDX), [A]),
    ("concat", lambda a, b: ops.concat([a, b], axis=0), [A, B]),
    ("concat/axis1", lambda a, b: ops.concat([a, b], axis=1), [A, B]),
    ("stack_rows", lambda a, b: ops.stack_rows([a, b]), [VEC, VEC + 1.0]),
    ("l2_normalize_rows", lambda a: ops.l2_normalize_rows(a), [NONZERO_ROWS]),
    # The generator is rebuilt from the same seed on every call, so every
    # finite-difference evaluation sees the identical dropout mask.
    ("dropout", lambda a: ops.dropout(a, 0.4, np.random.default_rng(7)), [A]),
    ("row_norms", lambda a: ops.row_norms(a), [NONZERO_ROWS]),
    # Fused kernels: every activation branch plus the bias/no-bias paths.
    ("spmm_bias_act",
     lambda d, b: ops.spmm_bias_act(SPARSE, d, bias=b, activation="tanh"), [SQUARE, BIAS3]),
    ("spmm_bias_act/relu",
     lambda d, b: ops.spmm_bias_act(SPARSE, d, bias=b, activation="relu"), [SQUARE, BIAS3]),
    ("spmm_bias_act/leaky",
     lambda d: ops.spmm_bias_act(SPARSE, d, activation="leaky_relu", negative_slope=0.2),
     [SQUARE]),
    ("spmm_bias_act/elu",
     lambda d: ops.spmm_bias_act(SPARSE, d, activation="elu", alpha=1.3), [SQUARE]),
    ("spmm_bias_act/plain", lambda d: ops.spmm_bias_act(SPARSE, d), [SQUARE]),
    ("linear_act",
     lambda x, w, b: ops.linear_act(x, w, bias=b, activation="elu"), [A, B.T.copy(), BIAS3]),
    ("linear_act/sigmoid",
     lambda x, w: ops.linear_act(x, w, activation="sigmoid"), [A, B.T.copy()]),
    ("linear_act/relu",
     lambda x, w, b: ops.linear_act(x, w, bias=b, activation="relu"), [A, B.T.copy(), BIAS3]),
    ("linear_act/plain",
     lambda x, w, b: ops.linear_act(x, w, bias=b), [A, B.T.copy(), BIAS3]),
    ("normalize_cosine_sim",
     lambda a, b: ops.normalize_cosine_sim(a, b), [NONZERO_ROWS, POS]),
    ("normalize_cosine_rowwise",
     lambda a, b: ops.normalize_cosine_rowwise(a, b), [NONZERO_ROWS, POS]),
    # Gathered similarity: rows of ``a`` against sampled columns of ``b``
    # (the O(n·k) subsampled-negatives kernel).  NEGS repeats column 2 so
    # the scatter-add path in the b-gradient is exercised.
    ("normalize_cosine_sim_gather",
     lambda a, b: ops.normalize_cosine_sim_gather(a, b, NEGS), [NONZERO_ROWS, POS]),
    ("normalize_cosine_sim_gather/self",
     lambda a: ops.normalize_cosine_sim_gather(a, a, NEGS), [NONZERO_ROWS]),
]

FUNCTIONAL_CASES = [
    ("mse_loss", lambda p: F.mse_loss(p, B), [A]),
    ("cross_entropy", lambda lg: F.cross_entropy(lg, LABELS), [A]),
    ("cross_entropy/weighted",
     lambda lg: F.cross_entropy(lg, LABELS, weights=np.array([1.0, 3.0, 2.0])),
     [A]),
    ("binary_cross_entropy_with_logits",
     lambda lg: F.binary_cross_entropy_with_logits(lg, TARGETS01), [A]),
    ("l2_regularization", lambda a, b: F.l2_regularization([a, b], 0.3), [A, B]),
    ("pairwise_sq_euclidean", lambda a, b: F.pairwise_sq_euclidean(a, b), [A, B]),
    ("rowwise_sq_euclidean", lambda a, b: F.rowwise_sq_euclidean(a, b), [A, B]),
    ("cosine_similarity_matrix",
     lambda a, b: F.cosine_similarity_matrix(a, b), [NONZERO_ROWS, POS]),
    ("rowwise_cosine_similarity",
     lambda a, b: F.rowwise_cosine_similarity(a, b), [NONZERO_ROWS, POS]),
    ("bootstrap_cosine_loss",
     lambda a, b: F.bootstrap_cosine_loss(a, b), [NONZERO_ROWS, POS]),
]

# ----------------------------------------------------------------------
# Contrast layer: every objective × mode pair gets a finite-difference
# case.  Names follow "contrast:<objective>/<mode>[-variant]"; the
# coverage meta-test below walks the objective registry so a new
# objective without gradcheck cases for both modes fails the suite.
# ----------------------------------------------------------------------
from repro.contrast import get_objective  # noqa: E402


def _pair(name, **kwargs):
    obj = get_objective(name, **kwargs)
    return lambda a, b: obj.pair_loss(a, b)


def _pair_sampled(name, **kwargs):
    obj = get_objective(name, **kwargs)
    return lambda a, b: obj.pair_loss(a, b, negatives=NEGS)


def _score(name, **kwargs):
    obj = get_objective(name, **kwargs)
    return lambda p, n: obj.score_loss(p, n)


CONTRAST_CASES = [
    ("contrast:infonce/l2l", _pair("infonce", temperature=0.6), [NONZERO_ROWS, POS]),
    ("contrast:infonce/l2l-sampled",
     _pair_sampled("infonce", temperature=0.6), [NONZERO_ROWS, POS]),
    ("contrast:infonce/l2l-weighted",
     (lambda a, b: get_objective("infonce").pair_loss(a, b, weights=WEIGHTS3)),
     [NONZERO_ROWS, POS]),
    ("contrast:infonce/g2l", _score("infonce", temperature=0.6),
     [POS_SCORES, NEG_SCORES]),
    ("contrast:jsd/l2l", _pair("jsd"), [NONZERO_ROWS, POS]),
    ("contrast:jsd/l2l-sampled", _pair_sampled("jsd"), [NONZERO_ROWS, POS]),
    ("contrast:jsd/g2l", _score("jsd"), [POS_SCORES, NEG_SCORES]),
    ("contrast:jsd/g2l-weighted",
     (lambda p, n: get_objective("jsd").score_loss(p, n, weights=WEIGHTS3)),
     [POS_SCORES, NEG_SCORES]),
    ("contrast:barlow/l2l", _pair("barlow"), [A, B]),
    ("contrast:barlow/g2l", _score("barlow"), [POS_SCORES, NEG_SCORES]),
    ("contrast:bootstrap/l2l", _pair("bootstrap"), [NONZERO_ROWS, POS]),
    ("contrast:bootstrap/l2l-weighted",
     (lambda a, b: get_objective("bootstrap").pair_loss(a, b, weights=WEIGHTS3)),
     [NONZERO_ROWS, POS]),
    ("contrast:bootstrap/g2l", _score("bootstrap"), [POS_SCORES, NEG_SCORES]),
    ("contrast:margin/l2l", _pair("margin", margin=0.4), [NONZERO_ROWS, POS]),
    ("contrast:margin/l2l-sampled",
     _pair_sampled("margin", margin=0.4), [NONZERO_ROWS, POS]),
    ("contrast:margin/g2l", _score("margin", margin=0.4),
     [POS_SCORES, NEG_SCORES]),
    # Euclidean always needs sampled negatives in pair form (Eq. 5).
    ("contrast:euclidean/l2l-sampled",
     _pair_sampled("euclidean"), [NONZERO_ROWS, POS]),
    ("contrast:euclidean/l2l-weighted",
     (lambda a, b: get_objective("euclidean").pair_loss(
         a, b, negatives=NEGS, weights=WEIGHTS3)),
     [NONZERO_ROWS, POS]),
    ("contrast:euclidean/g2l", _score("euclidean"), [POS_SCORES, NEG_SCORES]),
]

ALL_CASES = OP_CASES + FUNCTIONAL_CASES + CONTRAST_CASES


@pytest.mark.parametrize(
    "fn,inputs", [case[1:] for case in ALL_CASES], ids=[c[0] for c in ALL_CASES]
)
def test_gradcheck(fn, inputs):
    result = gradcheck(fn, inputs)
    assert result.passed
    assert result.max_abs_error < 1e-4


def _public_functions(module):
    import inspect

    return {
        name
        for name, obj in vars(module).items()
        if inspect.isfunction(obj)
        and not name.startswith("_")
        and obj.__module__ == module.__name__
    }


def test_every_op_has_a_gradcheck_case():
    covered = {case[0].split("/")[0] for case in ALL_CASES}
    missing_ops = _public_functions(ops) - covered
    missing_fn = _public_functions(F) - covered
    assert not missing_ops, f"ops without a gradcheck case: {sorted(missing_ops)}"
    assert not missing_fn, f"functional without a gradcheck case: {sorted(missing_fn)}"


def test_every_objective_mode_pair_has_a_gradcheck_case():
    """Walk the objective registry: each objective needs an L2L (pair_loss)
    and a G2L (score_loss) gradcheck case, so new objectives can't land
    without finite-difference coverage of both modes."""
    from repro.contrast import available_objectives

    covered = set()
    for case in CONTRAST_CASES:
        objective, mode = case[0].split(":", 1)[1].split("/", 1)
        covered.add((objective, mode.split("-")[0]))
    missing = []
    for objective in available_objectives():
        for mode in ("l2l", "g2l"):
            if (objective, mode) not in covered:
                missing.append(f"{objective}/{mode}")
    assert not missing, f"objective×mode without a gradcheck case: {missing}"


def test_gradcheck_catches_wrong_backward():
    """A deliberately broken backward must be flagged, not silently pass."""
    from repro.autograd.ops import _make
    from repro.autograd.tensor import ensure_tensor

    def bad_square(a):
        a = ensure_tensor(a)

        def backward(grad):
            if a.requires_grad:
                a._accumulate_grad(grad * 3.0 * a.data)  # wrong: d(x^2) != 3x

        return _make(a.data ** 2, (a,), backward)

    with pytest.raises(AssertionError, match="gradcheck failed"):
        gradcheck(bad_square, [POS])
    result = gradcheck(bad_square, [POS], raise_on_failure=False)
    assert isinstance(result, GradcheckResult)
    assert not result
    assert result.failures
