"""Gradient buffer arena: reuse, aliasing safety, leak plateau, numerics."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.autograd import arena
from repro.autograd.arena import GradArena, active_arena


def _train_graph(w1, w2, x_data):
    """A small two-parameter graph exercising matmul/relu/mul/sum backwards."""
    x = Tensor(x_data)
    h = ops.relu(ops.matmul(x, w1))
    out = ops.matmul(h, w2)
    return ops.sum(ops.mul(out, out))


def _fresh_problem(seed=0):
    rng = np.random.default_rng(seed)
    w1 = Tensor(rng.normal(size=(6, 5)), requires_grad=True)
    w2 = Tensor(rng.normal(size=(5, 4)), requires_grad=True)
    x = rng.normal(size=(8, 6))
    return w1, w2, x


class TestGradArena:
    def test_acquire_miss_then_release_then_hit(self):
        pool = GradArena()
        a = pool.acquire((3, 4), np.float64)
        assert a.shape == (3, 4) and a.dtype == np.float64
        assert pool.misses == 1 and pool.hits == 0
        pool.release(a)
        b = pool.acquire((3, 4), np.float64)
        assert b is a, "released buffer must be reused, not reallocated"
        assert pool.hits == 1

    def test_acquire_zero_clears_recycled_buffer(self):
        pool = GradArena()
        a = pool.acquire((2, 2), np.float64)
        a.fill(7.0)
        pool.release(a)
        b = pool.acquire((2, 2), np.float64, zero=True)
        assert b is a
        assert np.all(b == 0.0)

    def test_release_ignores_views_and_none(self):
        pool = GradArena()
        base = np.zeros((4, 4))
        pool.release(base[:2])  # view: not poolable
        pool.release(None)
        assert pool.pooled_buffers() == 0

    def test_pool_bounded_per_key(self):
        pool = GradArena(max_per_key=2)
        buffers = [np.zeros((3,)) for _ in range(5)]
        for b in buffers:
            pool.release(b)
        assert pool.pooled_buffers() == 2
        assert pool.dropped == 3

    def test_keys_separate_shapes_and_dtypes(self):
        pool = GradArena()
        pool.release(np.zeros((2, 2), dtype=np.float64))
        got = pool.acquire((2, 2), np.float32)
        assert got.dtype == np.float32
        assert pool.misses == 1, "float64 buffer must not satisfy a float32 acquire"

    def test_invalid_max_per_key(self):
        with pytest.raises(ValueError):
            GradArena(max_per_key=0)


class TestBackwardIntegration:
    def test_buffers_stable_across_steps(self):
        """After a warm-up step the pool satisfies every later step: no new
        allocations (stable buffer population, misses plateau)."""
        w1, w2, x = _fresh_problem()
        with active_arena() as pool:
            _train_graph(w1, w2, x).backward()
            w1.zero_grad(), w2.zero_grad()
            warm_misses = pool.misses
            warm_ids = {id(b) for stack in pool._pool.values() for b in stack}
            assert warm_ids, "warm-up step must leave buffers in the pool"
            for _ in range(5):
                _train_graph(w1, w2, x).backward()
                w1.zero_grad(), w2.zero_grad()
            assert pool.misses == warm_misses, "steady state must not allocate"
            assert pool.hits > 0
            steady_ids = {id(b) for stack in pool._pool.values() for b in stack}
            assert steady_ids <= warm_ids, "steady state must recycle warm-up buffers"

    def test_leaf_grads_do_not_alias_pool(self):
        """Live leaf gradients must never share memory with pooled buffers
        (the optimizer reads leaf grads after backward returns)."""
        w1, w2, x = _fresh_problem()
        with active_arena() as pool:
            _train_graph(w1, w2, x).backward()
            assert w1.grad is not None and w2.grad is not None
            assert not np.shares_memory(w1.grad, w2.grad)
            for stack in pool._pool.values():
                for buffer in stack:
                    assert not np.shares_memory(buffer, w1.grad)
                    assert not np.shares_memory(buffer, w2.grad)

    def test_leaf_grads_survive_two_backwards(self):
        """Accumulating a second backward into live leaf grads must add, not
        clobber through a recycled buffer."""
        w1, w2, x = _fresh_problem()
        with active_arena():
            _train_graph(w1, w2, x).backward()
            once = w1.grad.copy()
            _train_graph(w1, w2, x).backward()
            np.testing.assert_array_equal(w1.grad, 2.0 * once)

    def test_pool_plateaus_over_100_steps(self):
        """The pool's footprint must flatline, not grow with step count."""
        w1, w2, x = _fresh_problem()
        sizes = []
        with active_arena() as pool:
            for step in range(100):
                _train_graph(w1, w2, x).backward()
                w1.zero_grad(), w2.zero_grad()
                sizes.append(pool.pooled_buffers())
        assert sizes[-1] == sizes[10], "pool grew after warm-up: leak"
        assert max(sizes[10:]) == min(sizes[10:])
        assert pool.pooled_bytes() < 10 * (8 * 6 * 8 * 8)  # few small buffers only

    def test_numerics_bit_identical_with_arena(self):
        w1a, w2a, x = _fresh_problem(3)
        loss_plain = _train_graph(w1a, w2a, x)
        loss_plain.backward()

        w1b, w2b, _ = _fresh_problem(3)
        with active_arena():
            loss_pooled = _train_graph(w1b, w2b, x)
            loss_pooled.backward()

        np.testing.assert_array_equal(loss_plain.data, loss_pooled.data)
        np.testing.assert_array_equal(w1a.grad, w1b.grad)
        np.testing.assert_array_equal(w2a.grad, w2b.grad)

    def test_intermediate_grads_returned_to_pool(self):
        """Backward must release non-leaf gradients (they are cleared and
        their buffers pooled) while the root keeps its grad."""
        w1, w2, x = _fresh_problem()
        with active_arena() as pool:
            loss = _train_graph(w1, w2, x)
            loss.backward()
            assert loss.grad is not None, "root keeps its gradient"
            assert pool.pooled_buffers() > 0


class TestActivation:
    def test_active_arena_restores_previous(self):
        assert arena.current() is None
        outer = GradArena()
        with active_arena(arena=outer):
            assert arena.current() is outer
            with active_arena() as inner:
                assert arena.current() is inner and inner is not outer
            assert arena.current() is outer
        assert arena.current() is None

    def test_enable_disable(self):
        try:
            pool = arena.enable()
            assert arena.is_enabled() and arena.current() is pool
        finally:
            arena.disable()
        assert not arena.is_enabled()

    def test_publish_stats_lands_in_perf_gauges(self):
        from repro import perf

        perf.reset()
        pool = GradArena()
        pool.release(pool.acquire((4, 4), np.float64))
        stats = arena.publish_stats(pool)
        assert stats["misses"] == 1 and stats["released"] == 1
        assert perf.get_gauge("arena.pooled_buffers") == 1
        assert perf.get_gauge("arena.pooled_bytes") == 4 * 4 * 8

    def test_publish_stats_without_arena_is_noop(self):
        assert arena.current() is None
        assert arena.publish_stats() == {}
