"""Gradient correctness of every op, checked against finite differences."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, ops


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = fn(x)
        flat[i] = orig - eps
        f_minus = fn(x)
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2 * eps)
    return grad


def check_gradient(op, x: np.ndarray, atol=1e-5, **kwargs):
    """Compare autodiff gradient of sum(op(x)) with finite differences."""
    t = Tensor(x.copy(), requires_grad=True)
    out = ops.sum(op(t, **kwargs))
    out.backward()

    def f(arr):
        return float(op(Tensor(arr), **kwargs).data.sum())

    expected = numeric_grad(f, x.copy())
    np.testing.assert_allclose(t.grad, expected, atol=atol, rtol=1e-4)


RNG = np.random.default_rng(42)
X = RNG.normal(size=(4, 3))
X_POS = np.abs(X) + 0.5


UNARY_CASES = [
    (ops.neg, X),
    (ops.exp, X),
    (lambda t: ops.log(t), X_POS),
    (lambda t: ops.power(t, 3.0), X),
    (lambda t: ops.power(t, 0.5), X_POS),
    (ops.abs, X + 0.1),      # keep away from the kink
    (ops.relu, X + 0.05),
    (lambda t: ops.leaky_relu(t, 0.1), X + 0.05),
    (ops.sigmoid, X),
    (ops.tanh, X),
    (ops.elu, X + 0.05),
    (lambda t: ops.softmax(t, axis=-1), X),
    (lambda t: ops.log_softmax(t, axis=-1), X),
    (ops.transpose, X),
    (lambda t: ops.sum(t, axis=0), X),
    (lambda t: ops.sum(t, axis=1, keepdims=True), X),
    (lambda t: ops.mean(t, axis=1), X),
    (lambda t: ops.mean(t), X),
    (lambda t: ops.reshape(t, (3, 4)), X),
    (lambda t: ops.l2_normalize_rows(t), X),
    (lambda t: ops.row_norms(t), X),
]


@pytest.mark.parametrize("op,x", UNARY_CASES, ids=[f"case{i}" for i in range(len(UNARY_CASES))])
def test_unary_gradients(op, x):
    check_gradient(op, x)


class TestBinaryGradients:
    def test_add_sub_mul_div(self):
        a = RNG.normal(size=(3, 2))
        b = RNG.normal(size=(3, 2)) + 2.0
        for op in (ops.add, ops.sub, ops.mul, ops.div):
            ta = Tensor(a.copy(), requires_grad=True)
            tb = Tensor(b.copy(), requires_grad=True)
            ops.sum(op(ta, tb)).backward()
            ga = numeric_grad(lambda arr: float(op(Tensor(arr), Tensor(b)).data.sum()), a.copy())
            gb = numeric_grad(lambda arr: float(op(Tensor(a), Tensor(arr)).data.sum()), b.copy())
            np.testing.assert_allclose(ta.grad, ga, atol=1e-5)
            np.testing.assert_allclose(tb.grad, gb, atol=1e-5)

    def test_matmul_gradients(self):
        a = RNG.normal(size=(3, 4))
        b = RNG.normal(size=(4, 2))
        ta = Tensor(a.copy(), requires_grad=True)
        tb = Tensor(b.copy(), requires_grad=True)
        ops.sum(ops.matmul(ta, tb)).backward()
        np.testing.assert_allclose(ta.grad, np.ones((3, 2)) @ b.T, atol=1e-10)
        np.testing.assert_allclose(tb.grad, a.T @ np.ones((3, 2)), atol=1e-10)


class TestSparse:
    def test_spmm_forward(self):
        a = sp.random(5, 5, density=0.4, random_state=1, format="csr")
        x = RNG.normal(size=(5, 3))
        out = ops.spmm(a, Tensor(x))
        np.testing.assert_allclose(out.data, a @ x)

    def test_spmm_gradient(self):
        a = sp.random(5, 5, density=0.4, random_state=2, format="csr")
        x = RNG.normal(size=(5, 3))
        t = Tensor(x.copy(), requires_grad=True)
        ops.sum(ops.spmm(a, t)).backward()
        expected = a.T @ np.ones((5, 3))
        np.testing.assert_allclose(t.grad, np.asarray(expected), atol=1e-10)

    def test_spmm_transpose_cached_on_matrix(self):
        """The backward pass computes ``A.T`` once and pins it on the CSR
        object; repeated backwards reuse the cached transpose."""
        a = sp.random(6, 6, density=0.3, random_state=3, format="csr")
        assert not hasattr(a, "_repro_csr_transpose")
        t = Tensor(RNG.normal(size=(6, 4)), requires_grad=True)
        ops.sum(ops.spmm(a, t)).backward()
        cached = a._repro_csr_transpose
        assert sp.issparse(cached) and cached.format == "csr"
        ops.sum(ops.spmm(a, t)).backward()
        assert a._repro_csr_transpose is cached, "transpose must be computed once"

    def test_spmm_gradient_bit_identical_to_fresh_transpose(self):
        """Cached-transpose backward must equal ``A.T.tocsr() @ g`` bitwise —
        the cache is a pure memoization, not a numerical shortcut."""
        a = sp.random(8, 8, density=0.35, random_state=4, format="csr")
        x = RNG.normal(size=(8, 5))
        seed = RNG.normal(size=(8, 5))

        t = Tensor(x.copy(), requires_grad=True)
        out = ops.spmm(a, t)
        out.backward(seed)
        first = t.grad.copy()

        # Second backward goes through the now-cached transpose.
        t2 = Tensor(x.copy(), requires_grad=True)
        ops.spmm(a, t2).backward(seed)

        reference = np.asarray(a.T.tocsr() @ seed)
        np.testing.assert_array_equal(first, reference)
        np.testing.assert_array_equal(t2.grad, reference)


class TestGatherConcat:
    def test_index_duplicate_rows_accumulate(self):
        a = Tensor(np.eye(3), requires_grad=True)
        ops.sum(ops.gather_rows(a, np.array([0, 0, 2]))).backward()
        # Row 0 was gathered twice: its gradient is 2·ones(3).
        np.testing.assert_allclose(a.grad.sum(axis=1), [6.0, 0.0, 3.0])

    def test_index_tuple_fancy(self):
        a = Tensor(np.arange(9, dtype=float).reshape(3, 3), requires_grad=True)
        picked = ops.index(a, (np.array([0, 1]), np.array([2, 0])))
        np.testing.assert_allclose(picked.data, [2.0, 3.0])
        ops.sum(picked).backward()
        assert a.grad[0, 2] == 1.0 and a.grad[1, 0] == 1.0
        assert a.grad.sum() == 2.0

    def test_concat_gradients_split_correctly(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = ops.concat([a, b], axis=0)
        assert out.shape == (5, 2)
        out.backward(np.arange(10, dtype=float).reshape(5, 2))
        np.testing.assert_allclose(a.grad, [[0, 1], [2, 3]])
        np.testing.assert_allclose(b.grad, [[4, 5], [6, 7], [8, 9]])

    def test_stack_rows(self):
        parts = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(4)]
        out = ops.stack_rows(parts)
        assert out.shape == (4, 3)
        ops.sum(out).backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, np.ones(3))


class TestDropout:
    def test_dropout_identity_when_eval(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((10, 10)))
        out = ops.dropout(a, 0.5, rng, training=False)
        assert out is a

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        a = Tensor(np.ones((200, 200)))
        out = ops.dropout(a, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_rate(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ops.dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_dropout_gradient_matches_mask(self):
        rng = np.random.default_rng(3)
        a = Tensor(np.ones((5, 5)), requires_grad=True)
        out = ops.dropout(a, 0.4, rng, training=True)
        ops.sum(out).backward()
        np.testing.assert_allclose(a.grad, out.data)  # input was all-ones


class TestNumericalStability:
    def test_sigmoid_extreme_values(self):
        out = ops.sigmoid(Tensor(np.array([-1000.0, 0.0, 1000.0])))
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_softmax_large_logits(self):
        out = ops.softmax(Tensor(np.array([[1000.0, 1000.0, 999.0]])))
        assert np.isfinite(out.data).all()
        assert out.data.sum() == pytest.approx(1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = RNG.normal(size=(3, 5))
        a = ops.log_softmax(Tensor(x)).data
        b = np.log(ops.softmax(Tensor(x)).data)
        np.testing.assert_allclose(a, b, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=5),
        elements=st.floats(-3, 3, allow_nan=False),
    )
)
def test_property_tanh_gradient_matches_fd(x):
    """Hypothesis: tanh gradients match finite differences on arbitrary input."""
    check_gradient(ops.tanh, x, atol=1e-4)


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=5),
        elements=st.floats(-3, 3, allow_nan=False),
    )
)
def test_property_softmax_rows_sum_to_one(x):
    out = ops.softmax(Tensor(x), axis=-1)
    np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(x.shape[0]), atol=1e-9)
