"""Configurable float32/float64 precision: API, propagation, equivalence.

The default dtype is a process-wide policy (``repro.autograd.tensor``),
so every test here restores it — either through the ``default_dtype``
context manager or an autouse guard — to avoid poisoning the rest of the
suite, which assumes float64.

Tolerances: the float32-vs-float64 training comparison below documents
the measured divergence on a tiny problem (losses agree to ~1e-4
relative after 6 epochs); docs/PERFORMANCE.md carries the full-dataset
accuracy numbers.
"""

import numpy as np
import pytest

from repro.autograd import (
    Adam,
    Tensor,
    default_dtype,
    get_default_dtype,
    gradcheck,
    init,
    ops,
    set_default_dtype,
)
from repro.autograd.module import Parameter
from repro.baselines import get_method


@pytest.fixture(autouse=True)
def _restore_default_dtype():
    """No test may leak a non-default precision into the rest of the suite."""
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDtypeAPI:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_set_and_get(self):
        set_default_dtype(np.float32)
        assert get_default_dtype() == np.float32
        set_default_dtype("float64")
        assert get_default_dtype() == np.float64

    def test_accepts_string_names(self):
        set_default_dtype("float32")
        assert get_default_dtype() == np.float32

    def test_context_manager_restores(self):
        assert get_default_dtype() == np.float64
        with default_dtype(np.float32) as active:
            assert active == np.float32
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    @pytest.mark.parametrize("bad", [np.int64, np.float16, "int32", complex])
    def test_rejects_non_float32_64(self, bad):
        with pytest.raises(ValueError):
            set_default_dtype(bad)


class TestDtypePropagation:
    def test_tensor_coerces_to_default(self):
        with default_dtype(np.float32):
            t = Tensor([[1.0, 2.0], [3.0, 4.0]])
            assert t.data.dtype == np.float32
        assert Tensor([1.0]).data.dtype == np.float64

    def test_parameter_follows_default(self):
        with default_dtype(np.float32):
            p = Parameter(np.zeros((3, 3)))
            assert p.data.dtype == np.float32

    def test_initializers_follow_default(self):
        rng = np.random.default_rng(0)
        with default_dtype(np.float32):
            for draw in (
                init.glorot_uniform((4, 3), rng),
                init.glorot_normal((4, 3), rng),
                init.he_uniform((4, 3), rng),
                init.uniform((4, 3), rng),
                init.zeros((4,)),
            ):
                assert draw.dtype == np.float32

    def test_initializer_random_stream_matches_across_precisions(self):
        """Weights are drawn in float64 then cast, so f32 and f64 runs
        consume the same random stream and start from the same values."""
        w64 = init.glorot_uniform((5, 4), np.random.default_rng(7))
        with default_dtype(np.float32):
            w32 = init.glorot_uniform((5, 4), np.random.default_rng(7))
        np.testing.assert_allclose(w32, w64.astype(np.float32), rtol=0, atol=0)

    def test_ops_stay_in_float32(self):
        with default_dtype(np.float32):
            a = Tensor(np.ones((3, 4)), requires_grad=True)
            b = Tensor(np.ones((4, 2)), requires_grad=True)
            out = ops.relu(ops.matmul(a, b))
            loss = ops.sum(out)
            loss.backward()
            assert out.data.dtype == np.float32
            assert a.grad.dtype == np.float32
            assert b.grad.dtype == np.float32

    def test_optimizer_slots_follow_param_dtype(self):
        with default_dtype(np.float32):
            p = Parameter(np.ones((2, 2)))
            opt = Adam([p], lr=0.01)
            assert all(m.dtype == np.float32 for m in opt._m)
            p.grad = np.ones((2, 2), dtype=np.float32)
            opt.step()
            assert p.data.dtype == np.float32

    def test_optimizer_restore_casts_slots(self):
        """A float64 checkpoint restored into a float32 run keeps the whole
        update float32 (slots are cast to each parameter's dtype)."""
        with default_dtype(np.float32):
            p = Parameter(np.ones((2, 2)))
            opt = Adam([p], lr=0.01)
            opt.load_state_dict(
                {"m": [np.zeros((2, 2))], "v": [np.zeros((2, 2))], "t": 3}
            )
            assert opt._m[0].dtype == np.float32
            assert opt._v[0].dtype == np.float32
            assert opt._t == 3

    def test_gradcheck_passes_under_float32_default(self):
        """gradcheck promotes to float64 internally, so fused kernels stay
        verifiable whatever the configured precision."""
        with default_dtype(np.float32):
            a = np.random.default_rng(0).normal(size=(3, 4))
            assert gradcheck(lambda t: ops.sum(ops.tanh(t)), [a])
        assert get_default_dtype() == np.float64


class TestTrainingEquivalence:
    """float32 end-to-end training tracks float64 within documented bounds."""

    KWARGS = dict(epochs=6, embedding_dim=8, hidden_dim=16, seed=0)

    def _fit(self, tiny_cora, dtype):
        with default_dtype(dtype):
            method = get_method("e2gcl", **self.KWARGS)
            method.fit(tiny_cora)
            embeddings = method.embed(tiny_cora)
        return list(method.info.losses), embeddings

    def test_float32_tracks_float64_losses(self, tiny_cora):
        losses64, emb64 = self._fit(tiny_cora, np.float64)
        losses32, emb32 = self._fit(tiny_cora, np.float32)
        assert emb32.dtype == np.float32
        assert emb64.dtype == np.float64
        # Documented tolerance: per-epoch losses relative error < 1e-3 on
        # this tiny graph after 6 epochs (measured ~1e-5..1e-4).
        np.testing.assert_allclose(losses32, losses64, rtol=1e-3)
        # Embeddings drift more than losses (accumulated rounding through
        # the encoder); cosine alignment is the meaningful check.
        a = emb32.astype(np.float64)
        a /= np.linalg.norm(a, axis=1, keepdims=True)
        b = emb64 / np.linalg.norm(emb64, axis=1, keepdims=True)
        cosine = (a * b).sum(axis=1)
        assert cosine.min() > 0.99

    def test_float32_run_is_deterministic(self, tiny_cora):
        first = self._fit(tiny_cora, np.float32)
        second = self._fit(tiny_cora, np.float32)
        assert first[0] == second[0]
        np.testing.assert_array_equal(first[1], second[1])


class TestContrastObjectiveDtype:
    """Every contrast objective computes a float32 loss within 1e-3
    relative of its float64 value (the documented precision bound)."""

    def _pair_inputs(self, dtype):
        rng = np.random.default_rng(0)
        base = rng.normal(size=(24, 8))
        z1 = (base + 0.1 * rng.normal(size=(24, 8))).astype(dtype)
        z2 = (base + 0.1 * rng.normal(size=(24, 8))).astype(dtype)
        return Tensor(z1, requires_grad=True), Tensor(z2, requires_grad=True)

    def _loss(self, name, dtype, negatives=None):
        from repro.contrast import get_objective

        with default_dtype(dtype):
            z1, z2 = self._pair_inputs(dtype)
            obj = get_objective(name)
            loss = obj.pair_loss(z1, z2, negatives=negatives)
            loss.backward()
            assert z1.grad.dtype == dtype
            return float(loss.item())

    @pytest.mark.parametrize("name", ["infonce", "jsd", "barlow", "bootstrap",
                                      "margin"])
    def test_pair_loss_float32_tracks_float64(self, name):
        f64 = self._loss(name, np.float64)
        f32 = self._loss(name, np.float32)
        np.testing.assert_allclose(f32, f64, rtol=1e-3)

    @pytest.mark.parametrize("name", ["infonce", "jsd", "margin", "euclidean"])
    def test_sampled_pair_loss_float32_tracks_float64(self, name):
        from repro.contrast import sample_negative_indices

        negs = sample_negative_indices(24, 6, np.random.default_rng(1))
        f64 = self._loss(name, np.float64, negatives=negs)
        f32 = self._loss(name, np.float32, negatives=negs)
        np.testing.assert_allclose(f32, f64, rtol=1e-3)

    @pytest.mark.parametrize("name", ["infonce", "jsd", "barlow", "bootstrap",
                                      "margin", "euclidean"])
    def test_score_loss_float32_tracks_float64(self, name):
        from repro.contrast import get_objective

        rng = np.random.default_rng(2)
        pos64 = rng.normal(size=10)
        neg64 = rng.normal(size=14)
        obj = get_objective(name)
        f64 = float(obj.score_loss(Tensor(pos64), Tensor(neg64)).item())
        with default_dtype(np.float32):
            f32 = float(
                obj.score_loss(
                    Tensor(pos64.astype(np.float32)),
                    Tensor(neg64.astype(np.float32)),
                ).item()
            )
        np.testing.assert_allclose(f32, f64, rtol=1e-3)

    def test_gather_kernel_float32(self):
        """The fused gather-similarity kernel stays in float32 end to end."""
        from repro.autograd import ops as _ops

        with default_dtype(np.float32):
            rng = np.random.default_rng(3)
            a = Tensor(rng.normal(size=(6, 4)).astype(np.float32),
                       requires_grad=True)
            b = Tensor(rng.normal(size=(6, 4)).astype(np.float32),
                       requires_grad=True)
            cols = np.array([[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]])
            out = _ops.normalize_cosine_sim_gather(a, b, cols)
            _ops.sum(out).backward()
            assert out.data.dtype == np.float32
            assert a.grad.dtype == np.float32
            assert b.grad.dtype == np.float32


class TestCheckpointDtype:
    def test_checkpoint_records_dtype(self, tmp_path, tiny_cora):
        from repro.engine.checkpoint import read_checkpoint
        from repro.engine.hooks import PeriodicCheckpoint

        path = tmp_path / "ck.npz"
        with default_dtype(np.float32):
            method = get_method("e2gcl", epochs=2, embedding_dim=8,
                                hidden_dim=16, seed=0)
            method.fit(tiny_cora, hooks=[PeriodicCheckpoint(str(path), every=1)])
        assert path.exists(), "checkpoint hook wrote nothing"
        meta, payload = read_checkpoint(path)
        assert meta["dtype"] == "float32"
        # read_checkpoint returns state arrays under their bare names.
        assert payload, "checkpoint carried no state arrays"
        assert {arr.dtype for arr in payload.values()} == {np.dtype(np.float32)}

    def test_float64_run_records_float64(self, tmp_path, tiny_cora):
        from repro.engine.checkpoint import read_checkpoint
        from repro.engine.hooks import PeriodicCheckpoint

        path = tmp_path / "ck.npz"
        method = get_method("e2gcl", epochs=1, embedding_dim=8,
                            hidden_dim=16, seed=0)
        method.fit(tiny_cora, hooks=[PeriodicCheckpoint(str(path), every=1)])
        meta, payload = read_checkpoint(path)
        assert meta["dtype"] == "float64"
