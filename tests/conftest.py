"""Shared fixtures: small deterministic graphs and RNGs."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph, load_dataset, random_graph


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def triangle_graph():
    """3-node triangle with simple features and labels."""
    return Graph.from_edge_list(
        3,
        [(0, 1), (1, 2), (0, 2)],
        features=np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]]),
        labels=np.array([0, 1, 1]),
        name="triangle",
    )


@pytest.fixture
def path_graph():
    """5-node path 0-1-2-3-4."""
    return Graph.from_edge_list(
        5,
        [(0, 1), (1, 2), (2, 3), (3, 4)],
        features=np.eye(5),
        labels=np.array([0, 0, 1, 1, 1]),
        name="path",
    )


@pytest.fixture
def star_graph():
    """Hub node 0 connected to 1..5."""
    return Graph.from_edge_list(
        6,
        [(0, i) for i in range(1, 6)],
        features=np.arange(12, dtype=float).reshape(6, 2),
        labels=np.array([0, 1, 1, 1, 1, 1]),
        name="star",
    )


@pytest.fixture
def isolated_node_graph():
    """4 nodes, node 3 isolated."""
    return Graph.from_edge_list(
        4,
        [(0, 1), (1, 2)],
        features=np.ones((4, 3)),
        labels=np.array([0, 0, 1, 1]),
        name="isolated",
    )


@pytest.fixture
def small_er_graph():
    """Random 30-node graph, deterministic."""
    return random_graph(30, edge_prob=0.15, seed=7, num_features=6)


@pytest.fixture(scope="session")
def tiny_cora():
    """Scaled-down Cora analogue shared across integration tests."""
    return load_dataset("cora", seed=3, scale=0.25)


@pytest.fixture(scope="session")
def small_cora():
    """Mid-size Cora analogue for slower integration tests."""
    return load_dataset("cora", seed=5, scale=0.5)
