"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "cora"
        assert args.method == "e2gcl"
        assert args.trace is None

    def test_trace_subcommand_parses(self):
        args = build_parser().parse_args(["trace", "run.jsonl", "--top", "5"])
        assert args.path == "run.jsonl"
        assert args.top == 5


class TestListCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "products" in out

    def test_list_methods(self, capsys):
        assert main(["list-methods"]) == 0
        out = capsys.readouterr().out
        assert "e2gcl" in out and "grace" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "Figure 4(e)" in out


class TestSelect:
    def test_select_small(self, capsys):
        code = main(["select", "--dataset", "cora", "--scale", "0.1",
                     "--ratio", "0.2", "--clusters", "5", "--samples", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected" in out
        assert "class histogram" in out


class TestTrain:
    def test_train_tiny(self, capsys, tmp_path):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1",
                     "--save", str(tmp_path / "m.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert (tmp_path / "m.npz").exists()

    def test_save_rejected_for_baselines(self, tmp_path, capsys):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "1", "--trials", "1", "--method", "dgi",
                     "--save", str(tmp_path / "m.npz")])
        assert code == 2


class TestSampledFlags:
    def test_sampled_parses(self):
        args = build_parser().parse_args(
            ["train", "--sampled", "--batch-size", "64", "--fanouts", "10,5",
             "--local-views", "--anchors", "uniform",
             "--partition-parts", "4"])
        assert args.sampled
        assert args.batch_size == 64
        assert args.fanouts == "10,5"
        assert args.local_views
        assert args.anchors == "uniform"
        assert args.partition_parts == 4

    @pytest.mark.scale
    def test_sampled_train_runs(self, capsys):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1", "--sampled",
                     "--batch-size", "16", "--fanouts", "10,5",
                     "--local-views"])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_sampled_rejected_for_baselines(self, capsys):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "1", "--trials", "1", "--method", "grace",
                     "--sampled"])
        assert code == 2
        assert "e2gcl" in capsys.readouterr().err


class TestResilienceFlags:
    def test_guard_defaults_off(self):
        args = build_parser().parse_args(["train"])
        assert args.guard == "off"
        assert args.max_retries == 3
        assert args.keep_checkpoints == 3

    def test_guard_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--guard", "explode"])

    def test_train_with_recovering_guard(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1", "--method", "grace",
                     "--guard", "recover", "--checkpoint", str(ckpt_dir),
                     "--checkpoint-every", "1", "--keep-checkpoints", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovering checkpoints" in out
        # Retention honored: 2 epochs saved, keep 2.
        assert len(list(ckpt_dir.glob("ckpt-e*.npz"))) == 2

    def test_resume_from_directory(self, capsys, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        assert main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1", "--method", "grace",
                     "--guard", "recover", "--checkpoint", str(ckpt_dir),
                     "--checkpoint-every", "1"]) == 0
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "4", "--trials", "1", "--method", "grace",
                     "--resume", str(ckpt_dir)])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_resume_from_empty_directory_fails_clearly(self, tmp_path, capsys):
        empty = tmp_path / "nothing"
        empty.mkdir()
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1",
                     "--resume", str(empty)])
        assert code == 2
        assert "no valid checkpoint" in capsys.readouterr().err

    def test_resume_from_missing_path_fails_clearly(self, tmp_path, capsys):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1",
                     "--resume", str(tmp_path / "does-not-exist")])
        assert code == 2
        assert "no valid checkpoint" in capsys.readouterr().err
