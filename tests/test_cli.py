"""CLI smoke tests (fast paths only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "cora"
        assert args.method == "e2gcl"
        assert args.trace is None

    def test_trace_subcommand_parses(self):
        args = build_parser().parse_args(["trace", "run.jsonl", "--top", "5"])
        assert args.path == "run.jsonl"
        assert args.top == 5


class TestListCommands:
    def test_list_datasets(self, capsys):
        assert main(["list-datasets"]) == 0
        out = capsys.readouterr().out
        assert "cora" in out and "products" in out

    def test_list_methods(self, capsys):
        assert main(["list-methods"]) == 0
        out = capsys.readouterr().out
        assert "e2gcl" in out and "grace" in out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "Figure 4(e)" in out


class TestSelect:
    def test_select_small(self, capsys):
        code = main(["select", "--dataset", "cora", "--scale", "0.1",
                     "--ratio", "0.2", "--clusters", "5", "--samples", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected" in out
        assert "class histogram" in out


class TestTrain:
    def test_train_tiny(self, capsys, tmp_path):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "2", "--trials", "1",
                     "--save", str(tmp_path / "m.npz")])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert (tmp_path / "m.npz").exists()

    def test_save_rejected_for_baselines(self, tmp_path, capsys):
        code = main(["train", "--dataset", "cora", "--scale", "0.1",
                     "--epochs", "1", "--trials", "1", "--method", "dgi",
                     "--save", str(tmp_path / "m.npz")])
        assert code == 2
