"""API surface hygiene: exports resolve, public items are documented."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.autograd",
    "repro.graphs",
    "repro.nn",
    "repro.core",
    "repro.engine",
    "repro.baselines",
    "repro.eval",
    "repro.bench",
    "repro.perf",
    "repro.obs",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} missing __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} in __all__ but not importable"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings(package):
    module = importlib.import_module(package)
    assert module.__doc__, f"{package} has no module docstring"


@pytest.mark.parametrize("package", PACKAGES)
def test_public_callables_documented(package):
    """Every exported class and function carries a docstring."""
    module = importlib.import_module(package)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{package}: missing docstrings on {undocumented}"


def test_public_classes_have_documented_methods():
    """Public methods of the flagship classes are documented."""
    from repro.core import E2GCL, E2GCLTrainer
    from repro.graphs import Graph
    from repro.nn import GCN

    for cls in (E2GCL, E2GCLTrainer, Graph, GCN):
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert (member.__doc__ or "").strip(), f"{cls.__name__}.{name} undocumented"


def test_version_is_exposed():
    import repro

    assert repro.__version__


def test_stopwatch_stays_removed():
    """``repro.eval.timer`` was folded into ``repro.obs`` spans; the module
    and its ``Stopwatch`` export must not come back."""
    import repro.eval

    assert not hasattr(repro.eval, "Stopwatch")
    assert "Stopwatch" not in repro.eval.__all__
    with pytest.raises(ImportError):
        importlib.import_module("repro.eval.timer")


def test_no_accidental_sklearn_or_torch_imports():
    """The reproduction must stand on numpy/scipy/networkx alone."""
    import sys

    for forbidden in ("torch", "sklearn", "torch_geometric", "dgl"):
        assert forbidden not in sys.modules, f"{forbidden} was imported"
