"""Wire ``tools/check_test_map.py`` into the suite: every ``src/repro``
module has a test file (or an explicit mapping/allowlist entry)."""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_test_map", ROOT / "tools" / "check_test_map.py"
)
check_test_map = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_test_map)


def test_every_module_has_a_test_file():
    problems = check_test_map.check_map()
    assert not problems, "unmapped modules:\n" + "\n".join(problems)


def test_default_convention_paths():
    expected = check_test_map.expected_test_path(
        check_test_map.SRC / "core" / "trainer.py"
    )
    assert expected == check_test_map.TESTS / "core" / "test_trainer.py"
    expected = check_test_map.expected_test_path(check_test_map.SRC / "cli.py")
    assert expected == check_test_map.TESTS / "test_cli.py"


def test_covered_by_targets_exist():
    """A renamed test file cannot silently orphan its mapped modules."""
    for rel, target in check_test_map.COVERED_BY.items():
        assert (ROOT / rel).is_file(), f"stale COVERED_BY key: {rel}"
        assert (ROOT / target).is_file(), f"missing COVERED_BY target: {target}"


def test_scale_package_has_no_exemptions():
    """Every repro.scale module maps to its conventional tests/scale file —
    the oracle tier is first-class, never routed through COVERED_BY or the
    allowlist."""
    exempt = set(check_test_map.COVERED_BY) | check_test_map.ALLOWLIST
    scale_modules = sorted(
        (check_test_map.SRC / "scale").glob("*.py"))
    assert scale_modules, "repro.scale has gone missing"
    for module in scale_modules:
        if module.name == "__init__.py":
            continue
        rel = module.relative_to(ROOT).as_posix()
        assert rel not in exempt, f"{rel} must use the default convention"
        assert check_test_map.expected_test_path(module).is_file()


def test_stream_package_has_no_exemptions():
    """Every repro.stream module maps to its conventional tests/stream file —
    the streaming tier carries the oracle-equivalence and chaos guarantees,
    so it is never routed through COVERED_BY or the allowlist."""
    exempt = set(check_test_map.COVERED_BY) | check_test_map.ALLOWLIST
    stream_modules = sorted(
        (check_test_map.SRC / "stream").glob("*.py"))
    assert stream_modules, "repro.stream has gone missing"
    for module in stream_modules:
        if module.name == "__init__.py":
            continue
        rel = module.relative_to(ROOT).as_posix()
        assert rel not in exempt, f"{rel} must use the default convention"
        assert check_test_map.expected_test_path(module).is_file()


def test_allowlist_is_short_and_real():
    assert len(check_test_map.ALLOWLIST) <= 3, "keep the allowlist short"
    for rel in check_test_map.ALLOWLIST:
        assert (ROOT / rel).is_file(), f"stale allowlist entry: {rel}"
