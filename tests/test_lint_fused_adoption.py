"""Wire ``tools/check_fused_adoption.py`` into the suite.

Model code under ``src/repro/nn/`` and ``src/repro/baselines/`` must use
the fused autograd kernels (``spmm_bias_act``/``linear_act``) instead of
spelling out activation(spmm/matmul + bias) chains op by op.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_fused_adoption", ROOT / "tools" / "check_fused_adoption.py"
)
check_fused_adoption = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_fused_adoption)


def test_models_have_no_unfused_chains():
    findings = []
    for rel in check_fused_adoption.CHECKED_DIRS:
        for path in sorted((ROOT / rel).rglob("*.py")):
            findings.extend(check_fused_adoption.check_file(path))
    assert not findings, "unfused chains:\n" + "\n".join(findings)


def test_detects_relu_over_spmm_add(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "h = ops.relu(ops.add(ops.spmm(a, x), b))\n"
    )
    findings = check_fused_adoption.check_file(module)
    assert len(findings) == 1
    assert "spmm_bias_act" in findings[0]


def test_detects_bare_activation_over_matmul(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\nh = ops.tanh(ops.matmul(x, w))\n"
    )
    findings = check_fused_adoption.check_file(module)
    assert len(findings) == 1
    assert "linear_act" in findings[0]


def test_detects_operator_add_chain(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\nh = ops.elu(ops.spmm(a, x) + b)\n"
    )
    findings = check_fused_adoption.check_file(module)
    assert len(findings) == 1
    assert "spmm_bias_act" in findings[0]


def test_gat_attention_scores_are_not_flagged(tmp_path):
    """``leaky_relu(add(score_src, score_dst))`` has no fused counterpart."""
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "raw = ops.leaky_relu(ops.add(score_src, score_dst), 0.2)\n"
    )
    assert check_fused_adoption.check_file(module) == []


def test_activation_over_other_ops_passes(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "s = ops.sigmoid(ops.mean(h, axis=0, keepdims=True))\n"
    )
    assert check_fused_adoption.check_file(module) == []
