"""Oracle equivalence for incremental CSR mutation: after every apply, the
mutated arrays must be ``np.array_equal`` to a from-scratch rebuild — the
same discipline the scale tier uses against the full-batch oracle."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import Graph
from repro.stream import Delta, DeltaGenerator, MutableGraph


def rebuild_from_scratch(graph: Graph) -> Graph:
    """The from-scratch oracle: re-canonicalize through ``from_edge_list``."""
    upper = sp.triu(graph.adjacency, k=1).tocoo()
    edges = np.stack([upper.row, upper.col], axis=1)
    return Graph.from_edge_list(graph.num_nodes, edges,
                                features=np.array(graph.features),
                                labels=graph.labels)


def assert_csr_equal(actual: Graph, oracle: Graph) -> None:
    assert np.array_equal(
        np.asarray(actual.adjacency.indptr, dtype=np.int64),
        np.asarray(oracle.adjacency.indptr, dtype=np.int64))
    assert np.array_equal(
        np.asarray(actual.adjacency.indices, dtype=np.int64),
        np.asarray(oracle.adjacency.indices, dtype=np.int64))
    assert np.array_equal(actual.features, oracle.features)


class TestOracleEquivalence:
    def test_generated_stream_matches_rebuild(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        generator = DeltaGenerator(stream_graph, seed=2)
        for _ in range(4):
            result = mutable.apply(generator.generate(50))
            assert result.conflicts == 0
            snapshot = mutable.as_graph()
            snapshot.validate()
            assert_csr_equal(snapshot, rebuild_from_scratch(snapshot))

    def test_single_ops_match_rebuild(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        u = int(stream_graph.adjacency.indices[0])
        v = int(stream_graph.num_nodes - 1)
        dim = stream_graph.num_features
        deltas = [
            Delta(op="remove_edge", u=0, v=u, seq=0),
            Delta(op="add_node", node=stream_graph.num_nodes,
                  features=[0.5] * dim, label=1, seq=1),
            Delta(op="add_edge", u=v, v=stream_graph.num_nodes, seq=2),
            Delta(op="update_features", node=3, features=[1.0] * dim, seq=3),
        ]
        result = mutable.apply(deltas)
        assert result.conflicts == 0
        assert result.edges_added == 1 and result.edges_removed == 1
        assert result.added_nodes.tolist() == [stream_graph.num_nodes]
        assert result.feature_updates.tolist() == [3]
        snapshot = mutable.as_graph()
        snapshot.validate()
        assert_csr_equal(snapshot, rebuild_from_scratch(snapshot))
        assert snapshot.labels[-1] == 1

    def test_add_then_remove_nets_out(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        before = mutable.as_graph()
        pair = None
        n = stream_graph.num_nodes
        for u in range(n):
            for v in range(u + 1, n):
                if not mutable.has_edge(u, v):
                    pair = (u, v)
                    break
            if pair:
                break
        result = mutable.apply([
            Delta(op="add_edge", u=pair[0], v=pair[1], seq=0),
            Delta(op="remove_edge", u=pair[0], v=pair[1], seq=1),
        ])
        assert result.conflicts == 0 and result.applied == 2
        assert result.edges_added == 0 and result.edges_removed == 0
        after = mutable.as_graph()
        assert np.array_equal(before.adjacency.indices,
                              after.adjacency.indices)


class TestSnapshotFreezing:
    def test_earlier_snapshots_survive_later_applies(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        snap0 = mutable.as_graph()
        indices0 = np.array(snap0.adjacency.indices)
        features0 = np.array(snap0.features)
        generator = DeltaGenerator(stream_graph, seed=9)
        mutable.apply(generator.generate(120))
        assert np.array_equal(snap0.adjacency.indices, indices0)
        assert np.array_equal(snap0.features, features0)
        assert snap0.num_nodes == stream_graph.num_nodes


class TestConflicts:
    def test_conflicting_deltas_skip_and_warn(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        u = int(stream_graph.adjacency.indices[0])  # (0, u) exists
        dim = stream_graph.num_features
        before = mutable.as_graph()
        with pytest.warns(RuntimeWarning, match="semantic conflict"):
            result = mutable.apply([
                Delta(op="add_edge", u=0, v=u, seq=0),       # already exists
                Delta(op="remove_edge", u=0, v=u + 10 ** 6, seq=1),  # no node
                Delta(op="update_features", node=10 ** 6,
                      features=[0.0] * dim, seq=2),           # unknown node
                Delta(op="add_node", node=5, features=[0.0] * dim,
                      seq=3),                                 # wrong dense id
                Delta(op="add_node", node=stream_graph.num_nodes,
                      features=[0.0] * (dim + 1), seq=4),     # wrong dim
            ])
        assert result.applied == 0
        assert result.conflicts == 5
        assert len(result.conflict_reasons) == 5
        after = mutable.as_graph()
        assert np.array_equal(before.adjacency.indices,
                              after.adjacency.indices)
        assert after.num_nodes == before.num_nodes

    def test_remove_missing_edge_is_conflict_not_crash(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        found = next((u, v) for u in range(stream_graph.num_nodes)
                     for v in range(u + 1, stream_graph.num_nodes)
                     if not mutable.has_edge(u, v))
        with pytest.warns(RuntimeWarning):
            result = mutable.apply([Delta(op="remove_edge", u=found[0],
                                          v=found[1], seq=0)])
        assert result.conflicts == 1
        mutable.as_graph().validate()
