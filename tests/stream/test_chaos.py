"""Chaos tier for streaming: a replay killed mid-log resumes bit-identically
via ``seq``, a torn final record never corrupts the prefix, and corrupt
records degrade to structured skip-and-warn — never a crash."""

import json
import os

import numpy as np
import pytest

from repro.stream import (
    Delta,
    DeltaGenerator,
    DeltaLog,
    MutableGraph,
    read_delta_log,
)


def csr_state(mutable):
    graph = mutable.as_graph()
    return (np.array(graph.adjacency.indptr),
            np.array(graph.adjacency.indices),
            np.array(graph.features))


def assert_same_state(a, b):
    for left, right in zip(a, b):
        assert np.array_equal(left, right)


@pytest.fixture
def written_log(tmp_path, stream_graph):
    path = tmp_path / "deltas.jsonl"
    with DeltaLog(path) as log:
        log.extend(DeltaGenerator(stream_graph, seed=13).generate(150))
    return path


class TestKillMidReplay:
    def test_resume_via_start_seq_is_bit_identical(self, stream_graph,
                                                   written_log):
        """Apply half, 'die', resume from the first unapplied seq — the
        final CSR equals an uninterrupted replay bit for bit."""
        deltas = read_delta_log(written_log).deltas

        uninterrupted = MutableGraph(stream_graph)
        uninterrupted.apply(deltas)

        interrupted = MutableGraph(stream_graph)
        interrupted.apply(deltas[:70])  # process killed here
        resumed = read_delta_log(written_log, start_seq=deltas[70].seq)
        interrupted.apply(resumed.deltas)

        assert_same_state(csr_state(uninterrupted), csr_state(interrupted))

    def test_restart_from_scratch_is_bit_identical(self, stream_graph,
                                                   written_log):
        """A replacement process that replays the whole durable log from
        the base graph reconstructs the exact same arrays."""
        first = MutableGraph(stream_graph)
        for lo in range(0, 150, 30):  # batched, as the coordinator applies
            first.apply(read_delta_log(written_log).deltas[lo:lo + 30])

        second = MutableGraph(stream_graph)
        second.apply(read_delta_log(written_log).deltas)

        assert_same_state(csr_state(first), csr_state(second))

    def test_torn_final_record_leaves_prefix_readable(self, stream_graph,
                                                      written_log):
        """A kill mid-write tears the last line; the fsynced prefix replays
        and the torn tail is a structured skip."""
        intact = read_delta_log(written_log).deltas
        raw = written_log.read_bytes()
        torn = written_log.with_name("torn.jsonl")
        torn.write_bytes(raw[:-17])  # chop into the final record
        with pytest.warns(RuntimeWarning, match="corrupt delta record"):
            result = read_delta_log(torn)
        assert result.skipped == 1
        assert [d.seq for d in result.deltas] == \
            [d.seq for d in intact[:-1]]
        replayed = MutableGraph(stream_graph)
        replayed.apply(result.deltas)
        replayed.as_graph().validate()


class TestCorruptRecords:
    def test_bitrot_mid_log_skips_and_warns(self, stream_graph, tmp_path,
                                            written_log):
        lines = written_log.read_text().splitlines()
        lines[40] = lines[40][:10] + "\x00garbage" + lines[40][10:]
        lines[90] = '{"op": "add_edge", "u": 1, "v": 1, "seq": 90}'  # invalid
        rotted = tmp_path / "rotted.jsonl"
        rotted.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="corrupt delta record"):
            result = read_delta_log(rotted)
        assert result.skipped == 2
        assert all("rotted.jsonl" in err for err in result.errors)
        # The surviving records still replay into a valid graph — corrupt
        # records may orphan later ones into conflicts, never crashes.
        import warnings

        mutable = MutableGraph(stream_graph)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            mutable.apply(result.deltas)
        mutable.as_graph().validate()

    def test_append_after_kill_continues_the_log(self, stream_graph,
                                                 written_log):
        """Reopening a log appends; seq ordering across the boundary is
        preserved for resume."""
        generator = DeltaGenerator(stream_graph, seed=13)
        generator.generate(150)  # fast-forward the generator state
        with DeltaLog(written_log) as log:
            log.extend(generator.generate(20))
        result = read_delta_log(written_log)
        assert len(result) == 170
        assert [d.seq for d in result.deltas] == list(range(170))

    def test_fsync_means_bytes_on_disk(self, tmp_path):
        path = tmp_path / "durable.jsonl"
        log = DeltaLog(path)
        log.append(Delta(op="add_edge", u=0, v=1, seq=0))
        # Before close: the record is already on disk (flush + fsync).
        fd = os.open(path, os.O_RDONLY)
        try:
            data = os.read(fd, 4096)
        finally:
            os.close(fd)
        log.close()
        assert json.loads(data.decode())["op"] == "add_edge"
