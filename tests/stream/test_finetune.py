"""Online fine-tuning: architecture reconstruction from the checkpoint
itself, resumed training on a mutated graph, and a servable result."""

import numpy as np
import pytest

from repro.engine import read_checkpoint
from repro.serve import ModelRegistry
from repro.stream import (
    DeltaGenerator,
    FineTuneSession,
    MutableGraph,
    method_from_checkpoint,
)


class TestMethodFromCheckpoint:
    def test_reconstructs_matching_architecture(self, stream_checkpoint):
        method, meta = method_from_checkpoint(stream_checkpoint)
        assert type(method).__name__.lower().startswith("grace")
        assert method.embedding_dim == 8
        assert method.hidden_dim == 16
        assert method.num_layers == 2
        assert meta["epochs"] == 2

    def test_overrides_pass_through(self, stream_checkpoint):
        method, _ = method_from_checkpoint(stream_checkpoint, lr=0.001)
        assert method.lr == 0.001

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(Exception):
            method_from_checkpoint(tmp_path / "nope.npz")


class TestFineTuneSession:
    def test_resumes_and_extends_on_mutated_graph(self, stream_graph,
                                                  stream_checkpoint,
                                                  tmp_path):
        mutable = MutableGraph(stream_graph)
        mutable.apply(DeltaGenerator(stream_graph, seed=6).generate(40))
        mutated = mutable.as_graph()

        session = FineTuneSession(stream_checkpoint, tmp_path / "ft",
                                  extra_epochs=2)
        out, info = session.run(mutated)
        assert out.is_file()
        assert info["start_epoch"] == 2
        assert info["end_epoch"] == 4
        assert len(info["losses"]) == 2
        assert all(np.isfinite(info["losses"]))
        meta, _ = read_checkpoint(out)
        assert meta["epoch_next"] == 4
        # The fine-tuned checkpoint is a first-class serving candidate.
        registry = ModelRegistry()
        version = registry.load(out)
        assert version.inductive
        embedded = version.artifact.embed(mutated)
        assert embedded.shape == (mutated.num_nodes, 8)

    def test_extra_epochs_must_be_positive(self, stream_checkpoint,
                                           tmp_path):
        with pytest.raises(ValueError, match="extra_epochs"):
            FineTuneSession(stream_checkpoint, tmp_path, extra_epochs=0)

    def test_runs_under_recovery_hooks(self, stream_graph,
                                       stream_checkpoint, tmp_path):
        session = FineTuneSession(stream_checkpoint, tmp_path / "ft",
                                  extra_epochs=1, guard_policy="recover")
        _, info = session.run(stream_graph)
        assert info["recoveries"] == 0  # healthy run, hooks armed but idle
        assert (tmp_path / "ft" / "recovery").exists()
