"""Drift detector semantics: window-mean cosine, minimum-sample gating,
refresh reset, and obs metric emission."""

import numpy as np
import pytest

from repro.obs import Tracer
from repro.stream import DriftDetector


def vec(angle: float) -> np.ndarray:
    return np.array([np.cos(angle), np.sin(angle)])


class TestDriftDetector:
    def test_identical_rows_never_drift(self):
        detector = DriftDetector(threshold=0.99, min_samples=2)
        for node in range(10):
            assert detector.observe(node, vec(0.3), vec(0.3)) == pytest.approx(1.0)
        assert not detector.drifted
        assert detector.mean_cosine == pytest.approx(1.0)

    def test_min_samples_gates_the_flip(self):
        detector = DriftDetector(threshold=0.9, min_samples=4)
        for node in range(3):
            detector.observe(node, vec(0.0), vec(2.0))
        assert not detector.drifted  # rotated hard, but only 3 samples
        detector.observe(3, vec(0.0), vec(2.0))
        assert detector.drifted

    def test_window_ages_out_old_drift(self):
        detector = DriftDetector(threshold=0.9, window=4, min_samples=2)
        for node in range(4):
            detector.observe(node, vec(0.0), vec(3.0))
        assert detector.drifted
        for node in range(4):  # four healthy samples push the bad ones out
            detector.observe(node, vec(0.5), vec(0.5))
        assert not detector.drifted

    def test_mark_refreshed_resets_window(self):
        detector = DriftDetector(threshold=0.9, min_samples=2)
        detector.observe(0, vec(0.0), vec(3.0))
        detector.observe(1, vec(0.0), vec(3.0))
        assert detector.drifted
        detector.mark_refreshed()
        assert detector.samples == 0 and not detector.drifted
        assert detector.triggers == 1

    def test_zero_vectors_well_defined(self):
        detector = DriftDetector()
        zero = np.zeros(3)
        assert detector.observe(0, zero, zero) == 1.0
        assert detector.observe(1, zero, np.ones(3)) == 0.0

    def test_snapshot_is_json_ready(self):
        detector = DriftDetector(threshold=0.8)
        detector.observe(0, vec(0.1), vec(0.2))
        snap = detector.snapshot()
        assert snap["observed"] == 1 and snap["samples"] == 1
        assert snap["threshold"] == 0.8
        assert isinstance(snap["drifted"], bool)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            DriftDetector(window=0)

    def test_observations_emit_metrics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(path):
            DriftDetector().observe(5, vec(0.0), vec(1.0))
        assert "stream.drift_cosine" in path.read_text()
