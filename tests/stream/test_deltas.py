"""Delta wire format, durable JSONL log, and the seeded dynamic-SBM
generator: validation on write, forgiveness on read, determinism per seed."""

import json

import numpy as np
import pytest

from repro.stream import (
    DELTA_OPS,
    Delta,
    DeltaError,
    DeltaGenerator,
    DeltaLog,
    read_delta_log,
)


class TestDeltaValidation:
    def test_edge_delta_roundtrip(self):
        delta = Delta(op="add_edge", u=3, v=7, ts=1.5, seq=4)
        again = Delta.from_json(delta.to_json())
        assert again == delta
        assert "node" not in delta.to_json()

    def test_node_delta_roundtrip(self):
        delta = Delta(op="add_node", node=12, features=[0.5, -1.0], label=2,
                      seq=9)
        wire = json.loads(json.dumps(delta.to_json()))
        assert Delta.from_json(wire) == delta

    def test_unknown_op_rejected(self):
        with pytest.raises(DeltaError, match="unknown delta op"):
            Delta(op="drop_node", node=1, features=[0.0])

    def test_self_loop_rejected(self):
        with pytest.raises(DeltaError, match="self-loop"):
            Delta(op="add_edge", u=4, v=4)

    def test_edge_needs_endpoints(self):
        with pytest.raises(DeltaError, match="endpoints"):
            Delta(op="remove_edge", u=1)

    def test_node_op_needs_finite_features(self):
        with pytest.raises(DeltaError, match="finite 1-D"):
            Delta(op="update_features", node=0, features=[float("nan")])

    def test_from_json_rejects_non_object(self):
        with pytest.raises(DeltaError, match="JSON object"):
            Delta.from_json([1, 2, 3])

    def test_from_json_ignores_unknown_keys(self):
        delta = Delta.from_json({"op": "add_edge", "u": 0, "v": 1,
                                 "color": "red"})
        assert (delta.u, delta.v) == (0, 1)


class TestDeltaLog:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        deltas = [Delta(op="add_edge", u=0, v=1, seq=0),
                  Delta(op="add_node", node=5, features=[1.0], seq=1)]
        with DeltaLog(path) as log:
            log.append(deltas[0])
            log.extend(deltas[1:])
            assert log.written == 2
        result = read_delta_log(path)
        assert result.deltas == deltas
        assert result.skipped == 0 and len(result) == 2

    def test_corrupt_record_skipped_with_warning(self, tmp_path):
        path = tmp_path / "log.jsonl"
        good = Delta(op="add_edge", u=0, v=1, seq=0)
        path.write_text(json.dumps(good.to_json()) + "\n"
                        + "{not json at all\n"
                        + '{"op": "add_edge", "u": 2, "v": 2, "seq": 2}\n'
                        + json.dumps(Delta(op="remove_edge", u=0, v=1,
                                           seq=3).to_json()) + "\n")
        with pytest.warns(RuntimeWarning, match="corrupt delta record"):
            result = read_delta_log(path)
        assert result.skipped == 2
        assert len(result.errors) == 2
        assert [d.seq for d in result.deltas] == [0, 3]

    def test_start_seq_resumes_past_applied_prefix(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with DeltaLog(path) as log:
            log.extend(Delta(op="add_edge", u=i, v=i + 1, seq=i)
                       for i in range(6))
        result = read_delta_log(path, start_seq=4)
        assert [d.seq for d in result.deltas] == [4, 5]


class TestDeltaGenerator:
    def test_deterministic_per_seed(self, stream_graph):
        a = DeltaGenerator(stream_graph, seed=11).generate(80)
        b = DeltaGenerator(stream_graph, seed=11).generate(80)
        assert [d.to_json() for d in a] == [d.to_json() for d in b]
        c = DeltaGenerator(stream_graph, seed=12).generate(80)
        assert [d.to_json() for d in a] != [d.to_json() for d in c]

    def test_stream_is_sequential_and_covers_all_ops(self, stream_graph):
        deltas = DeltaGenerator(stream_graph, seed=5).generate(300)
        assert [d.seq for d in deltas] == list(range(300))
        assert {d.op for d in deltas} == set(DELTA_OPS)
        assert all(d.ts == float(d.seq) for d in deltas)

    def test_node_ids_assigned_densely(self, stream_graph):
        deltas = DeltaGenerator(stream_graph, seed=5).generate(300)
        added = [d.node for d in deltas if d.op == "add_node"]
        start = stream_graph.num_nodes
        assert added == list(range(start, start + len(added)))

    def test_homophilous_adds(self, stream_graph):
        labels = list(stream_graph.labels)
        deltas = DeltaGenerator(stream_graph, seed=5, homophily=1.0,
                                p_add_edge=1.0, p_remove_edge=0.0,
                                p_add_node=0.0,
                                p_update_features=0.0).generate(50)
        for d in deltas:
            if d.op == "add_edge":
                assert labels[d.u] == labels[d.v]

    def test_bad_probabilities_rejected(self, stream_graph):
        with pytest.raises(ValueError, match="probabilities"):
            DeltaGenerator(stream_graph, p_add_edge=-1.0)

    def test_feature_updates_match_dim(self, stream_graph):
        deltas = DeltaGenerator(stream_graph, seed=5).generate(200)
        for d in deltas:
            if d.features is not None:
                assert len(d.features) == stream_graph.num_features
                assert np.all(np.isfinite(d.features))
