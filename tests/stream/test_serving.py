"""Delta-aware serving end-to-end: exact invalidation, warm-row
bit-identity, lazy in-radius refresh against the offline oracle, drift →
fine-tune → blue/green refresh, and the replay driver."""

import warnings

import numpy as np
import pytest

from repro.serve.rollout import SHADOWING
from repro.stream import (
    DeltaGenerator,
    DriftDetector,
    MutableGraph,
    StreamCoordinator,
    blast_radius,
    replay_log,
)


@pytest.fixture
def warmed(stream_server):
    stream_server.warmup()
    return stream_server


def apply_one_batch(server, seed=4, count=12):
    # drift_sample=0: drift observation lazily refreshes rows, which would
    # blur the exact stale-set accounting these tests pin down.
    coordinator = StreamCoordinator(server, drift_sample=0, seed=0)
    base = coordinator.mutable.as_graph()
    deltas = DeltaGenerator(base, seed=seed, p_add_node=0.05).generate(count)
    pre = np.array(server.store.snapshot())  # frozen pre-delta copy
    summary = coordinator.apply(deltas)
    return coordinator, pre, summary


class TestInvalidation:
    def test_radius_rows_stale_warm_rows_bit_identical(self, warmed):
        coordinator, pre, summary = apply_one_batch(warmed)
        vid = warmed.registry.get().version_id
        resident = warmed.store.resident_snapshot(vid)
        stale = warmed.store.stale_rows(vid)
        assert summary["blast_radius"] == len(stale)
        outside = np.setdiff1d(np.arange(pre.shape[0]), np.asarray(stale))
        assert outside.size > 0
        # Warm rows were not even copied, let alone recomputed.
        assert np.array_equal(resident[outside], pre[outside])

    def test_invalidation_metrics_and_counts(self, warmed):
        _, pre, summary = apply_one_batch(warmed)
        vid = warmed.registry.get().version_id
        counts = summary["invalidation"][vid]
        assert counts["invalidated"] == summary["blast_radius"]
        assert counts["invalidated"] + counts["preserved"] == \
            summary["num_nodes"]
        stats = warmed.metrics.snapshot()["streaming"]
        assert stats["invalidations"] == 1
        assert stats["invalidated_rows"] == counts["invalidated"]
        assert stats["preserved_rows"] == counts["preserved"]
        assert stats["graph_rebinds"] == 1

    def test_stale_rows_refresh_to_offline_oracle(self, warmed):
        """Lazily recomputed in-radius rows equal a full offline embed of
        the mutated graph (1e-6); refreshes are counted."""
        coordinator, _, _ = apply_one_batch(warmed)
        mutated = coordinator.mutable.as_graph()
        oracle = warmed.registry.get().artifact.embed(mutated)
        vid = warmed.registry.get().version_id
        stale = warmed.store.stale_rows(vid)
        assert stale
        for node in stale[:6]:
            served = warmed.store.embedding(node)
            np.testing.assert_allclose(served, oracle[node], atol=1e-6)
        assert warmed.store.stale_rows(vid) == stale[6:]
        assert warmed.metrics.snapshot()["streaming"]["stale_refreshes"] >= 6

    def test_full_snapshot_read_repairs_all_stale_rows(self, warmed):
        coordinator, pre, _ = apply_one_batch(warmed)
        mutated = coordinator.mutable.as_graph()
        vid = warmed.registry.get().version_id
        stale = list(warmed.store.stale_rows(vid))
        healed = warmed.store.snapshot(vid)
        assert warmed.store.stale_rows(vid) == []
        oracle = warmed.registry.get().artifact.embed(mutated)
        np.testing.assert_allclose(healed[stale], oracle[stale], atol=1e-6)
        outside = np.setdiff1d(np.arange(pre.shape[0]), np.asarray(stale))
        assert np.array_equal(healed[outside], pre[outside])

    def test_lru_entries_inside_radius_dropped_outside_kept(self, warmed):
        coordinator = StreamCoordinator(warmed, drift_sample=0, seed=0)
        base = coordinator.mutable.as_graph()
        deltas = DeltaGenerator(base, seed=4, p_add_node=0.05).generate(12)
        # Prime the LRU for every node, then mutate.
        rows = {n: warmed.store.embedding(n) for n in range(base.num_nodes)}
        hits_before = warmed.metrics.cache_hits
        coordinator.apply(deltas)
        vid = warmed.registry.get().version_id
        stale = set(warmed.store.stale_rows(vid))
        warm = [n for n in range(base.num_nodes) if n not in stale]
        for n in warm[:8]:
            again = warmed.store.embedding(n)
            assert np.array_equal(again, rows[n])
        assert warmed.metrics.cache_hits == hits_before + len(warm[:8])

    def test_served_requests_work_after_rebind(self, warmed):
        coordinator, _, summary = apply_one_batch(warmed)
        new_node = summary["num_nodes"] - 1
        response = warmed.handle({"op": "embed", "node": new_node})
        assert response["ok"], response
        assert len(response["embedding"]) == 8


class TestDriftRefresh:
    def test_drift_triggers_finetune_and_rollout(self, warmed,
                                                 stream_checkpoint,
                                                 tmp_path):
        detector = DriftDetector(threshold=0.9999, min_samples=2)
        coordinator = StreamCoordinator(warmed, drift=detector, seed=0)
        warmed.store.snapshot()  # materialize so drift sampling has rows
        base = coordinator.mutable.as_graph()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            coordinator.apply(
                DeltaGenerator(base, seed=5).generate(80))
        assert detector.drifted
        refresh = coordinator.maybe_refresh(stream_checkpoint,
                                            tmp_path / "ft",
                                            extra_epochs=1)
        assert refresh is not None
        assert detector.triggers == 1 and not detector.drifted
        rollout = warmed.rollout
        assert rollout is not None and rollout.state == SHADOWING
        assert rollout.cosine_threshold == 0.5  # relaxed gate for refreshes
        assert refresh["finetune"]["end_epoch"] == 3

    def test_no_refresh_without_drift(self, warmed, stream_checkpoint,
                                      tmp_path):
        coordinator = StreamCoordinator(warmed, seed=0)
        assert coordinator.maybe_refresh(stream_checkpoint, tmp_path) is None
        assert warmed.rollout is None


class TestReplayDriver:
    def test_replay_log_summary(self, warmed, tmp_path, stream_graph):
        from repro.stream import DeltaLog

        path = tmp_path / "log.jsonl"
        with DeltaLog(path) as log:
            log.extend(DeltaGenerator(stream_graph, seed=8).generate(60))
        warmed.warmup()
        summary = replay_log(warmed, path, batch_size=20,
                             probes_per_batch=3, seed=0)
        assert summary["num_batches"] == 3
        assert summary["deltas_applied"] == 60
        assert summary["probe_failures"] == 0
        assert summary["deltas_per_s"] > 0
        assert summary["final_nodes"] >= stream_graph.num_nodes

    def test_radius_hops_tracks_deepest_encoder(self, warmed):
        coordinator = StreamCoordinator(warmed, seed=0)
        artifact = warmed.registry.get().artifact
        assert coordinator.radius_hops == artifact.num_layers


class TestStoreConcurrencyWithInvalidation:
    def test_concurrent_reads_during_invalidate(self, warmed):
        """Readers racing invalidation never crash and always land on
        either the old-consistent or refreshed-consistent row."""
        import threading

        coordinator = StreamCoordinator(warmed, seed=0)
        base = coordinator.mutable.as_graph()
        warmed.store.snapshot()
        deltas = DeltaGenerator(base, seed=4, p_add_node=0.0).generate(10)
        errors = []

        def reader():
            rng = np.random.default_rng(0)
            try:
                for _ in range(50):
                    node = int(rng.integers(base.num_nodes))
                    row = warmed.store.embedding(node)
                    assert np.all(np.isfinite(row))
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        coordinator.apply(deltas)
        for t in threads:
            t.join()
        assert errors == []
        # After the dust settles every row matches the oracle.
        mutated = coordinator.mutable.as_graph()
        oracle = warmed.registry.get().artifact.embed(mutated)
        healed = warmed.store.snapshot()
        np.testing.assert_allclose(healed, oracle, atol=1e-6)
