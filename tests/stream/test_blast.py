"""The blast radius is exact: everything outside it embeds bit-identically
before and after a delta batch (full offline forward on both graphs), and
the union-of-old-and-new-egos covers removed edges too."""

import numpy as np
import pytest

from repro.stream import Delta, DeltaGenerator, MutableGraph, blast_radius


class TestBlastRadiusGeometry:
    def test_empty_seeds_empty_radius(self, stream_graph):
        adj = stream_graph.adjacency
        radius = blast_radius(adj, adj, np.array([], dtype=np.int64), 2)
        assert radius.size == 0

    def test_zero_hops_is_the_seeds(self, stream_graph):
        adj = stream_graph.adjacency
        radius = blast_radius(adj, adj, np.array([3, 7, 3]), 0)
        assert radius.tolist() == [3, 7]

    def test_negative_hops_rejected(self, stream_graph):
        adj = stream_graph.adjacency
        with pytest.raises(ValueError, match="hops"):
            blast_radius(adj, adj, np.array([0]), -1)

    def test_removed_edge_covered_through_old_structure(self, stream_graph):
        """A neighborhood reachable only via a *removed* edge must still be
        in the radius — the union over the old structure guarantees it."""
        mutable = MutableGraph(stream_graph)
        old = mutable.as_graph()
        u = 0
        v = int(stream_graph.adjacency.indices[0])
        mutable.apply([Delta(op="remove_edge", u=u, v=v, seq=0)])
        new = mutable.as_graph()
        radius = blast_radius(old.adjacency, new.adjacency,
                              np.array([u, v]), 2)
        # Every old neighbor of both endpoints sits within 2 hops of a seed
        # in the old structure, even if the removal disconnected it.
        for node in old.neighbors(u):
            assert int(node) in radius
        for node in old.neighbors(v):
            assert int(node) in radius

    def test_added_node_seeds_are_tolerated_by_old_graph(self, stream_graph):
        mutable = MutableGraph(stream_graph)
        old = mutable.as_graph()
        n = stream_graph.num_nodes
        dim = stream_graph.num_features
        mutable.apply([
            Delta(op="add_node", node=n, features=[0.1] * dim, seq=0),
            Delta(op="add_edge", u=0, v=n, seq=1),
        ])
        new = mutable.as_graph()
        radius = blast_radius(old.adjacency, new.adjacency,
                              np.array([0, n]), 1)
        assert n in radius and 0 in radius


class TestEmbeddingEquivalence:
    def test_outside_radius_is_bit_identical(self, stream_graph,
                                             stream_registry):
        """Full offline embeds of the old and new graph agree *bit for bit*
        on every node outside the blast radius — the theorem the serve
        layer's warm-row preservation rests on."""
        artifact = stream_registry.get().artifact
        hops = int(artifact.num_layers)
        mutable = MutableGraph(stream_graph)
        old = mutable.as_graph()
        result = mutable.apply(DeltaGenerator(stream_graph, seed=4,
                                              p_add_node=0.05).generate(12))
        assert result.conflicts == 0
        new = mutable.as_graph()
        radius = blast_radius(old.adjacency, new.adjacency, result.touched,
                              hops)
        before = artifact.embed(old)
        after = artifact.embed(new)
        outside = np.setdiff1d(np.arange(old.num_nodes), radius)
        assert outside.size > 0, "batch blasted the whole graph; shrink it"
        assert np.array_equal(before[outside], after[outside])
        # And the radius is not trivially everything that changed + slack:
        # at least one inside row actually moved.
        inside = radius[radius < old.num_nodes]
        assert not np.array_equal(before[inside], after[inside])
