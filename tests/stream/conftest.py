"""Shared fixtures for the streaming suite.

One small homophilous DC-SBM graph and one fitted GRACE checkpoint are
built once per session; each test gets a fresh server (mutation state is
per-server, the underlying graph object is never mutated in place).
"""

import pytest

from repro.baselines import get_method
from repro.engine import save_checkpoint
from repro.graphs.generators import attributed_graph
from repro.serve import EmbeddingServer, ModelRegistry
from repro.stream import DeltaGenerator


@pytest.fixture(scope="session")
def stream_graph():
    return attributed_graph(num_nodes=90, num_classes=3, num_features=12,
                            avg_degree=5.0, homophily=0.8, seed=0,
                            name="stream-sbm")


@pytest.fixture(scope="session")
def stream_checkpoint(stream_graph, tmp_path_factory):
    method = get_method("grace", epochs=2, embedding_dim=8, hidden_dim=16)
    method.fit(stream_graph)
    path = tmp_path_factory.mktemp("stream-ckpt") / "grace.npz"
    save_checkpoint(method.last_loop, path)
    return path


@pytest.fixture
def stream_registry(stream_checkpoint):
    registry = ModelRegistry()
    registry.load(stream_checkpoint)
    return registry


@pytest.fixture
def stream_server(stream_graph, stream_registry):
    server = EmbeddingServer(stream_registry, stream_graph,
                             use_batching=False)
    yield server
    server.close()


@pytest.fixture
def delta_batch(stream_graph):
    """A conflict-free 60-delta batch exercising all four ops."""
    return DeltaGenerator(stream_graph, seed=7).generate(60)
