"""MicroBatcher: coalescing, watermarks, failure isolation, resilience."""

import threading
import time

import pytest

from repro.serve import Deadline, DeadlineExceededError, MicroBatcher, ServeMetrics


def _echo_handler(items):
    return [item * 2 for item in items]


class TestCoalescing:
    def test_results_in_submission_order(self):
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=5) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == [i * 2 for i in range(10)]

    def test_concurrent_submits_coalesce(self):
        """Requests arriving together must share forward passes."""
        metrics = ServeMetrics()
        release = threading.Event()

        def slow_handler(items):
            release.wait(5)
            return list(items)

        with MicroBatcher(slow_handler, max_batch=32, max_wait_ms=20,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(i) for i in range(16)]
            # First request is already in a batch; the other 15 coalesce
            # while the (blocked) first batch occupies the worker.
            release.set()
            for future in futures:
                future.result(timeout=5)
        assert metrics.batches < 16
        assert metrics.batched_requests == 16
        assert metrics.mean_batch_occupancy > 1.0

    def test_size_watermark_bounds_batches(self):
        metrics = ServeMetrics()
        seen = []

        def recording_handler(items):
            seen.append(len(items))
            time.sleep(0.005)
            return list(items)

        with MicroBatcher(recording_handler, max_batch=3, max_wait_ms=50,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(i) for i in range(9)]
            for future in futures:
                future.result(timeout=5)
        assert max(seen) <= 3

    def test_time_watermark_dispatches_singletons(self):
        with MicroBatcher(_echo_handler, max_batch=64, max_wait_ms=1) as batcher:
            start = time.perf_counter()
            assert batcher.submit(21).result(timeout=5) == 42
            # One request must not wait for 63 friends that never come.
            assert time.perf_counter() - start < 1.0


class TestFailureIsolation:
    def test_exception_slot_fails_only_that_item(self):
        def partial_handler(items):
            return [ValueError(f"bad {item}") if item == 2 else item
                    for item in items]

        with MicroBatcher(partial_handler, max_batch=8, max_wait_ms=5) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            results = []
            for i, future in enumerate(futures):
                if i == 2:
                    with pytest.raises(ValueError, match="bad 2"):
                        future.result(timeout=5)
                else:
                    results.append(future.result(timeout=5))
            assert results == [0, 1, 3]

    def test_raising_handler_fails_batch_but_not_worker(self):
        calls = []

        def flaky_handler(items):
            calls.append(list(items))
            if len(calls) == 1:
                raise RuntimeError("boom")
            return list(items)

        with MicroBatcher(flaky_handler, max_batch=1, max_wait_ms=1) as batcher:
            with pytest.raises(RuntimeError, match="boom"):
                batcher.submit("a").result(timeout=5)
            # Worker survived: next request is served normally.
            assert batcher.submit("b").result(timeout=5) == "b"

    def test_result_count_mismatch_detected(self):
        with MicroBatcher(lambda items: [], max_batch=1, max_wait_ms=1) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit(1).result(timeout=5)


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(_echo_handler)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_close_drains_pending(self):
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=5) as batcher:
            futures = [batcher.submit(i) for i in range(8)]
        assert [f.result(timeout=5) for f in futures] == [i * 2 for i in range(8)]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(_echo_handler, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(_echo_handler, max_wait_ms=-1)

    def test_close_leaves_no_thread_behind(self):
        before = {t.ident for t in threading.enumerate()}
        batcher = MicroBatcher(_echo_handler)
        worker = batcher._worker
        batcher.close()
        assert not worker.is_alive()
        leaked = [t for t in threading.enumerate()
                  if t.ident not in before and t.name == "repro-serve-batcher"]
        assert leaked == []

    def test_close_join_timeout_is_loud_dirty_shutdown(self):
        """A worker stuck past close(timeout) must flag + raise, not leak
        silently (the bug this PR fixes)."""
        release = threading.Event()
        metrics = ServeMetrics()

        def stuck_handler(items):
            release.wait(10)
            return list(items)

        batcher = MicroBatcher(stuck_handler, max_batch=1, max_wait_ms=1,
                               metrics=metrics)
        future = batcher.submit("x")
        time.sleep(0.05)  # let the worker enter the stuck handler
        with pytest.raises(RuntimeError, match="dirty"):
            batcher.close(timeout=0.05)
        assert metrics.dirty_shutdown
        assert metrics.snapshot()["lifecycle"]["dirty_shutdown"] is True
        release.set()  # unstick so the thread exits before the test ends
        assert future.result(timeout=5) == "x"
        batcher._worker.join(timeout=5)


class TestResilience:
    def test_expired_deadline_fails_at_dequeue_without_handler(self):
        """Work whose budget lapsed while queued must never reach the
        handler."""
        metrics = ServeMetrics()
        handled = []
        release = threading.Event()

        def gated_handler(items):
            release.wait(5)
            handled.extend(items)
            return list(items)

        with MicroBatcher(gated_handler, max_batch=1, max_wait_ms=1,
                          metrics=metrics) as batcher:
            blocker = batcher.submit("slow")          # occupies the worker
            time.sleep(0.02)
            doomed = batcher.submit("doomed", deadline=Deadline(0.0))
            fine = batcher.submit("fine")
            release.set()
            with pytest.raises(DeadlineExceededError) as caught:
                doomed.result(timeout=5)
            assert caught.value.stage == "dequeue"
            assert blocker.result(timeout=5) == "slow"
            assert fine.result(timeout=5) == "fine"
        assert "doomed" not in handled
        assert metrics.deadline_expired == {"dequeue": 1}

    def test_unexpired_deadline_passes_through(self):
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=1) as batcher:
            future = batcher.submit(5, deadline=Deadline(60_000.0))
            assert future.result(timeout=5) == 10

    def test_killed_worker_is_replaced_and_counted(self):
        metrics = ServeMetrics()
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=1,
                          metrics=metrics) as batcher:
            first_worker = batcher._worker
            assert batcher.submit(1).result(timeout=5) == 2
            batcher._inject_worker_death()
            # The supervisor replaces the corpse from the dying thread
            # itself, so even a request racing the kill resolves.
            assert batcher.submit(3).result(timeout=5) == 6
            assert batcher._worker is not first_worker
            assert batcher._worker.is_alive()
        assert metrics.worker_restarts == 1

    def test_submission_racing_the_kill_is_not_stranded(self):
        """A request enqueued behind the kill sentinel, before anyone
        notices the death, must still resolve (supervisor restart)."""
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=1) as batcher:
            batcher._inject_worker_death()
            future = batcher.submit(4)  # may land before the kill is seen
            assert future.result(timeout=5) == 8

    def test_kill_mid_batch_does_not_strand_collected_requests(self):
        release = threading.Event()

        def gated_handler(items):
            release.wait(5)
            return list(items)

        with MicroBatcher(gated_handler, max_batch=8,
                          max_wait_ms=200) as batcher:
            blocker = batcher.submit("a")   # batch 1: occupies the worker
            time.sleep(0.02)
            caught_mid = batcher.submit("b")  # batch 2, collecting...
            time.sleep(0.02)
            batcher._inject_worker_death()    # ...kill lands mid-collection
            release.set()
            assert blocker.result(timeout=5) == "a"
            # The half-collected batch was dispatched before the worker
            # died — nothing hangs forever.
            assert caught_mid.result(timeout=5) == "b"
