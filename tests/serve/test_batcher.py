"""MicroBatcher: coalescing, watermarks, failure isolation."""

import threading
import time

import pytest

from repro.serve import MicroBatcher, ServeMetrics


def _echo_handler(items):
    return [item * 2 for item in items]


class TestCoalescing:
    def test_results_in_submission_order(self):
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=5) as batcher:
            futures = [batcher.submit(i) for i in range(10)]
            assert [f.result(timeout=5) for f in futures] == [i * 2 for i in range(10)]

    def test_concurrent_submits_coalesce(self):
        """Requests arriving together must share forward passes."""
        metrics = ServeMetrics()
        release = threading.Event()

        def slow_handler(items):
            release.wait(5)
            return list(items)

        with MicroBatcher(slow_handler, max_batch=32, max_wait_ms=20,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(i) for i in range(16)]
            # First request is already in a batch; the other 15 coalesce
            # while the (blocked) first batch occupies the worker.
            release.set()
            for future in futures:
                future.result(timeout=5)
        assert metrics.batches < 16
        assert metrics.batched_requests == 16
        assert metrics.mean_batch_occupancy > 1.0

    def test_size_watermark_bounds_batches(self):
        metrics = ServeMetrics()
        seen = []

        def recording_handler(items):
            seen.append(len(items))
            time.sleep(0.005)
            return list(items)

        with MicroBatcher(recording_handler, max_batch=3, max_wait_ms=50,
                          metrics=metrics) as batcher:
            futures = [batcher.submit(i) for i in range(9)]
            for future in futures:
                future.result(timeout=5)
        assert max(seen) <= 3

    def test_time_watermark_dispatches_singletons(self):
        with MicroBatcher(_echo_handler, max_batch=64, max_wait_ms=1) as batcher:
            start = time.perf_counter()
            assert batcher.submit(21).result(timeout=5) == 42
            # One request must not wait for 63 friends that never come.
            assert time.perf_counter() - start < 1.0


class TestFailureIsolation:
    def test_exception_slot_fails_only_that_item(self):
        def partial_handler(items):
            return [ValueError(f"bad {item}") if item == 2 else item
                    for item in items]

        with MicroBatcher(partial_handler, max_batch=8, max_wait_ms=5) as batcher:
            futures = [batcher.submit(i) for i in range(4)]
            results = []
            for i, future in enumerate(futures):
                if i == 2:
                    with pytest.raises(ValueError, match="bad 2"):
                        future.result(timeout=5)
                else:
                    results.append(future.result(timeout=5))
            assert results == [0, 1, 3]

    def test_raising_handler_fails_batch_but_not_worker(self):
        calls = []

        def flaky_handler(items):
            calls.append(list(items))
            if len(calls) == 1:
                raise RuntimeError("boom")
            return list(items)

        with MicroBatcher(flaky_handler, max_batch=1, max_wait_ms=1) as batcher:
            with pytest.raises(RuntimeError, match="boom"):
                batcher.submit("a").result(timeout=5)
            # Worker survived: next request is served normally.
            assert batcher.submit("b").result(timeout=5) == "b"

    def test_result_count_mismatch_detected(self):
        with MicroBatcher(lambda items: [], max_batch=1, max_wait_ms=1) as batcher:
            with pytest.raises(RuntimeError, match="results"):
                batcher.submit(1).result(timeout=5)


class TestLifecycle:
    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(_echo_handler)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(1)

    def test_close_drains_pending(self):
        with MicroBatcher(_echo_handler, max_batch=4, max_wait_ms=5) as batcher:
            futures = [batcher.submit(i) for i in range(8)]
        assert [f.result(timeout=5) for f in futures] == [i * 2 for i in range(8)]

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(_echo_handler, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(_echo_handler, max_wait_ms=-1)
