"""InductiveEncoder: degree-corrected ego inference and unseen-node splices.

The exactness claims matter: a plain ``ego_subgraph`` + ``embed`` would be
wrong at the boundary (truncated degrees), so these tests compare against
the *full-graph* offline embeddings, not against a subgraph oracle.
"""

import numpy as np
import pytest

from repro.core.serialization import EncoderArtifact
from repro.nn import GCN
from repro.serve import (
    EgoQuery,
    InductiveEncoder,
    MalformedQueryError,
    UnknownNodeError,
)


@pytest.fixture
def encoder(registry, tiny_cora):
    return InductiveEncoder(registry.get().artifact, tiny_cora)


class TestKnownNodes:
    def test_matches_full_graph_embedding(self, encoder, offline_embeddings):
        for node in [0, 7, offline_embeddings.shape[0] - 1]:
            np.testing.assert_allclose(
                encoder.encode_node(node), offline_embeddings[node],
                rtol=0, atol=1e-12)

    def test_every_node_matches(self, encoder, offline_embeddings, tiny_cora):
        served = np.stack([encoder.encode_node(v)
                           for v in range(tiny_cora.num_nodes)])
        np.testing.assert_allclose(served, offline_embeddings,
                                   rtol=0, atol=1e-12)

    def test_isolated_node(self, isolated_node_graph):
        """A 0-degree query node must encode without dividing by zero."""
        artifact = EncoderArtifact.from_encoder(GCN(3, 4, 2, seed=0))
        enc = InductiveEncoder(artifact, isolated_node_graph)
        offline = artifact.embed(isolated_node_graph)
        np.testing.assert_allclose(enc.encode_node(3), offline[3],
                                   rtol=0, atol=1e-12)

    def test_radius_larger_than_component(self, path_graph):
        """Ego radius exceeding the component must clamp, not wrap or fail."""
        artifact = EncoderArtifact.from_encoder(
            GCN(5, 4, 2, num_layers=6, seed=0))
        enc = InductiveEncoder(artifact, path_graph)
        assert enc.radius == 6
        offline = artifact.embed(path_graph)
        np.testing.assert_allclose(enc.encode_node(2), offline[2],
                                   rtol=0, atol=1e-12)

    def test_unknown_node_rejected(self, encoder, tiny_cora):
        with pytest.raises(UnknownNodeError):
            encoder.encode_node(tiny_cora.num_nodes)
        with pytest.raises(UnknownNodeError):
            encoder.encode_node(-3)

    def test_transductive_artifact_rejected(self, tiny_cora):
        table = EncoderArtifact(
            kind="table", step_class="DeepWalk", fingerprint="x",
            table=np.zeros((tiny_cora.num_nodes, 4)),
            fitted_nodes=tiny_cora.num_nodes)
        with pytest.raises(ValueError, match="transductive"):
            InductiveEncoder(table, tiny_cora)


class TestUnseenNodes:
    def _query(self, graph, neighbors, seed=0):
        rng = np.random.default_rng(seed)
        return EgoQuery(features=rng.normal(size=graph.num_features),
                        neighbors=neighbors)

    def test_matches_spliced_graph_oracle(self, encoder, registry, tiny_cora):
        query = self._query(tiny_cora, [3, 9, 14])
        served = encoder.encode_unseen(query)
        spliced, new_id = encoder.spliced_graph(query)
        oracle = registry.get().artifact.embed(spliced)[new_id]
        np.testing.assert_allclose(served, oracle, rtol=0, atol=1e-10)

    def test_neighborless_query_is_legal(self, encoder, registry):
        query = EgoQuery(
            features=np.ones(encoder.artifact.in_features), neighbors=[])
        served = encoder.encode_unseen(query)
        spliced, new_id = encoder.spliced_graph(query)
        oracle = registry.get().artifact.embed(spliced)[new_id]
        np.testing.assert_allclose(served, oracle, rtol=0, atol=1e-10)

    def test_splice_does_not_mutate_base_graph(self, encoder, tiny_cora):
        nnz_before = tiny_cora.adjacency.nnz
        encoder.encode_unseen(self._query(tiny_cora, [0, 1]))
        assert tiny_cora.adjacency.nnz == nnz_before

    def test_bad_feature_shape(self, encoder):
        with pytest.raises(MalformedQueryError):
            encoder.encode_unseen(EgoQuery(features=np.ones(3), neighbors=[0]))

    def test_non_finite_features(self, encoder):
        features = np.ones(encoder.artifact.in_features)
        features[0] = np.nan
        with pytest.raises(MalformedQueryError):
            encoder.encode_unseen(EgoQuery(features=features, neighbors=[0]))

    def test_duplicate_neighbors(self, encoder):
        with pytest.raises(MalformedQueryError):
            encoder.encode_unseen(EgoQuery(
                features=np.ones(encoder.artifact.in_features),
                neighbors=[1, 1]))

    def test_out_of_range_neighbors(self, encoder, tiny_cora):
        with pytest.raises(UnknownNodeError):
            encoder.encode_unseen(EgoQuery(
                features=np.ones(encoder.artifact.in_features),
                neighbors=[tiny_cora.num_nodes]))


class TestBatchedEncoding:
    def test_mixed_batch_matches_singles(self, encoder, tiny_cora):
        rng = np.random.default_rng(3)
        query = EgoQuery(features=rng.normal(size=tiny_cora.num_features),
                         neighbors=[2, 5])
        batch = encoder.encode_batch([0, query, 11])
        np.testing.assert_allclose(batch[0], encoder.encode_node(0),
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(batch[1], encoder.encode_unseen(query),
                                   rtol=0, atol=1e-12)
        np.testing.assert_allclose(batch[2], encoder.encode_node(11),
                                   rtol=0, atol=1e-12)

    def test_empty_batch(self, encoder):
        assert encoder.encode_batch([]) == []

    def test_batch_validates_before_encoding(self, encoder, tiny_cora):
        with pytest.raises(UnknownNodeError):
            encoder.encode_batch([0, tiny_cora.num_nodes + 5])
