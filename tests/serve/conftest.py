"""Serving fixtures: one trained checkpoint shared across the package."""

import numpy as np
import pytest

from repro.baselines import get_method
from repro.engine import PeriodicCheckpoint
from repro.serve import ModelRegistry


@pytest.fixture(scope="session")
def grace_fitted(tiny_cora, tmp_path_factory):
    """(checkpoint path, fitted method) for a tiny GRACE run."""
    path = tmp_path_factory.mktemp("serve-ckpt") / "grace.npz"
    method = get_method("grace", epochs=2, seed=0)
    method.fit(tiny_cora, hooks=[PeriodicCheckpoint(str(path), every=1)])
    return path, method


@pytest.fixture(scope="session")
def grace_checkpoint(grace_fitted):
    return grace_fitted[0]


@pytest.fixture(scope="session")
def offline_embeddings(grace_fitted, tiny_cora):
    """The offline ``embed`` output every served path must reproduce."""
    _, method = grace_fitted
    return np.asarray(method.embed(tiny_cora))


@pytest.fixture
def registry(grace_checkpoint):
    reg = ModelRegistry()
    reg.load(grace_checkpoint)
    return reg
