"""ModelRegistry: content-addressed versions, validation, staleness."""

import numpy as np
import pytest

from repro.baselines import get_method
from repro.engine import PeriodicCheckpoint, checkpoint_digest
from repro.core.serialization import EncoderArtifact
from repro.nn import GCN
from repro.resilience import FaultPlan
from repro.serve import (
    ModelNotFoundError,
    ModelRegistry,
    StaleVersionError,
    method_for_step_class,
)


class TestLoad:
    def test_version_id_is_content_addressed(self, registry, grace_checkpoint):
        digest = checkpoint_digest(grace_checkpoint)
        (version_id,) = registry.versions()
        assert version_id == f"grace-{digest[:12]}"

    def test_reload_same_file_same_version(self, registry, grace_checkpoint):
        before = registry.versions()
        registry.load(grace_checkpoint)
        assert registry.versions() == before

    def test_method_resolved_from_step_class(self, registry):
        version = registry.get()
        assert version.method == "grace"
        assert version.step_class == "GRACE"
        assert version.inductive

    def test_directory_resolves_newest_valid(self, tiny_cora, tmp_path):
        method = get_method("grace", epochs=2, seed=0)
        ckpt_dir = tmp_path / "ckpts"
        ckpt_dir.mkdir()
        method.fit(tiny_cora, hooks=[
            PeriodicCheckpoint(str(ckpt_dir / "ck.npz"), every=1)])
        version = ModelRegistry().load(ckpt_dir)
        assert version.path == ckpt_dir / "ck.npz"

    def test_missing_path_is_structured_error(self, tmp_path):
        with pytest.raises(ModelNotFoundError):
            ModelRegistry().load(tmp_path / "missing.npz")

    def test_empty_directory_is_structured_error(self, tmp_path):
        with pytest.raises(ModelNotFoundError):
            ModelRegistry().load(tmp_path)

    def test_corrupt_checkpoint_rejected(self, grace_checkpoint, tmp_path):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes(grace_checkpoint.read_bytes())
        FaultPlan(seed=0).flip_bytes(corrupt, count=16)
        with pytest.raises(ModelNotFoundError):
            ModelRegistry().load(corrupt)

    def test_table_method_registers_as_transductive(self, tiny_cora, tmp_path):
        method = get_method("deepwalk", epochs=1, seed=0)
        path = tmp_path / "dw.npz"
        method.fit(tiny_cora, hooks=[PeriodicCheckpoint(str(path), every=1)])
        version = ModelRegistry().load(path)
        assert version.method == "deepwalk"
        assert not version.inductive
        assert np.array_equal(version.artifact.embed(tiny_cora),
                              method.embed(tiny_cora))


class TestVersionResolution:
    def test_latest_wins_by_default(self, registry):
        extra = EncoderArtifact.from_encoder(GCN(4, 8, 3, seed=1))
        newer = registry.register_artifact(extra)
        assert registry.get().version_id == newer.version_id
        assert len(registry) == 2

    def test_pinned_version_still_served(self, registry):
        pinned = registry.get().version_id
        registry.register_artifact(EncoderArtifact.from_encoder(GCN(4, 8, 3, seed=1)))
        assert registry.get(pinned).version_id == pinned

    def test_unknown_version_is_stale(self, registry):
        with pytest.raises(StaleVersionError):
            registry.get("grace-000000000000")

    def test_unregistered_version_becomes_stale(self, registry):
        version_id = registry.get().version_id
        registry.unregister(version_id)
        with pytest.raises(StaleVersionError):
            registry.get(version_id)

    def test_empty_registry_is_stale(self):
        with pytest.raises(StaleVersionError):
            ModelRegistry().get()

    def test_describe_is_json_ready(self, registry):
        import json

        (entry,) = registry.describe()
        json.dumps(entry)
        assert entry["method"] == "grace"
        assert entry["embedding_dim"] == 32


class TestStepClassMap:
    def test_baselines_map_to_themselves(self):
        assert method_for_step_class("GRACE") == "grace"
        assert method_for_step_class("DeepWalk") == "deepwalk"

    def test_e2gcl_trainer_special_case(self):
        assert method_for_step_class("E2GCLTrainer") == "e2gcl"

    def test_unknown_step_class_is_none(self):
        assert method_for_step_class("SomethingElse") is None
