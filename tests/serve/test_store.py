"""EmbeddingStore: bit-identity, LRU behavior, snapshot crash recovery."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.resilience import FaultPlan
from repro.serve import (
    EmbeddingStore,
    ServeMetrics,
    ServerHealth,
    SnapshotError,
    UnknownNodeError,
)


@pytest.fixture
def store(registry, tiny_cora):
    return EmbeddingStore(registry, tiny_cora, cache_size=8)


class TestServedEmbeddings:
    def test_snapshot_bit_identical_to_offline(self, store, offline_embeddings):
        assert np.array_equal(store.snapshot(), offline_embeddings)

    def test_node_reads_bit_identical(self, store, offline_embeddings):
        for node in [0, 3, offline_embeddings.shape[0] - 1]:
            assert np.array_equal(store.embedding(node), offline_embeddings[node])

    def test_node_out_of_range(self, store, tiny_cora):
        with pytest.raises(UnknownNodeError):
            store.embedding(tiny_cora.num_nodes)
        with pytest.raises(UnknownNodeError):
            store.embedding(-1)

    def test_non_integer_node_rejected(self, store):
        with pytest.raises(UnknownNodeError):
            store.embedding("7")
        with pytest.raises(UnknownNodeError):
            store.embedding(True)


class TestLru:
    def test_hit_miss_accounting(self, registry, tiny_cora):
        metrics = ServeMetrics()
        store = EmbeddingStore(registry, tiny_cora, cache_size=8, metrics=metrics)
        store.embedding(1)
        store.embedding(1)
        store.embedding(2)
        assert metrics.cache_hits == 1
        assert metrics.cache_misses == 2
        assert metrics.cache_hit_rate == pytest.approx(1 / 3)

    def test_capacity_evicts_oldest(self, registry, tiny_cora):
        store = EmbeddingStore(registry, tiny_cora, cache_size=2)
        store.embedding(0)
        store.embedding(1)
        store.embedding(2)  # evicts node 0
        assert store.cached_nodes == 2
        hits_before = store.metrics.cache_hits
        store.embedding(0)  # must be a miss again
        assert store.metrics.cache_hits == hits_before

    def test_cache_keyed_by_version(self, registry, tiny_cora):
        from repro.core.serialization import EncoderArtifact
        from repro.nn import GCN

        other = registry.register_artifact(EncoderArtifact.from_encoder(
            GCN(tiny_cora.num_features, 8, 5, seed=9)))
        store = EmbeddingStore(registry, tiny_cora, cache_size=8)
        a = store.embedding(0, registry.versions()[0])
        b = store.embedding(0, other.version_id)
        assert a.shape != b.shape or not np.array_equal(a, b)

    def test_rejects_zero_capacity(self, registry, tiny_cora):
        with pytest.raises(ValueError):
            EmbeddingStore(registry, tiny_cora, cache_size=0)


class TestSnapshotPersistence:
    def test_snapshot_persisted_and_reloaded(self, registry, tiny_cora,
                                             offline_embeddings, tmp_path):
        first = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        first.snapshot()
        files = list(tmp_path.glob("emb-*.npz"))
        assert len(files) == 1
        # A fresh store must load the persisted matrix, not recompute:
        # corrupting nothing, the loaded array equals offline bit-for-bit.
        second = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        assert np.array_equal(second.snapshot(), offline_embeddings)

    def test_killed_mid_snapshot_recovers(self, registry, tiny_cora,
                                          offline_embeddings, tmp_path):
        """A torn snapshot write must be skipped and recomputed."""
        store = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        store.snapshot()
        (snapshot_file,) = tmp_path.glob("emb-*.npz")
        FaultPlan(seed=1).truncate_file(snapshot_file, keep_fraction=0.4)
        reloaded = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        assert not reloaded.verify_snapshot_file(snapshot_file)
        assert np.array_equal(reloaded.snapshot(), offline_embeddings)
        # Recomputation rewrote a digest-valid file in place.
        assert reloaded.verify_snapshot_file(snapshot_file)

    def test_bit_rot_rejected(self, registry, tiny_cora,
                              offline_embeddings, tmp_path):
        store = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        store.snapshot()
        (snapshot_file,) = tmp_path.glob("emb-*.npz")
        FaultPlan(seed=2).flip_bytes(snapshot_file, count=8)
        reloaded = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        assert np.array_equal(reloaded.snapshot(), offline_embeddings)

    def test_evicted_snapshot_recovers_from_disk(self, registry, tiny_cora,
                                                 offline_embeddings, tmp_path):
        store = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        version_id = registry.get().version_id
        store.snapshot()
        store.evict_snapshot(version_id)
        assert np.array_equal(store.embedding(4), offline_embeddings[4])

    def test_persist_all_writes_missing_and_skips_valid(self, registry,
                                                        tiny_cora, tmp_path):
        store = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        store.snapshot()
        (snapshot_file,) = tmp_path.glob("emb-*.npz")
        assert store.persist_all() == 0  # already digest-valid on disk
        snapshot_file.unlink()
        assert store.persist_all() == 1  # resident matrix rewritten
        assert store.verify_snapshot_file(snapshot_file)
        assert store.persist_all() == 0

    def test_persist_all_without_dir_is_noop(self, registry, tiny_cora):
        store = EmbeddingStore(registry, tiny_cora)
        store.snapshot()
        assert store.persist_all() == 0


class TestConcurrentCorruptReads:
    def test_corrupt_mid_read_yields_structured_recovery(
            self, registry, tiny_cora, offline_embeddings, tmp_path):
        """Many readers racing a snapshot that rots under them: every read
        must come back correct (recomputed), never a raw zip/zlib error."""
        metrics = ServeMetrics()
        health = ServerHealth(metrics)
        health.mark_ready()
        seed_store = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path)
        seed_store.snapshot()
        (snapshot_file,) = tmp_path.glob("emb-*.npz")
        FaultPlan(seed=11).flip_bytes(snapshot_file, count=16)

        # Fresh store (nothing resident) pointed at the rotted file.
        store = EmbeddingStore(registry, tiny_cora, snapshot_dir=tmp_path,
                               metrics=metrics, health=health)
        nodes = list(range(12)) * 4
        with ThreadPoolExecutor(max_workers=8) as pool:
            rows = list(pool.map(store.embedding, nodes))
        for node, row in zip(nodes, rows):
            assert np.array_equal(row, offline_embeddings[node])
        # The rot was observed as a structured rejection, exactly once
        # (one materializer per version), and degraded health.
        assert metrics.snapshot_failures == 1
        assert health.state == "degraded"

    def test_recompute_failure_is_a_serve_error(self, registry, tiny_cora):
        """A model that cannot embed must fail as SnapshotError (mapped to
        a 500 envelope by the server), not leak its raw exception."""
        store = EmbeddingStore(registry, tiny_cora)
        version = registry.get()

        def _boom(graph):
            raise RuntimeError("synthetic encoder failure")

        version.artifact.embed = _boom
        with pytest.raises(SnapshotError, match="cannot materialize"):
            store.snapshot()
        assert store.metrics.snapshot_failures == 1


class TestInvalidation:
    """The repro.stream-facing surface: ``invalidate`` marks rows stale and
    reports exact counts; reads heal lazily through the same
    single-materializer path every other read uses."""

    def test_counts_and_stale_listing(self, store, registry):
        version_id = registry.get().version_id
        store.snapshot()
        counts = store.invalidate(version_id, [3, 1, 3, 7])
        assert counts == {"invalidated": 3, "preserved":
                          store.graph.num_nodes - 3, "stale": 3}
        assert store.stale_rows(version_id) == [1, 3, 7]

    def test_out_of_range_nodes_clipped(self, store, registry, tiny_cora):
        version_id = registry.get().version_id
        counts = store.invalidate(version_id,
                                  [-5, 0, tiny_cora.num_nodes + 9])
        assert counts["invalidated"] == 1
        assert store.stale_rows(version_id) == [0]

    def test_invalidate_is_idempotent(self, store, registry):
        version_id = registry.get().version_id
        store.invalidate(version_id, [2, 4])
        counts = store.invalidate(version_id, [4, 6])
        assert counts["stale"] == 3  # union, not double-count
        assert store.stale_rows(version_id) == [2, 4, 6]

    def test_invalidated_lru_entries_are_dropped(self, store, registry):
        version_id = registry.get().version_id
        store.embedding(5)
        hits_before = store.metrics.cache_hits
        store.invalidate(version_id, [5])
        store.embedding(5)  # must recompute, not serve the dead cache row
        assert store.metrics.cache_hits == hits_before

    def test_metrics_expose_invalidated_vs_preserved(self, registry,
                                                     tiny_cora):
        metrics = ServeMetrics()
        store = EmbeddingStore(registry, tiny_cora, metrics=metrics)
        store.snapshot()
        store.invalidate(registry.get().version_id, [0, 1, 2])
        stats = metrics.snapshot()["streaming"]
        assert stats["invalidations"] == 1
        assert stats["invalidated_rows"] == 3
        assert stats["preserved_rows"] == tiny_cora.num_nodes - 3

    def test_stale_reads_heal_without_row_computer(self, store, registry,
                                                   offline_embeddings):
        """Without a registered row computer the fallback is a full
        rematerialization — still bit-identical to offline."""
        version_id = registry.get().version_id
        store.snapshot()
        store.invalidate(version_id, [4])
        assert np.array_equal(store.embedding(4), offline_embeddings[4])
        assert store.stale_rows(version_id) == []

    def test_concurrent_reads_race_single_materializer(
            self, registry, tiny_cora, offline_embeddings):
        """Readers racing invalidation all funnel through the per-version
        compute lock: every row comes back offline-identical and the stale
        set drains to empty — no torn or half-healed matrix."""
        metrics = ServeMetrics()
        store = EmbeddingStore(registry, tiny_cora, cache_size=8,
                               metrics=metrics)
        version_id = registry.get().version_id
        store.snapshot()

        def read(node):
            return node, store.embedding(node)

        def invalidate(chunk):
            return store.invalidate(version_id, chunk)

        nodes = list(range(tiny_cora.num_nodes)) * 3
        chunks = [[n, n + 1] for n in range(0, 10, 2)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(invalidate, c) for c in chunks]
            reads = list(pool.map(read, nodes))
            for future in futures:
                assert future.result()["invalidated"] == 2
        for node, row in reads:
            assert np.array_equal(row, offline_embeddings[node])
        healed = store.snapshot()
        assert store.stale_rows(version_id) == []
        assert np.array_equal(healed, offline_embeddings)
