"""Chaos tier for the serving stack (seeded fault injection, live server).

Four incidents, four invariants:

* sustained overload → requests are *shed* with structured ``overloaded``
  envelopes and the server keeps answering (no queue collapse);
* expired deadlines → dropped at dequeue/pre-encode, provably never
  encoded (perf counters, not timing assertions);
* a corrupt blue/green candidate → fails closed, active version stays
  bit-identical throughout;
* a killed worker / killed server → restart serves bit-identical
  embeddings from recovered (or recomputed) snapshots.
"""

import numpy as np
import pytest

from repro.resilience import FaultPlan
from repro.serve import (
    EmbeddingServer,
    InProcessClient,
    RetryPolicy,
)


def _embed_all(client, nodes):
    futures = [client.submit({"op": "embed", "node": n}) for n in nodes]
    return [f.result(timeout=30) for f in futures]


class TestOverloadSheds:
    def test_overload_sheds_structured_and_server_survives(
            self, registry, tiny_cora):
        """Offered load far beyond the inflight watermark: the excess is
        shed with ``overloaded`` envelopes, everything admitted completes,
        and the server is immediately healthy for the next request."""
        with EmbeddingServer(registry, tiny_cora, use_cache=False,
                             max_inflight=2, retry_after_ms=5.0,
                             max_wait_ms=1.0) as server:
            FaultPlan(seed=0).slow_encode(server, delay_ms=15.0)
            server.warmup()
            with InProcessClient(server, pool_size=16) as client:
                responses = _embed_all(client, list(range(16)) * 3)
            accepted = [r for r in responses if r["ok"]]
            shed = [r for r in responses if not r["ok"]]
            assert accepted, "overload must not starve every request"
            assert shed, "3x-inflight offered load must shed something"
            for response in shed:
                assert response["error"]["code"] == "overloaded"
                assert response["error"]["details"]["retry_after_ms"] > 0
                assert response["status"] == 503
            metrics = server.metrics
            assert metrics.shed == len(shed)
            assert metrics.admitted == len(accepted)
            # No queue collapse: the watermark held, nothing leaked a slot.
            assert server.admission.inflight == 0
            # And the server still answers, instantly, after the storm.
            with InProcessClient(server) as client:
                assert client.request({"op": "embed", "node": 0})["ok"]
                assert client.request({"op": "health"})["ok"]

    def test_retrying_client_rides_out_the_overload(self, registry, tiny_cora):
        """With backoff honoring ``retry_after_ms``, every idempotent
        request eventually lands despite aggressive shedding."""
        with EmbeddingServer(registry, tiny_cora, use_cache=False,
                             max_inflight=2, retry_after_ms=2.0,
                             max_wait_ms=1.0) as server:
            FaultPlan(seed=0).slow_encode(server, delay_ms=5.0)
            server.warmup()
            retry = RetryPolicy(max_retries=20, base_ms=2.0, cap_ms=40.0,
                                seed=0)
            with InProcessClient(server, pool_size=8, retry=retry) as client:
                responses = _embed_all(client, list(range(8)) * 2)
            assert all(r["ok"] for r in responses)
            assert server.metrics.shed > 0  # the retries were real


class TestDeadlinesNeverEncode:
    def test_expired_work_is_dropped_before_the_encoder(
            self, registry, tiny_cora):
        """Counter-level proof: with the encoder slowed to a crawl, every
        tight-deadline request dies at dequeue/pre-encode and the encoder
        forward-pass counter only ever tallies the unbounded request."""
        with EmbeddingServer(registry, tiny_cora, use_cache=False,
                             max_wait_ms=1.0) as server:
            FaultPlan(seed=0).slow_encode(server, delay_ms=40.0)
            server.warmup()
            with InProcessClient(server, pool_size=8) as client:
                blocker = client.submit({"op": "embed", "node": 0})
                doomed = [client.submit({"op": "embed", "node": n,
                                         "deadline_ms": 1.0})
                          for n in range(1, 6)]
                blocked_response = blocker.result(timeout=30)
                doomed_responses = [f.result(timeout=30) for f in doomed]
            assert blocked_response["ok"]
            metrics = server.metrics
            for response in doomed_responses:
                assert not response["ok"]
                assert response["error"]["code"] == "deadline_exceeded"
                assert response["status"] == 504
                assert response["error"]["details"]["stage"] in (
                    "admission", "dequeue", "pre_encode")
            # The invariant: expired work NEVER reached a forward pass.
            assert metrics.encoded_requests == 1
            assert metrics.deadline_expired_total == len(doomed_responses)

    def test_cached_path_honors_deadlines_too(self, registry, tiny_cora):
        with EmbeddingServer(registry, tiny_cora) as server:
            server.warmup()
            with InProcessClient(server) as client:
                response = client.request({"op": "embed", "node": 0,
                                           "deadline_ms": 0.0})
            assert response["error"]["code"] == "deadline_exceeded"
            assert server.metrics.deadline_expired_total == 1


class TestRolloutFailsClosed:
    def test_corrupt_candidate_never_disturbs_active(
            self, registry, tiny_cora, grace_checkpoint,
            offline_embeddings, tmp_path):
        import shutil

        rotted = tmp_path / "candidate.npz"
        shutil.copy(grace_checkpoint, rotted)
        FaultPlan(seed=5).digest_mismatch(rotted)
        with EmbeddingServer(registry, tiny_cora, max_wait_ms=1.0) as server:
            server.warmup()
            active_id = server.registry.get().version_id
            with InProcessClient(server) as client:
                before = _embed_all(client, range(6))
                response = client.request({"op": "rollout",
                                           "candidate": str(rotted)})
                assert not response["ok"]
                assert response["error"]["code"] == "rollout_failed"
                after = _embed_all(client, range(6))
            assert server.registry.versions() == [active_id]
            for node, (a, b) in enumerate(zip(before, after)):
                assert a["version"] == b["version"] == active_id
                assert np.array_equal(np.array(a["embedding"]),
                                      np.array(b["embedding"]))
                assert np.array_equal(np.array(b["embedding"]),
                                      offline_embeddings[node])


class TestKillAndRestart:
    def test_killed_worker_does_not_interrupt_service(self, registry,
                                                      tiny_cora):
        with EmbeddingServer(registry, tiny_cora, use_cache=False,
                             max_wait_ms=1.0) as server:
            server.warmup()
            with InProcessClient(server) as client:
                first = client.request({"op": "embed", "node": 1})
                FaultPlan(seed=0).kill_batcher_worker(server._batcher)
                # Submissions after the kill still answer (restarted worker).
                second = client.request({"op": "embed", "node": 1})
            assert first["ok"] and second["ok"]
            assert first["embedding"] == second["embedding"]
            assert server.metrics.worker_restarts >= 1

    def test_restarted_server_serves_identical_from_recovered_snapshots(
            self, registry, tiny_cora, offline_embeddings, tmp_path):
        snapshot_dir = tmp_path / "snaps"
        with EmbeddingServer(registry, tiny_cora,
                             snapshot_dir=snapshot_dir) as server:
            server.warmup()
            with InProcessClient(server) as client:
                first_run = _embed_all(client, range(8))
            # __exit__ drains: stops admitting, flushes, persists snapshots.
        assert list(snapshot_dir.glob("emb-*.npz"))

        reborn = EmbeddingServer(registry, tiny_cora,
                                 snapshot_dir=snapshot_dir)
        with reborn, InProcessClient(reborn) as client:
            second_run = _embed_all(client, range(8))
            assert reborn.metrics.snapshot_failures == 0  # loaded, not rebuilt
        for a, b in zip(first_run, second_run):
            assert np.array_equal(np.array(a["embedding"]),
                                  np.array(b["embedding"]))

    def test_restart_over_rotted_snapshot_recomputes_identically(
            self, registry, tiny_cora, offline_embeddings, tmp_path):
        snapshot_dir = tmp_path / "snaps"
        with EmbeddingServer(registry, tiny_cora,
                             snapshot_dir=snapshot_dir) as server:
            server.warmup()
        plan = FaultPlan(seed=9)
        with EmbeddingServer(registry, tiny_cora,
                             snapshot_dir=snapshot_dir) as victim:
            plan.corrupt_snapshot(victim.store)  # rot it under the server
            victim.store.evict_snapshot(registry.get().version_id)
            with InProcessClient(victim) as client:
                responses = _embed_all(client, range(8))
            assert victim.metrics.snapshot_failures == 1  # structured reject
            for node, response in enumerate(responses):
                assert response["ok"]
                assert np.array_equal(np.array(response["embedding"]),
                                      offline_embeddings[node])

    def test_drain_rejects_new_work_but_stays_observable(self, registry,
                                                         tiny_cora):
        server = EmbeddingServer(registry, tiny_cora, max_wait_ms=1.0)
        server.warmup()
        with InProcessClient(server) as client:
            assert client.request({"op": "embed", "node": 0})["ok"]
            server.drain()
            rejected = client.request({"op": "embed", "node": 0})
            assert rejected["error"]["code"] == "not_ready"
            health = client.request({"op": "health"})
            assert health["ok"] and health["health"]["state"] == "draining"
            ready = client.request({"op": "ready"})
            assert ready["ok"] and ready["ready"] is False
        server.close()
