"""Serving metrics: histograms, counters, obs integration."""

import json
import math
import threading

import numpy as np

from repro.obs import Tracer
from repro.serve import LatencyHistogram, ServeMetrics


class TestLatencyHistogram:
    def test_percentiles_match_numpy(self):
        hist = LatencyHistogram("embed")
        samples = np.random.default_rng(0).exponential(0.01, size=1000)
        for s in samples:
            hist.record(float(s))
        for q in (50, 95, 99):
            assert hist.percentile(q) == float(np.percentile(samples, q))

    def test_empty_is_nan_not_crash(self):
        hist = LatencyHistogram("embed")
        assert math.isnan(hist.percentile(99))
        summary = hist.summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p99_s"])

    def test_summary_fields(self):
        hist = LatencyHistogram("embed")
        for value in [0.001, 0.002, 0.003]:
            hist.record(value)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["mean_s"] == (0.001 + 0.002 + 0.003) / 3
        assert summary["p50_s"] == 0.002

    def test_reservoir_caps_memory(self):
        from repro.serve.metrics import _MAX_SAMPLES

        hist = LatencyHistogram("embed")
        for i in range(_MAX_SAMPLES + 10):
            hist.record(float(i))
        assert len(hist._samples) <= _MAX_SAMPLES
        assert hist.count == _MAX_SAMPLES + 10

    def test_thread_safety_counts(self):
        hist = LatencyHistogram("embed")

        def worker():
            for _ in range(500):
                hist.record(0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 2000


class TestServeMetrics:
    def test_cache_hit_rate(self):
        metrics = ServeMetrics()
        assert metrics.cache_hit_rate is None
        metrics.observe_cache(True)
        metrics.observe_cache(False)
        metrics.observe_cache(False)
        assert metrics.cache_hit_rate == 1 / 3

    def test_batch_occupancy(self):
        metrics = ServeMetrics()
        assert metrics.mean_batch_occupancy is None
        metrics.observe_batch(4)
        metrics.observe_batch(2)
        assert metrics.mean_batch_occupancy == 3.0

    def test_snapshot_is_json_ready(self):
        metrics = ServeMetrics()
        metrics.observe("embed", 0.001)
        metrics.observe_cache(True)
        metrics.observe_batch(3)
        metrics.observe_error("unknown_node")
        snapshot = metrics.snapshot()
        json.dumps(snapshot)
        assert snapshot["latency"]["embed"]["count"] == 1
        assert snapshot["errors"]["unknown_node"] == 1

    def test_metrics_reach_active_tracer(self, tmp_path):
        """Latency/cache/batch series land in the obs trace as metrics."""
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(str(path))
        tracer.activate()
        try:
            metrics = ServeMetrics()
            metrics.observe("embed", 0.005)
            metrics.observe_cache(True)
            metrics.observe_batch(7)
        finally:
            tracer.close()
        names = [json.loads(line).get("name")
                 for line in path.read_text().splitlines()]
        assert "serve.latency" in names
        assert "serve.cache" in names
        assert "serve.batch_size" in names
