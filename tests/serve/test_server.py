"""EmbeddingServer: protocol, transports, resilience, latency smoke."""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    EmbeddingServer,
    HttpClient,
    InProcessClient,
    build_http_server,
)


@pytest.fixture
def server(registry, tiny_cora, tmp_path):
    with EmbeddingServer(registry, tiny_cora, snapshot_dir=tmp_path / "snaps",
                         max_wait_ms=1.0, probe_epochs=60) as srv:
        yield srv


@pytest.fixture
def client(server):
    with InProcessClient(server) as cli:
        yield cli


class TestProtocol:
    def test_embed_known_node_bit_identical(self, client, offline_embeddings):
        response = client.request({"op": "embed", "node": 5})
        assert response["ok"]
        assert np.array_equal(np.array(response["embedding"]),
                              offline_embeddings[5])

    def test_embed_pinned_version(self, client, registry):
        version_id = registry.get().version_id
        response = client.request({"op": "embed", "node": 0,
                                   "version": version_id})
        assert response["version"] == version_id

    def test_classify_known_node(self, client, tiny_cora):
        response = client.request({"op": "classify", "node": 3})
        assert response["ok"]
        assert 0 <= response["label"] < tiny_cora.num_classes
        assert len(response["proba"]) == tiny_cora.num_classes
        assert sum(response["proba"]) == pytest.approx(1.0)

    def test_neighbors(self, client, tiny_cora):
        response = client.request({"op": "neighbors", "node": 3})
        assert response["neighbors"] == tiny_cora.neighbors(3).tolist()

    def test_models_and_stats(self, client):
        models = client.request({"op": "models"})["models"]
        assert len(models) == 1 and models[0]["method"] == "grace"
        stats = client.request({"op": "stats"})["stats"]
        assert "latency" in stats and "cache" in stats

    def test_embed_unseen_node(self, client, tiny_cora):
        response = client.request({
            "op": "embed",
            "features": tiny_cora.features[3].tolist(),
            "neighbors": [3, 9],
        })
        assert response["ok"]
        assert len(response["embedding"]) == 32


class TestUnseenNodeAcceptance:
    def test_served_classification_matches_offline_spliced(
            self, server, client, registry, tiny_cora):
        """The tentpole acceptance check: an unseen node's served inductive
        embedding and probe classification must match the offline path —
        embed the *spliced* full graph, apply the same frozen probe — to
        1e-6."""
        from repro.serve import EgoQuery, InductiveEncoder

        rng = np.random.default_rng(11)
        features = (tiny_cora.features[5] * 0.7
                    + rng.normal(0, 0.05, tiny_cora.num_features))
        neighbors = [5, 12, 20]
        response = client.request({"op": "classify",
                                   "features": features.tolist(),
                                   "neighbors": neighbors})
        assert response["ok"]

        version = registry.get()
        encoder = InductiveEncoder(version.artifact, tiny_cora)
        spliced, new_id = encoder.spliced_graph(
            EgoQuery(features=features, neighbors=neighbors))
        offline_embedding = version.artifact.embed(spliced)[new_id]
        probe = server._probe(version)
        offline_proba = probe.predict_proba(offline_embedding[None, :])[0]

        np.testing.assert_allclose(np.array(response["proba"]),
                                   offline_proba, atol=1e-6)
        assert response["label"] == int(np.argmax(offline_proba))

        served_embedding = np.array(client.request({
            "op": "embed", "features": features.tolist(),
            "neighbors": neighbors})["embedding"])
        np.testing.assert_allclose(served_embedding, offline_embedding,
                                   atol=1e-6)


class TestStructuredErrors:
    @pytest.mark.parametrize("request_payload,code,status", [
        ({"op": "embed", "node": 10 ** 9}, "unknown_node", 404),
        ({"op": "embed", "node": -1}, "unknown_node", 404),
        ({"op": "embed"}, "malformed_query", 400),
        ({"op": "embed", "node": 1, "features": [1.0]}, "malformed_query", 400),
        ({"op": "classify", "features": [1.0, 2.0]}, "malformed_query", 400),
        ({"op": "warmup"}, "unknown_op", 400),
        ({"op": "embed", "node": 1, "version": "gone-000000"},
         "stale_version", 409),
        ({"node": 1}, "malformed_query", 400),
        ("embed 5", "malformed_query", 400),
        (None, "malformed_query", 400),
        ({"op": "embed", "node": 1, "version": 7}, "malformed_query", 400),
    ])
    def test_error_envelope(self, client, request_payload, code, status):
        response = client.request(request_payload)
        assert response["ok"] is False
        assert response["error"]["code"] == code
        assert response["status"] == status

    def test_errors_counted_not_fatal(self, client, server):
        client.request({"op": "embed", "node": 10 ** 9})
        assert server.metrics.errors.get("unknown_node", 0) >= 1
        # The server must keep answering after an error.
        assert client.request({"op": "embed", "node": 0})["ok"]

    def test_duplicate_splice_neighbors_rejected(self, client, tiny_cora):
        response = client.request({
            "op": "embed", "features": tiny_cora.features[0].tolist(),
            "neighbors": [1, 1]})
        assert response["error"]["code"] == "malformed_query"


class TestConcurrency:
    def test_concurrent_mixed_load(self, server, client, offline_embeddings,
                                   tiny_cora):
        futures = []
        for i in range(48):
            if i % 3 == 2:
                futures.append(client.submit({
                    "op": "embed",
                    "features": tiny_cora.features[i % tiny_cora.num_nodes].tolist(),
                    "neighbors": [i % tiny_cora.num_nodes]}))
            else:
                futures.append(client.submit(
                    {"op": "embed", "node": i % tiny_cora.num_nodes}))
        for i, future in enumerate(futures):
            response = future.result(timeout=30)
            assert response["ok"], response
            if i % 3 != 2:
                node = i % tiny_cora.num_nodes
                assert np.array_equal(np.array(response["embedding"]),
                                      offline_embeddings[node])

    def test_unbatched_server_equivalent(self, registry, tiny_cora,
                                         offline_embeddings):
        with EmbeddingServer(registry, tiny_cora, use_batching=False,
                             use_cache=False) as raw:
            response = raw.handle({"op": "embed", "node": 5})
            np.testing.assert_allclose(np.array(response["embedding"]),
                                       offline_embeddings[5], atol=1e-12)


class TestLatencySmoke:
    def test_warm_serving_under_two_seconds(self, server, client):
        """Tier-1 regression: 64 warm-cache queries through the full
        in-process stack (dispatch + store + metrics) must stay interactive."""
        client.request({"op": "embed", "node": 0})  # warm snapshot
        start = time.perf_counter()
        for i in range(64):
            assert client.request({"op": "embed", "node": i % 16})["ok"]
        assert time.perf_counter() - start < 2.0
        assert server.metrics.latency("embed").count >= 65


class TestHttpTransport:
    def test_http_round_trip_and_errors(self, server, offline_embeddings):
        httpd = build_http_server(server)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            def post(payload):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/query",
                    data=json.dumps(payload).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request) as reply:
                    return json.loads(reply.read())

            response = post({"op": "embed", "node": 5})
            assert np.array_equal(np.array(response["embedding"]),
                                  offline_embeddings[5])

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post({"op": "embed", "node": 10 ** 9})
            assert excinfo.value.code == 404
            body = json.loads(excinfo.value.read())
            assert body["error"]["code"] == "unknown_node"

            health = json.loads(urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz").read())
            assert health["ok"] and len(health["models"]) == 1

            ready = json.loads(urllib.request.urlopen(
                f"http://127.0.0.1:{port}/readyz").read())
            assert ready["ready"] is True
        finally:
            httpd.shutdown()
            httpd.server_close()

    def test_http_client_envelopes_match_in_process(self, server):
        """HttpClient must hand back the exact envelope InProcessClient
        would — including ``status``, which the transport moves into the
        HTTP status line and the client must restore."""
        httpd = build_http_server(server)
        port = httpd.server_address[1]
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        try:
            http = HttpClient(f"http://127.0.0.1:{port}")
            for payload in ({"op": "embed", "node": 10 ** 9},
                            {"op": "explode"},
                            {"op": "rollback"},
                            {"op": "embed", "node": 3}):
                assert http.request(payload) == server.handle(payload)
        finally:
            httpd.shutdown()
            httpd.server_close()
