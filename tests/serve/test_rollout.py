"""Blue/green rollout: shadow gating, atomic promote, fail-closed rollback."""

import copy
import shutil

import numpy as np
import pytest

from repro.baselines import get_method
from repro.engine import PeriodicCheckpoint
from repro.resilience import FaultPlan
from repro.serve import EmbeddingServer, InProcessClient, RolloutError
from repro.serve.rollout import PROMOTED, ROLLED_BACK, SHADOWING


@pytest.fixture
def server(registry, tiny_cora):
    with EmbeddingServer(registry, tiny_cora, max_wait_ms=1.0) as srv:
        yield srv


@pytest.fixture
def client(server):
    with InProcessClient(server) as cli:
        yield cli


@pytest.fixture(scope="module")
def alt_checkpoint(tiny_cora, tmp_path_factory):
    """A second GRACE run (different seed) — genuinely different weights."""
    path = tmp_path_factory.mktemp("rollout-ckpt") / "grace-alt.npz"
    method = get_method("grace", epochs=2, seed=1)
    method.fit(tiny_cora, hooks=[PeriodicCheckpoint(str(path), every=1)])
    return path


def _register_twin(server, version_id="candidate-twin"):
    """Register a bit-identical copy of the active model as a candidate."""
    artifact = server.registry.get().artifact
    server.registry.register_artifact(artifact, version_id=version_id,
                                      activate=False)
    return version_id


class TestPromotion:
    def test_identical_candidate_promotes_atomically(self, server, client):
        active_id = server.registry.get().version_id
        twin = _register_twin(server)
        rollout = server.start_rollout(twin, shadow_fraction=1.0, min_shadow=4)
        assert rollout.state == SHADOWING
        # Candidate is registered but NOT default: unpinned queries still
        # answer from the active version while shadowing.
        assert client.request({"op": "embed", "node": 0})["version"] == active_id
        for node in range(1, 4):
            client.request({"op": "embed", "node": node})
        assert rollout.state == PROMOTED
        assert server.registry.get().version_id == twin
        assert client.request({"op": "embed", "node": 5})["version"] == twin

    def test_rollout_ops_report_lifecycle(self, server, client):
        assert client.request({"op": "rollout_status"})["rollout"] is None
        twin = _register_twin(server)
        started = client.request({"op": "rollout", "candidate": twin,
                                  "shadow_fraction": 1.0, "min_shadow": 2})
        assert started["ok"] and started["rollout"]["state"] == SHADOWING
        client.request({"op": "embed", "node": 0})
        client.request({"op": "embed", "node": 1})
        status = client.request({"op": "rollout_status"})["rollout"]
        assert status["state"] == PROMOTED
        assert status["shadow_count"] == 2
        assert status["min_cosine"] == pytest.approx(1.0)

    def test_rollback_after_promote_is_rejected(self, server, client):
        twin = _register_twin(server)
        server.start_rollout(twin, shadow_fraction=1.0, min_shadow=1)
        client.request({"op": "embed", "node": 0})
        response = client.request({"op": "rollback"})
        assert not response["ok"]
        assert response["error"]["code"] == "rollout_failed"


class TestRollback:
    def test_divergent_candidate_rolls_back_leaving_active_bit_identical(
            self, server, client, alt_checkpoint, offline_embeddings):
        active_id = server.registry.get().version_id
        rollout = server.start_rollout(str(alt_checkpoint),
                                       shadow_fraction=1.0, min_shadow=50)
        reads = [client.request({"op": "embed", "node": n})
                 for n in range(8)]
        assert rollout.state == ROLLED_BACK
        assert "divergence" in rollout.reason
        # Candidate evicted; the registry is back to the active model only.
        assert server.registry.versions() == [active_id]
        # Every read during the failed rollout, and every read after it,
        # came bit-identical from the untouched active version.
        for node, response in enumerate(reads):
            assert response["version"] == active_id
            assert np.array_equal(np.array(response["embedding"]),
                                  offline_embeddings[node])
        after = client.request({"op": "embed", "node": 3})
        assert np.array_equal(np.array(after["embedding"]),
                              offline_embeddings[3])

    def test_manual_rollback_op(self, server, client):
        twin = _register_twin(server)
        server.start_rollout(twin, shadow_fraction=1.0, min_shadow=1000)
        response = client.request({"op": "rollback"})
        assert response["ok"]
        assert response["rollout"]["state"] == ROLLED_BACK
        assert twin not in server.registry.versions()
        # Idempotent: a second rollback reports the same terminal state.
        again = client.request({"op": "rollback"})
        assert again["ok"] and again["rollout"]["state"] == ROLLED_BACK

    def test_rollback_without_rollout_is_structured(self, client):
        response = client.request({"op": "rollback"})
        assert not response["ok"]
        assert response["error"]["code"] == "rollout_failed"

    def test_snapshot_health_gate_fails_closed(self, server):
        broken = copy.copy(server.registry.get().artifact)

        def _boom(graph):
            raise RuntimeError("candidate cannot embed")

        broken.embed = _boom
        server.registry.register_artifact(broken, version_id="cand-broken",
                                          activate=False)
        with pytest.raises(RolloutError, match="health gate"):
            server.start_rollout("cand-broken")
        assert "cand-broken" not in server.registry.versions()
        assert server.metrics.snapshot_failures >= 1
        assert server.rollout is None or server.rollout.state != SHADOWING


class TestGuards:
    def test_candidate_equal_to_active_rejected(self, server):
        active_id = server.registry.get().version_id
        with pytest.raises(RolloutError, match="already the active"):
            server.start_rollout(active_id)

    def test_corrupt_candidate_checkpoint_rejected(
            self, server, grace_checkpoint, tmp_path):
        rotted = tmp_path / "rotted.npz"
        shutil.copy(grace_checkpoint, rotted)
        FaultPlan(seed=3).digest_mismatch(rotted)
        before = server.registry.versions()
        with pytest.raises(RolloutError, match="cannot be loaded"):
            server.start_rollout(str(rotted))
        assert server.registry.versions() == before

    def test_concurrent_rollout_rejected(self, server):
        twin = _register_twin(server)
        server.start_rollout(twin, min_shadow=1000)
        other = _register_twin(server, version_id="candidate-twin-2")
        with pytest.raises(RolloutError, match="already"):
            server.start_rollout(other)

    def test_parameter_validation(self, server):
        twin = _register_twin(server)
        for knobs in ({"shadow_fraction": 0.0}, {"shadow_fraction": 1.5},
                      {"min_shadow": 0}, {"max_error_rate": 1.0}):
            with pytest.raises(RolloutError):
                server.start_rollout(twin, **knobs)
