"""Unit tier for :mod:`repro.serve.resilience`.

Everything timing-shaped runs on an injected fake clock, so these tests
are deterministic regardless of scheduler jitter — the wall-clock chaos
scenarios live in ``test_chaos.py``.
"""

import pytest

from repro.serve import (
    AdmissionController,
    Deadline,
    DeadlineExceededError,
    NotReadyError,
    OverloadedError,
    RetryPolicy,
    ServeMetrics,
    ServerHealth,
    TokenBucket,
    request_with_retries,
)
from repro.serve.resilience import DEGRADED, DRAINING, READY, WARMING


class FakeClock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_shed_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.1)  # one token at 10/s
        clock.advance(0.1)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)  # idle for a minute: still only `burst` stored
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert bucket.try_acquire() > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------
class TestAdmissionController:
    def test_inflight_watermark_sheds_and_releases(self):
        metrics = ServeMetrics()
        gate = AdmissionController(max_inflight=2, metrics=metrics)
        t1 = gate.admit("embed")
        t2 = gate.admit("embed")
        with pytest.raises(OverloadedError) as caught:
            gate.admit("embed")
        assert caught.value.details["retry_after_ms"] == caught.value.retry_after_ms
        assert gate.inflight == 2
        t1.release()
        t1.release()  # release is idempotent; the slot frees exactly once
        assert gate.inflight == 1
        gate.admit("embed").release()
        t2.release()
        assert gate.inflight == 0
        assert metrics.admitted == 3 and metrics.shed == 1
        assert metrics.shed_rate == pytest.approx(0.25)

    def test_rate_limit_hint_scales_with_wait(self):
        clock = FakeClock()
        gate = AdmissionController(rate_limit=2.0, burst=1.0,
                                   retry_after_ms=10.0, clock=clock)
        gate.admit("embed").release()
        with pytest.raises(OverloadedError) as caught:
            gate.admit("embed")
        # One token at 2/s is 500ms away: the hint must not undersell it.
        assert caught.value.retry_after_ms == pytest.approx(500.0)

    def test_rate_shed_does_not_leak_inflight(self):
        clock = FakeClock()
        gate = AdmissionController(rate_limit=1.0, burst=1.0,
                                   max_inflight=8, clock=clock)
        gate.admit("embed").release()
        for _ in range(5):
            with pytest.raises(OverloadedError):
                gate.admit("embed")
        assert gate.inflight == 0

    def test_ticket_context_manager(self):
        gate = AdmissionController(max_inflight=1)
        with gate.admit("embed"):
            assert gate.inflight == 1
        assert gate.inflight == 0

    def test_unbounded_controller_still_counts(self):
        metrics = ServeMetrics()
        gate = AdmissionController(metrics=metrics)
        for _ in range(4):
            gate.admit("embed").release()
        assert metrics.admitted == 4 and metrics.shed == 0


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class TestDeadline:
    def test_expiry_and_remaining(self):
        clock = FakeClock()
        deadline = Deadline(100.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining_ms() == pytest.approx(100.0)
        clock.advance(0.06)
        assert deadline.remaining_ms() == pytest.approx(40.0)
        clock.advance(0.05)
        assert deadline.expired
        assert deadline.remaining_ms() == 0.0

    def test_check_counts_per_stage(self):
        clock = FakeClock()
        metrics = ServeMetrics()
        deadline = Deadline(10.0, clock=clock)
        deadline.check("admission", metrics)  # within budget: no-op
        clock.advance(1.0)
        with pytest.raises(DeadlineExceededError) as caught:
            deadline.check("pre_encode", metrics)
        assert caught.value.stage == "pre_encode"
        assert metrics.deadline_expired == {"pre_encode": 1}
        assert metrics.deadline_expired_total == 1

    def test_validation(self):
        for bad in (-1.0, float("inf"), float("nan")):
            with pytest.raises(ValueError):
                Deadline(bad)


# ----------------------------------------------------------------------
# ServerHealth
# ----------------------------------------------------------------------
class TestServerHealth:
    def test_warming_until_first_success(self):
        health = ServerHealth()
        assert health.state == WARMING and not health.ready
        health.mark_ready()
        assert health.state == READY and health.ready

    def test_snapshot_failure_degrades_then_ages_out(self):
        health = ServerHealth(window=4)
        health.mark_ready()
        health.note_snapshot_failure()
        assert health.state == DEGRADED
        assert health.ready  # degraded still takes traffic
        for _ in range(4):
            health.note_outcome(shed=False)
        assert health.state == READY

    def test_shed_rate_degrades(self):
        health = ServerHealth(shed_rate_threshold=0.5, window=8)
        health.mark_ready()
        for _ in range(3):
            health.note_outcome(shed=True)
        health.note_outcome(shed=False)
        assert health.state == DEGRADED
        assert any("shed rate" in reason
                   for reason in health.describe()["reasons"])

    def test_p99_watermark_degrades(self):
        metrics = ServeMetrics()
        health = ServerHealth(metrics, p99_watermark_ms=5.0)
        health.mark_ready()
        assert health.state == READY  # no samples yet: NaN p99 never trips
        for _ in range(10):
            metrics.observe("embed", 0.050)
        assert health.state == DEGRADED

    def test_drain_is_terminal_and_rejects(self):
        health = ServerHealth()
        health.mark_ready()
        health.check_admitting()  # ready: admits
        health.start_drain()
        assert health.state == DRAINING and not health.ready
        with pytest.raises(NotReadyError):
            health.check_admitting()
        health.mark_ready()  # cannot resurrect a draining server
        assert health.state == DRAINING

    def test_describe_is_json_shaped(self):
        health = ServerHealth()
        report = health.describe()
        assert report["state"] == WARMING
        assert set(report) == {"state", "ready", "reasons", "window",
                               "shed_rate_threshold", "p99_watermark_ms"}


# ----------------------------------------------------------------------
# RetryPolicy / request_with_retries
# ----------------------------------------------------------------------
def _overloaded(retry_after_ms=20.0):
    return {"ok": False, "error": {"code": "overloaded", "message": "shed",
                                   "details": {"retry_after_ms": retry_after_ms}}}


class TestRetryPolicy:
    def test_should_retry_gates_on_code_and_budget(self):
        policy = RetryPolicy(max_retries=2)
        assert policy.should_retry(_overloaded(), 0)
        assert policy.should_retry(_overloaded(), 1)
        assert not policy.should_retry(_overloaded(), 2)
        assert not policy.should_retry({"ok": True}, 0)
        assert not policy.should_retry(
            {"ok": False, "error": {"code": "unknown_node"}}, 0)

    def test_backoff_grows_capped_and_honors_hint(self):
        policy = RetryPolicy(base_ms=10.0, cap_ms=80.0, jitter=0.0)
        delays = [policy.backoff_ms(k) for k in range(5)]
        assert delays == [10.0, 20.0, 40.0, 80.0, 80.0]
        assert policy.backoff_ms(0, retry_after_ms=55.0) == 55.0

    def test_jitter_is_seeded(self):
        a = [RetryPolicy(seed=7).backoff_ms(k) for k in range(4)]
        b = [RetryPolicy(seed=7).backoff_ms(k) for k in range(4)]
        c = [RetryPolicy(seed=8).backoff_ms(k) for k in range(4)]
        assert a == b
        assert a != c

    def test_request_with_retries_recovers(self):
        responses = [_overloaded(15.0), _overloaded(15.0), {"ok": True, "n": 3}]
        sent, slept = [], []

        def send(payload):
            sent.append(payload)
            return responses[len(sent) - 1]

        policy = RetryPolicy(max_retries=3, base_ms=10.0, jitter=0.0)
        out = request_with_retries(send, {"op": "embed"}, policy,
                                   idempotent=True, sleep=slept.append)
        assert out == {"ok": True, "n": 3}
        assert len(sent) == 3
        # Both waits floor at the server's 15ms hint (base 10ms is below it).
        assert slept[0] == pytest.approx(0.015)
        assert len(slept) == 2

    def test_non_idempotent_sends_exactly_once(self):
        sent = []

        def send(payload):
            sent.append(payload)
            return _overloaded()

        policy = RetryPolicy(max_retries=5, jitter=0.0)
        out = request_with_retries(send, {"op": "rollout"}, policy,
                                   idempotent=False,
                                   sleep=lambda s: pytest.fail("slept"))
        assert len(sent) == 1
        assert out["error"]["code"] == "overloaded"

    def test_exhausted_retries_return_last_error(self):
        policy = RetryPolicy(max_retries=2, base_ms=1.0, jitter=0.0)
        calls = []

        def send(payload):
            calls.append(payload)
            return _overloaded(1.0)

        out = request_with_retries(send, {"op": "embed"}, policy,
                                   idempotent=True, sleep=lambda s: None)
        assert len(calls) == 3  # initial + 2 retries
        assert out["error"]["code"] == "overloaded"

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_ms=10.0, cap_ms=5.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
