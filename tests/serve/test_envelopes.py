"""Registry-walking envelope meta-test.

Walks ``EmbeddingServer.OPS`` — not a hand-maintained list — so every op
added to the server is automatically held to the contract: *any* failure,
client-attributable or a server bug, crosses the transport as a
structured envelope (``ok``/``error.code``/``error.message``/``details``/
``status``) and never as a raw python traceback.
"""

import json

import pytest

from repro.serve import EmbeddingServer, InProcessClient

#: Fields that make an envelope an envelope.
_ENVELOPE_KEYS = {"ok", "error", "status"}


@pytest.fixture
def server(registry, tiny_cora):
    with EmbeddingServer(registry, tiny_cora, max_wait_ms=1.0) as srv:
        yield srv


@pytest.fixture
def client(server):
    with InProcessClient(server) as cli:
        yield cli


def _assert_envelope(response, code=None):
    assert _ENVELOPE_KEYS <= set(response)
    assert response["ok"] is False
    assert isinstance(response["status"], int)
    error = response["error"]
    assert set(error) == {"code", "message", "details"}
    assert isinstance(error["code"], str) and isinstance(error["message"], str)
    assert isinstance(error["details"], dict)
    if code is not None:
        assert error["code"] == code
    wire = json.dumps(response)
    assert "Traceback" not in wire
    return error


def test_every_op_maps_to_a_dispatcher():
    for op, method_name in EmbeddingServer.OPS.items():
        assert method_name.startswith("_op_")
        assert callable(getattr(EmbeddingServer, method_name)), (op, method_name)


@pytest.mark.parametrize("op", sorted(EmbeddingServer.OPS))
def test_dispatcher_bug_becomes_internal_envelope(server, client, op):
    """A RuntimeError escaping ANY op must come back as a structured 500
    carrying the exception type — never the traceback, never a dead
    transport thread."""

    def exploding_op(request, version_id, deadline):
        raise RuntimeError("secret server-side detail")

    setattr(server, EmbeddingServer.OPS[op], exploding_op)
    response = client.request({"op": op})
    error = _assert_envelope(response, code="internal")
    assert response["status"] == 500
    assert error["details"] == {"type": "RuntimeError"}
    # The message names the type but must not leak the server-side detail.
    assert "secret" not in json.dumps(response)
    assert server.metrics.errors.get("internal", 0) >= 1


@pytest.mark.parametrize("op", sorted(EmbeddingServer.OPS))
def test_bad_version_type_is_structured_for_every_op(client, op):
    response = client.request({"op": op, "version": 123})
    _assert_envelope(response, code="malformed_query")


@pytest.mark.parametrize("op", sorted(EmbeddingServer.OPS))
def test_bad_deadline_type_is_structured_for_every_op(client, op):
    response = client.request({"op": op, "deadline_ms": "soon"})
    _assert_envelope(response, code="malformed_query")


@pytest.mark.parametrize(
    "payload, code",
    [
        ([1, 2, 3], "malformed_query"),            # not an object
        ({}, "malformed_query"),                   # no op
        ({"op": 7}, "malformed_query"),            # non-string op
        ({"op": "explode"}, "unknown_op"),         # unknown op
        ({"op": "embed"}, "malformed_query"),      # embed without target
        ({"op": "embed", "node": 10**9}, "unknown_node"),
        ({"op": "embed", "node": 0, "version": "ghost-1"}, "stale_version"),
        ({"op": "neighbors"}, "malformed_query"),
        ({"op": "rollout"}, "malformed_query"),    # no candidate
        ({"op": "rollback"}, "rollout_failed"),    # nothing in flight
        ({"op": "embed", "node": 0, "deadline_ms": -5}, "malformed_query"),
    ],
)
def test_bad_payloads_never_raise(client, payload, code):
    _assert_envelope(client.request(payload), code=code)


def test_unknown_op_advertises_the_full_registry(client):
    response = client.request({"op": "explode"})
    assert response["error"]["details"]["available"] == sorted(
        EmbeddingServer.OPS)


def test_success_responses_echo_op_and_ok(client):
    for op in ("models", "stats", "health", "ready", "rollout_status"):
        response = client.request({"op": op})
        assert response["ok"] is True and response["op"] == op
