"""Dataset registry: coverage of Tab. III, determinism, scaling."""

import numpy as np
import pytest

from repro.graphs import dataset_names, get_spec, load_dataset


class TestRegistry:
    def test_all_paper_datasets_present(self):
        expected = {"cora", "citeseer", "photo", "computers", "cs", "arxiv", "products"}
        assert expected == set(dataset_names())

    def test_get_spec_case_insensitive(self):
        assert get_spec("Cora").name == "cora"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("pubmed")

    def test_unknown_dataset_is_also_a_value_error(self):
        # UnknownDatasetError subclasses both, and the message names the
        # valid choices so the CLI error is self-explanatory.
        with pytest.raises(ValueError, match="available"):
            get_spec("pubmed")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError, match="string"):
            get_spec(42)

    def test_specs_record_paper_statistics(self):
        spec = get_spec("cora")
        assert spec.paper_nodes == 2708
        assert spec.paper_features == 1433
        assert spec.num_classes == 7


class TestGeneration:
    def test_deterministic(self):
        g1 = load_dataset("citeseer", seed=4, scale=0.3)
        g2 = load_dataset("citeseer", seed=4, scale=0.3)
        assert (g1.adjacency != g2.adjacency).nnz == 0
        np.testing.assert_array_equal(g1.labels, g2.labels)

    def test_seed_changes_graph(self):
        g1 = load_dataset("cora", seed=1, scale=0.3)
        g2 = load_dataset("cora", seed=2, scale=0.3)
        assert (g1.adjacency != g2.adjacency).nnz > 0

    def test_different_datasets_differ_for_same_seed(self):
        g1 = load_dataset("cora", seed=0, scale=0.3)
        g2 = load_dataset("citeseer", seed=0, scale=0.3)
        assert g1.num_classes != g2.num_classes

    def test_scale_controls_node_count(self):
        small = load_dataset("cora", seed=0, scale=0.25)
        full = load_dataset("cora", seed=0, scale=1.0)
        assert small.num_nodes == pytest.approx(full.num_nodes * 0.25, rel=0.05)

    def test_scale_must_be_positive(self):
        with pytest.raises(ValueError):
            load_dataset("cora", scale=0.0)

    def test_class_count_matches_spec(self):
        for name in ("cora", "citeseer", "photo"):
            g = load_dataset(name, seed=0, scale=0.3)
            assert g.num_classes == get_spec(name).num_classes

    def test_graphs_are_valid(self):
        for name in ("cora", "computers"):
            load_dataset(name, seed=0, scale=0.3).validate()

    def test_avg_degree_roughly_matches_spec(self):
        g = load_dataset("photo", seed=0, scale=1.0)
        spec = get_spec("photo")
        assert g.average_degree == pytest.approx(spec.avg_degree, rel=0.25)

    def test_relative_sizes_preserved(self):
        sizes = {name: get_spec(name).num_nodes for name in dataset_names()}
        assert sizes["cora"] < sizes["cs"] < sizes["arxiv"] < sizes["products"]
