"""Split machinery: disjointness, coverage, stratification, leakage freedom."""

import numpy as np
import pytest

from repro.graphs import (
    load_dataset,
    sample_negative_edges,
    split_edges,
    split_graphs,
    split_nodes,
)


class TestNodeSplits:
    def test_partition_properties(self, rng):
        split = split_nodes(100, rng, train_frac=0.1, val_frac=0.1)
        all_idx = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(all_idx), np.arange(100))

    def test_fractions_respected(self, rng):
        split = split_nodes(1000, rng, train_frac=0.1, val_frac=0.1)
        assert split.train.size == pytest.approx(100, abs=2)
        assert split.val.size == pytest.approx(100, abs=2)

    def test_stratified_covers_every_class(self, rng):
        labels = np.repeat(np.arange(5), 20)
        split = split_nodes(100, rng, labels=labels, stratified=True)
        assert set(labels[split.train]) == set(range(5))

    def test_stratified_rare_class_in_train(self, rng):
        labels = np.zeros(50, dtype=int)
        labels[0] = 1  # singleton class
        split = split_nodes(50, rng, labels=labels, stratified=True)
        assert 1 in labels[split.train]

    def test_invalid_fractions_rejected(self, rng):
        with pytest.raises(ValueError):
            split_nodes(10, rng, train_frac=0.8, val_frac=0.4)

    def test_unstratified_is_random_partition(self, rng):
        split = split_nodes(60, rng, stratified=False)
        assert split.train.size >= 1
        overlap = set(split.train) & set(split.test)
        assert not overlap


class TestNegativeSampling:
    def test_negatives_are_nonedges(self, small_er_graph, rng):
        negs = sample_negative_edges(small_er_graph, 20, rng)
        existing = {tuple(e) for e in small_er_graph.edge_array()}
        for u, v in negs:
            assert (u, v) not in existing
            assert u != v

    def test_negatives_unique(self, small_er_graph, rng):
        negs = sample_negative_edges(small_er_graph, 30, rng)
        assert len({tuple(e) for e in negs}) == negs.shape[0]

    def test_returns_fewer_when_graph_saturated(self, triangle_graph, rng):
        # Triangle graph has zero non-edges.
        negs = sample_negative_edges(triangle_graph, 10, rng)
        assert negs.shape[0] == 0


class TestEdgeSplits:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("cora", seed=8, scale=0.3)

    def test_partition_of_edges(self, graph, rng):
        split = split_edges(graph, rng)
        m = graph.num_edges
        total = len(split.train_pos) + len(split.val_pos) + len(split.test_pos)
        assert total == m
        assert len(split.train_pos) == pytest.approx(0.7 * m, abs=2)

    def test_train_graph_has_only_train_edges(self, graph, rng):
        split = split_edges(graph, rng)
        train_edges = {tuple(e) for e in split.train_graph.edge_array()}
        assert train_edges == {tuple(e) for e in split.train_pos}

    def test_no_test_edge_leaks_into_train_graph(self, graph, rng):
        split = split_edges(graph, rng)
        train_edges = {tuple(e) for e in split.train_graph.edge_array()}
        for e in split.test_pos:
            assert tuple(e) not in train_edges

    def test_train_graph_keeps_features(self, graph, rng):
        split = split_edges(graph, rng)
        np.testing.assert_allclose(split.train_graph.features, graph.features)

    def test_negatives_disjoint_from_positives(self, graph, rng):
        split = split_edges(graph, rng)
        existing = {tuple(e) for e in graph.edge_array()}
        for bucket in (split.train_neg, split.val_neg, split.test_neg):
            for e in bucket:
                assert tuple(e) not in existing

    def test_too_small_graph_rejected(self, triangle_graph, rng):
        with pytest.raises(ValueError, match="too small"):
            split_edges(triangle_graph, rng)


class TestGraphSplits:
    def test_partition(self, rng):
        split = split_graphs(50, rng)
        all_idx = np.concatenate([split.train, split.val, split.test])
        assert np.array_equal(np.sort(all_idx), np.arange(50))

    def test_fractions(self, rng):
        split = split_graphs(100, rng, train_frac=0.7, val_frac=0.1)
        assert split.train.size == 70
        assert split.val.size == 10
        assert split.test.size == 20
