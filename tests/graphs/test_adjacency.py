"""Normalization and propagated features (R = A_n^L X)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import (
    Graph,
    add_self_loops,
    adjacency_from_edge_mask,
    adjacency_from_edges,
    normalized_adjacency,
    propagated_features,
)


class TestSelfLoops:
    def test_adds_diagonal(self, triangle_graph):
        out = add_self_loops(triangle_graph.adjacency)
        np.testing.assert_allclose(out.diagonal(), 1.0)

    def test_idempotent(self, triangle_graph):
        once = add_self_loops(triangle_graph.adjacency)
        twice = add_self_loops(once)
        assert (once != twice).nnz == 0


class TestNormalization:
    def test_symmetric_is_symmetric(self, small_er_graph):
        a_n = normalized_adjacency(small_er_graph.adjacency)
        assert abs(a_n - a_n.T).max() < 1e-12

    def test_symmetric_triangle_values(self, triangle_graph):
        # Triangle + self loops: every degree is 3, so entries are 1/3.
        a_n = normalized_adjacency(triangle_graph.adjacency)
        np.testing.assert_allclose(a_n.toarray(), np.full((3, 3), 1 / 3), atol=1e-12)

    def test_row_normalization_rows_sum_to_one(self, small_er_graph):
        a_n = normalized_adjacency(small_er_graph.adjacency, method="row")
        sums = np.asarray(a_n.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, 1.0, atol=1e-12)

    def test_isolated_node_with_self_loops(self, isolated_node_graph):
        a_n = normalized_adjacency(isolated_node_graph.adjacency)
        assert a_n[3, 3] == pytest.approx(1.0)

    def test_isolated_node_without_self_loops_is_zero_row(self, isolated_node_graph):
        a_n = normalized_adjacency(isolated_node_graph.adjacency, self_loops=False)
        assert a_n[3].nnz == 0

    def test_unknown_method_rejected(self, triangle_graph):
        with pytest.raises(ValueError, match="unknown"):
            normalized_adjacency(triangle_graph.adjacency, method="bogus")

    def test_spectral_radius_at_most_one(self, small_er_graph):
        a_n = normalized_adjacency(small_er_graph.adjacency).toarray()
        eigvals = np.linalg.eigvalsh(a_n)
        assert eigvals.max() <= 1.0 + 1e-9


class TestPropagatedFeatures:
    def test_zero_hops_is_identity(self, small_er_graph):
        r = propagated_features(small_er_graph, 0)
        np.testing.assert_allclose(r, small_er_graph.features)

    def test_matches_dense_power(self, small_er_graph):
        a_n = normalized_adjacency(small_er_graph.adjacency).toarray()
        expected = a_n @ a_n @ small_er_graph.features
        r = propagated_features(small_er_graph, 2)
        np.testing.assert_allclose(r, expected, atol=1e-10)

    def test_negative_hops_rejected(self, small_er_graph):
        with pytest.raises(ValueError):
            propagated_features(small_er_graph, -1)

    def test_smooths_towards_neighbors(self, path_graph):
        # After propagation, adjacent nodes' features are closer than before.
        r = propagated_features(path_graph, 2)
        raw_gap = np.linalg.norm(path_graph.features[0] - path_graph.features[1])
        prop_gap = np.linalg.norm(r[0] - r[1])
        assert prop_gap < raw_gap


class TestEdgeConstruction:
    def test_adjacency_from_edges_symmetric(self):
        adj = adjacency_from_edges(4, np.array([[0, 1], [2, 3]]))
        assert adj[1, 0] == 1 and adj[3, 2] == 1

    def test_adjacency_from_edges_empty(self):
        assert adjacency_from_edges(3, np.empty((0, 2))).nnz == 0

    def test_adjacency_from_edge_mask(self, triangle_graph):
        edges = triangle_graph.edge_array()
        mask = np.array([True, False, True])
        adj = adjacency_from_edge_mask(triangle_graph, mask)
        assert adj.nnz == 4  # two undirected edges

    def test_edge_mask_length_validated(self, triangle_graph):
        with pytest.raises(ValueError, match="mask length"):
            adjacency_from_edge_mask(triangle_graph, np.array([True]))

    def test_edge_mask_all_false(self, triangle_graph):
        adj = adjacency_from_edge_mask(triangle_graph, np.zeros(3, dtype=bool))
        assert adj.nnz == 0
