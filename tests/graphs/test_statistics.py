"""Graph statistics: closed-form checks and dataset-analogue audits."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    class_balance,
    connected_component_sizes,
    degree_gini,
    edge_homophily,
    feature_sparsity,
    get_spec,
    load_dataset,
    summarize_graph,
)


class TestHomophily:
    def test_all_same_class(self, triangle_graph):
        g = Graph(triangle_graph.adjacency, triangle_graph.features,
                  labels=np.zeros(3, dtype=int))
        assert edge_homophily(g) == 1.0

    def test_path_mixed(self, path_graph):
        # path labels: 0 0 1 1 1 -> edges (0,1)=same (1,2)=diff (2,3)=same (3,4)=same
        assert edge_homophily(path_graph) == pytest.approx(3 / 4)

    def test_requires_labels(self):
        g = Graph.from_edge_list(3, [(0, 1)])
        with pytest.raises(ValueError):
            edge_homophily(g)

    def test_edgeless_zero(self):
        g = Graph.from_edge_list(3, [], labels=np.zeros(3, dtype=int))
        assert edge_homophily(g) == 0.0


class TestSparsityAndGini:
    def test_sparsity(self):
        g = Graph.from_edge_list(2, [(0, 1)], features=np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert feature_sparsity(g) == pytest.approx(0.75)

    def test_gini_zero_for_regular(self, triangle_graph):
        assert degree_gini(triangle_graph) == pytest.approx(0.0, abs=1e-12)

    def test_gini_positive_for_star(self, star_graph):
        assert degree_gini(star_graph) > 0.2

    def test_gini_bounded(self, small_er_graph):
        assert 0.0 <= degree_gini(small_er_graph) < 1.0


class TestComponents:
    def test_connected_graph_one_component(self, triangle_graph):
        np.testing.assert_array_equal(connected_component_sizes(triangle_graph), [3])

    def test_isolated_node_separate(self, isolated_node_graph):
        sizes = connected_component_sizes(isolated_node_graph)
        np.testing.assert_array_equal(sizes, [3, 1])

    def test_sizes_sum_to_n(self, small_er_graph):
        assert connected_component_sizes(small_er_graph).sum() == 30


class TestClassBalance:
    def test_sums_to_one(self, path_graph):
        balance = class_balance(path_graph)
        assert balance.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(balance, [0.4, 0.6])


class TestDatasetAudit:
    """The substitution claim, checked mechanically: analogues match their
    spec's homophily and degree targets."""

    @pytest.mark.parametrize("name", ["cora", "citeseer", "cs"])
    def test_homophily_matches_spec(self, name):
        graph = load_dataset(name, seed=0, scale=0.5)
        spec = get_spec(name)
        assert edge_homophily(graph) == pytest.approx(spec.homophily, abs=0.1)

    @pytest.mark.parametrize("name", ["photo", "computers"])
    def test_block_datasets_have_lower_label_homophily(self, name):
        """With two classes per structural block, same-*label* homophily is
        the spec's class homophily plus roughly half the block term."""
        graph = load_dataset(name, seed=0, scale=0.5)
        spec = get_spec(name)
        measured = edge_homophily(graph)
        assert measured > spec.homophily - 0.05
        assert measured < spec.homophily + spec.block_homophily

    def test_summary_runs_on_analogue(self):
        graph = load_dataset("cora", seed=0, scale=0.3)
        summary = summarize_graph(graph)
        assert summary.num_nodes == graph.num_nodes
        assert summary.largest_component_fraction > 0.5
        assert 0 < summary.feature_sparsity < 1
        d = summary.as_dict()
        assert d["avg_degree"] == pytest.approx(graph.average_degree)
