"""Graph container invariants and neighborhood queries."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, GraphConstructionError


class TestConstruction:
    def test_symmetrizes_input(self):
        adj = sp.csr_matrix(np.array([[0, 1], [0, 0]], dtype=float))
        g = Graph(adj, np.zeros((2, 1)))
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        g.validate()

    def test_strips_self_loops(self):
        adj = sp.csr_matrix(np.eye(3))
        g = Graph(adj, np.zeros((3, 1)))
        assert g.num_edges == 0

    def test_binarizes_weights(self):
        adj = sp.csr_matrix(np.array([[0, 5.0], [5.0, 0]]))
        g = Graph(adj, np.zeros((2, 1)))
        assert np.all(g.adjacency.data == 1.0)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            Graph(sp.csr_matrix((2, 3)), np.zeros((2, 1)))

    def test_rejects_feature_mismatch(self):
        with pytest.raises(ValueError, match="features"):
            Graph(sp.csr_matrix((3, 3)), np.zeros((2, 1)))

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            Graph(sp.csr_matrix((3, 3)), np.zeros((3, 1)), labels=np.zeros(2, dtype=int))

    def test_from_edge_list_defaults_identity_features(self):
        g = Graph.from_edge_list(3, [(0, 1)])
        np.testing.assert_allclose(g.features, np.eye(3))

    def test_from_edge_list_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph.from_edge_list(2, [(0, 5)])

    def test_from_edge_list_empty(self):
        g = Graph.from_edge_list(4, [])
        assert g.num_edges == 0
        assert g.num_nodes == 4

    def test_from_edge_list_rejects_duplicates(self):
        with pytest.raises(GraphConstructionError, match="duplicate") as exc:
            Graph.from_edge_list(3, [(0, 1), (0, 1), (1, 2)])
        assert exc.value.duplicates == [(0, 1)]
        assert exc.value.self_loops == []

    def test_from_edge_list_rejects_reversed_restatement(self):
        """(1, 0) restates (0, 1) — silently collapsed before, now an error."""
        with pytest.raises(GraphConstructionError, match="duplicate") as exc:
            Graph.from_edge_list(3, [(0, 1), (1, 0)])
        assert exc.value.duplicates == [(0, 1)]

    def test_from_edge_list_rejects_self_loops(self):
        with pytest.raises(GraphConstructionError, match="self-loop") as exc:
            Graph.from_edge_list(3, [(0, 1), (2, 2)])
        assert exc.value.self_loops == [(2, 2)]
        assert exc.value.duplicates == []

    def test_construction_error_is_a_value_error(self):
        # Callers that predate the structured error still catch it.
        with pytest.raises(ValueError):
            Graph.from_edge_list(2, [(0, 1), (1, 0)])

    def test_rejects_nonfinite_features(self):
        features = np.zeros((3, 2))
        features[1, 0] = np.nan
        with pytest.raises(ValueError, match="NaN/Inf in 1 row"):
            Graph(sp.csr_matrix((3, 3)), features)

    def test_rejects_inf_features(self):
        features = np.zeros((2, 2))
        features[0, 1] = np.inf
        with pytest.raises(ValueError, match="NaN/Inf"):
            Graph(sp.csr_matrix((2, 2)), features)

    def test_rejects_non_numeric_features(self):
        with pytest.raises(ValueError, match="numeric"):
            Graph(sp.csr_matrix((2, 2)), np.array([["a", "b"], ["c", "d"]]))

    def test_rejects_nonfinite_adjacency(self):
        adj = sp.csr_matrix(np.array([[0.0, np.nan], [np.nan, 0.0]]))
        with pytest.raises(ValueError, match="non-finite"):
            Graph(adj, np.zeros((2, 1)))

    def test_rejects_float_labels(self):
        with pytest.raises(ValueError, match="integers"):
            Graph(sp.csr_matrix((2, 2)), np.zeros((2, 1)),
                  labels=np.array([0.5, 1.5]))

    def test_rejects_negative_labels(self):
        with pytest.raises(ValueError, match="negative"):
            Graph(sp.csr_matrix((2, 2)), np.zeros((2, 1)),
                  labels=np.array([0, -3]))


class TestFromCanonicalCSR:
    def test_roundtrips_canonical_arrays_bit_identically(self):
        base = Graph.from_edge_list(5, [(0, 1), (1, 2), (2, 3), (0, 4)],
                                    features=np.arange(10.0).reshape(5, 2))
        adj = base.adjacency
        g = Graph.from_canonical_csr(adj.indptr, adj.indices, base.features,
                                     validate=True)
        assert np.array_equal(g.adjacency.indptr, adj.indptr)
        assert np.array_equal(g.adjacency.indices, adj.indices)
        assert np.array_equal(g.features, base.features)
        assert g.num_edges == base.num_edges

    def test_rejects_feature_row_mismatch(self):
        base = Graph.from_edge_list(3, [(0, 1)])
        adj = base.adjacency
        with pytest.raises(ValueError, match="features"):
            Graph.from_canonical_csr(adj.indptr, adj.indices,
                                     np.zeros((2, 4)))

    def test_validate_flag_catches_broken_invariants(self):
        # An asymmetric structure smuggled in as "canonical" must not pass
        # the opt-in check — this is the oracle-equivalence safety net.
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        with pytest.raises(AssertionError):
            Graph.from_canonical_csr(indptr, indices, np.zeros((2, 1)),
                                     validate=True)


class TestProperties:
    def test_counts(self, triangle_graph):
        assert triangle_graph.num_nodes == 3
        assert triangle_graph.num_edges == 3
        assert triangle_graph.num_features == 2
        assert triangle_graph.num_classes == 2

    def test_degrees(self, star_graph):
        np.testing.assert_allclose(star_graph.degrees, [5, 1, 1, 1, 1, 1])
        assert star_graph.average_degree == pytest.approx(10 / 6)

    def test_num_classes_requires_labels(self):
        g = Graph.from_edge_list(2, [(0, 1)])
        with pytest.raises(ValueError, match="labels"):
            g.num_classes

    def test_edge_array_sorted_upper(self, triangle_graph):
        edges = triangle_graph.edge_array()
        assert edges.shape == (3, 2)
        assert np.all(edges[:, 0] < edges[:, 1])


class TestNeighborhoods:
    def test_neighbors(self, path_graph):
        np.testing.assert_array_equal(path_graph.neighbors(2), [1, 3])
        np.testing.assert_array_equal(path_graph.neighbors(0), [1])

    def test_two_hop_neighbors_path(self, path_graph):
        np.testing.assert_array_equal(path_graph.two_hop_neighbors(0), [1, 2])
        np.testing.assert_array_equal(path_graph.two_hop_neighbors(2), [0, 1, 3, 4])

    def test_two_hop_excludes_self(self, triangle_graph):
        assert 0 not in triangle_graph.two_hop_neighbors(0)

    def test_two_hop_isolated_node(self, isolated_node_graph):
        assert isolated_node_graph.two_hop_neighbors(3).size == 0

    def test_ego_nodes_radii(self, path_graph):
        np.testing.assert_array_equal(path_graph.ego_nodes(0, 0), [0])
        np.testing.assert_array_equal(path_graph.ego_nodes(0, 1), [0, 1])
        np.testing.assert_array_equal(path_graph.ego_nodes(0, 2), [0, 1, 2])
        np.testing.assert_array_equal(path_graph.ego_nodes(2, 2), [0, 1, 2, 3, 4])

    def test_ego_subgraph_center_mapping(self, path_graph):
        sub, center = path_graph.ego_subgraph(3, 1)
        assert sub.num_nodes == 3
        # The center must carry node 3's features.
        np.testing.assert_allclose(sub.features[center], path_graph.features[3])


class TestSubgraphs:
    def test_induced_subgraph_edges(self, triangle_graph):
        sub, mapping = triangle_graph.induced_subgraph([0, 1])
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        np.testing.assert_array_equal(mapping, [0, 1])

    def test_induced_subgraph_preserves_labels(self, path_graph):
        sub, mapping = path_graph.induced_subgraph([2, 4])
        np.testing.assert_array_equal(sub.labels, path_graph.labels[[2, 4]])

    def test_induced_subgraph_dedupes_nodes(self, path_graph):
        sub, mapping = path_graph.induced_subgraph([1, 1, 2])
        assert sub.num_nodes == 2


class TestCopyAndWith:
    def test_copy_is_independent(self, triangle_graph):
        g2 = triangle_graph.copy()
        g2.features[0, 0] = 99.0
        assert triangle_graph.features[0, 0] != 99.0

    def test_with_features_shares_structure(self, triangle_graph):
        g2 = triangle_graph.with_features(np.zeros((3, 4)))
        assert g2.num_edges == triangle_graph.num_edges
        assert g2.num_features == 4

    def test_with_adjacency_shares_features(self, triangle_graph):
        g2 = triangle_graph.with_adjacency(sp.csr_matrix((3, 3)))
        assert g2.num_edges == 0
        np.testing.assert_allclose(g2.features, triangle_graph.features)


class TestInterop:
    def test_to_networkx_roundtrip(self, small_er_graph):
        nx_graph = small_er_graph.to_networkx()
        assert nx_graph.number_of_nodes() == small_er_graph.num_nodes
        assert nx_graph.number_of_edges() == small_er_graph.num_edges


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 12), st.integers(0, 30), st.integers(0, 10_000))
def test_property_construction_invariants(n, num_edges, seed):
    """Any random edge list yields a valid symmetric, loop-free, binary graph."""
    rng = np.random.default_rng(seed)
    edges = {(int(rng.integers(n)), int(rng.integers(n))) for _ in range(num_edges)}
    edges = sorted(set((min(u, v), max(u, v)) for u, v in edges if u != v))
    g = Graph.from_edge_list(n, edges, features=rng.normal(size=(n, 3)))
    g.validate()
    # degree sum equals twice the edge count
    assert g.degrees.sum() == 2 * g.num_edges


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 10), st.integers(0, 20), st.integers(0, 10_000), st.integers(0, 3))
def test_property_ego_subgraph_is_contained(n, num_edges, seed, hops):
    """Ego nodes grow monotonically with hops and contain the center."""
    rng = np.random.default_rng(seed)
    edges = {(int(rng.integers(n)), int(rng.integers(n))) for _ in range(num_edges)}
    edges = sorted(set((min(u, v), max(u, v)) for u, v in edges if u != v))
    g = Graph.from_edge_list(n, edges)
    center = int(rng.integers(n))
    smaller = set(g.ego_nodes(center, hops).tolist())
    larger = set(g.ego_nodes(center, hops + 1).tolist())
    assert center in smaller
    assert smaller <= larger
