"""Synthetic generators: statistical targets and structural invariants."""

import numpy as np
import pytest

from repro.graphs import Graph, attributed_graph, degree_corrected_sbm, random_graph
from repro.graphs.generators import FeatureModel, sample_features


class TestDegreeCorrectedSBM:
    def setup_method(self):
        self.rng = np.random.default_rng(0)

    def test_edge_count_near_target(self):
        edges, labels = degree_corrected_sbm(400, 4, avg_degree=6.0, homophily=0.8, rng=self.rng)
        target = 400 * 6.0 / 2
        assert abs(edges.shape[0] - target) / target < 0.1

    def test_homophily_respected(self):
        edges, labels = degree_corrected_sbm(500, 5, avg_degree=8.0, homophily=0.85, rng=self.rng)
        same = (labels[edges[:, 0]] == labels[edges[:, 1]]).mean()
        assert same > 0.6  # well above the 1/5 random-mixing baseline

    def test_low_homophily_mixes_classes(self):
        edges, labels = degree_corrected_sbm(500, 5, avg_degree=8.0, homophily=0.2, rng=self.rng)
        same = (labels[edges[:, 0]] == labels[edges[:, 1]]).mean()
        assert same < 0.55

    def test_no_self_loops_or_duplicates(self):
        edges, _ = degree_corrected_sbm(200, 3, avg_degree=5.0, homophily=0.8, rng=self.rng)
        assert np.all(edges[:, 0] < edges[:, 1])
        assert len({tuple(e) for e in edges}) == edges.shape[0]

    def test_degree_heterogeneity(self):
        edges, _ = degree_corrected_sbm(400, 4, avg_degree=8.0, homophily=0.8, rng=self.rng, power=1.3)
        g = Graph.from_edge_list(400, edges)
        # Pareto propensities should produce a heavy tail: max ≫ mean.
        assert g.degrees.max() > 3 * g.degrees.mean()


class TestFeatureModel:
    def test_class_topics_differ(self):
        rng = np.random.default_rng(1)
        labels = np.repeat([0, 1], 200)
        model = FeatureModel(num_features=40, topic_dims=10, p_on=0.4, p_noise=0.02)
        x = sample_features(labels, model, rng)
        class0_mean = x[labels == 0].mean(axis=0)
        class1_mean = x[labels == 1].mean(axis=0)
        # Class 0's topic block (dims 0..9) should be hotter for class 0.
        assert class0_mean[:10].mean() > class1_mean[:10].mean()

    def test_no_empty_feature_rows(self):
        rng = np.random.default_rng(2)
        labels = np.zeros(50, dtype=int)
        model = FeatureModel(num_features=30, topic_dims=2, p_on=0.01, p_noise=0.0)
        x = sample_features(labels, model, rng)
        assert (x.sum(axis=1) > 0).all()

    def test_binary_features(self):
        rng = np.random.default_rng(3)
        x = sample_features(np.zeros(20, dtype=int), FeatureModel(num_features=10), rng)
        assert set(np.unique(x)) <= {0.0, 1.0}


class TestAttributedGraph:
    def test_deterministic_under_seed(self):
        g1 = attributed_graph(100, 3, 20, 4.0, 0.8, seed=7)
        g2 = attributed_graph(100, 3, 20, 4.0, 0.8, seed=7)
        assert (g1.adjacency != g2.adjacency).nnz == 0
        np.testing.assert_allclose(g1.features, g2.features)
        np.testing.assert_array_equal(g1.labels, g2.labels)

    def test_different_seeds_differ(self):
        g1 = attributed_graph(100, 3, 20, 4.0, 0.8, seed=1)
        g2 = attributed_graph(100, 3, 20, 4.0, 0.8, seed=2)
        assert (g1.adjacency != g2.adjacency).nnz > 0

    def test_no_isolated_nodes(self):
        g = attributed_graph(150, 3, 20, 2.0, 0.8, seed=4)
        assert (g.degrees > 0).all()

    def test_valid_graph(self):
        g = attributed_graph(80, 4, 16, 5.0, 0.75, seed=5)
        g.validate()
        assert g.num_classes == 4


class TestRandomGraph:
    def test_shape_and_determinism(self):
        g1 = random_graph(25, 0.2, seed=9, num_features=4)
        g2 = random_graph(25, 0.2, seed=9, num_features=4)
        assert g1.num_nodes == 25
        assert g1.num_features == 4
        assert (g1.adjacency != g2.adjacency).nnz == 0

    def test_density_scales_with_prob(self):
        sparse = random_graph(100, 0.02, seed=1)
        dense = random_graph(100, 0.3, seed=1)
        assert dense.num_edges > sparse.num_edges
