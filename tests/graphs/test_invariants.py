"""Property-based invariants over adversarial graph shapes.

Hypothesis drives the scale-layer kernels (partitioning, block
extraction, normalization, chunked propagation) through arbitrary random
graphs plus the named pathological shapes — empty, single node, star,
disconnected — asserting the structural invariants the oracle tier pins
pointwise: CSR round-trips, exactly-once assignment, self-loops on every
normalized row, and chunk-size independence of ``A^L X``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Graph, normalized_adjacency
from repro.graphs.adjacency import propagated_features
from repro.scale import (
    bfs_partition,
    blockwise_propagated_features,
    gather_rows,
    grow_ego,
    true_degrees,
)

pytestmark = pytest.mark.scale


def random_edge_graph(n, num_edges, seed, num_features=3):
    rng = np.random.default_rng(seed)
    edges = {(int(rng.integers(n)), int(rng.integers(n)))
             for _ in range(num_edges)}
    edges = sorted(set((min(u, v), max(u, v)) for u, v in edges if u != v))
    return Graph.from_edge_list(
        n, edges, features=rng.normal(size=(n, num_features)))


graph_params = st.tuples(
    st.integers(1, 15), st.integers(0, 40), st.integers(0, 10_000))


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_normalized_rows_keep_self_loops(params):
    """Every row of A_n has a strictly positive diagonal (no dead rows)."""
    g = random_edge_graph(*params)
    a_n = normalized_adjacency(g.adjacency)
    assert np.all(a_n.diagonal() > 0.0)
    # Symmetric normalization of a symmetric graph stays symmetric.
    assert (a_n != a_n.T).nnz == 0


@settings(max_examples=40, deadline=None)
@given(graph_params, st.integers(1, 4))
def test_partition_exactly_once(params, num_parts):
    g = random_edge_graph(*params)
    part = bfs_partition(g.adjacency, num_parts)
    counts = np.bincount(part.assignment, minlength=part.num_parts)
    assert counts.sum() == g.num_nodes
    all_nodes = np.concatenate(part.parts) if part.parts else np.empty(0)
    np.testing.assert_array_equal(np.sort(all_nodes), np.arange(g.num_nodes))
    assert 0.0 <= part.edge_cut <= 1.0
    assert part.balance >= 1.0 or g.num_nodes < part.num_parts


@settings(max_examples=40, deadline=None)
@given(graph_params, st.integers(1, 4))
def test_partition_reassembles_csr(params, num_parts):
    g = random_edge_graph(*params)
    part = bfs_partition(g.adjacency, num_parts)
    assert (part.reassemble(g.adjacency) != g.adjacency).nnz == 0


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_gather_rows_covers_every_entry(params):
    g = random_edge_graph(*params)
    nodes = np.arange(g.num_nodes, dtype=np.int64)
    rows, cols, vals = gather_rows(g.adjacency, nodes)
    assert rows.size == g.adjacency.nnz
    rebuilt = np.zeros((g.num_nodes, g.num_nodes))
    rebuilt[rows, cols] = vals
    np.testing.assert_array_equal(rebuilt, g.adjacency.toarray())


@settings(max_examples=40, deadline=None)
@given(graph_params, st.integers(0, 3))
def test_grow_ego_monotone_and_sorted(params, hops):
    g = random_edge_graph(*params)
    seeds = np.array([0], dtype=np.int64)
    smaller = grow_ego(g.adjacency, seeds, hops)
    larger = grow_ego(g.adjacency, seeds, hops + 1)
    np.testing.assert_array_equal(smaller, np.sort(smaller))
    assert set(smaller.tolist()) <= set(larger.tolist())
    assert 0 in smaller


@settings(max_examples=30, deadline=None)
@given(graph_params, st.integers(0, 3), st.integers(1, 9))
def test_blockwise_propagation_chunk_independent(params, hops, chunk_rows):
    """A^L X is bit-identical to dense for any chunk size on any graph."""
    g = random_edge_graph(*params)
    dense = propagated_features(g, hops)
    row_bytes = g.features.shape[1] * 8
    blockwise = blockwise_propagated_features(
        g.adjacency, g.features, hops,
        chunk_budget_bytes=chunk_rows * row_bytes)
    assert np.array_equal(blockwise, dense)


@settings(max_examples=40, deadline=None)
@given(graph_params)
def test_true_degrees_match_graph_degrees(params):
    g = random_edge_graph(*params)
    np.testing.assert_array_equal(true_degrees(g.adjacency), g.degrees)


class TestNamedAdversarialShapes:
    """The shapes random generation rarely hits, pinned explicitly."""

    def shapes(self):
        rng = np.random.default_rng(0)
        single = Graph.from_edge_list(
            1, [], features=rng.normal(size=(1, 3)))
        edgeless = Graph.from_edge_list(
            5, [], features=rng.normal(size=(5, 3)))
        star = Graph.from_edge_list(
            7, [(0, i) for i in range(1, 7)],
            features=rng.normal(size=(7, 3)))
        disconnected = Graph.from_edge_list(
            6, [(0, 1), (1, 2), (3, 4)], features=rng.normal(size=(6, 3)))
        return [single, edgeless, star, disconnected]

    def test_partition_handles_all(self):
        for g in self.shapes():
            part = bfs_partition(g.adjacency, min(2, g.num_nodes))
            assert int(np.sum(part.sizes())) == g.num_nodes
            assert (part.reassemble(g.adjacency) != g.adjacency).nnz == 0

    def test_propagation_handles_all(self):
        for g in self.shapes():
            dense = propagated_features(g, 2)
            blockwise = blockwise_propagated_features(
                g.adjacency, g.features, 2, chunk_budget_bytes=24)
            assert np.array_equal(blockwise, dense)

    def test_sampler_handles_all(self):
        from repro.scale import NeighborSampler
        for g in self.shapes():
            block = NeighborSampler(g.adjacency, num_hops=2).sample(
                np.array([0]))
            np.testing.assert_array_equal(
                block.nodes, np.sort(g.ego_nodes(0, 2)))
