"""TU dataset analogues for the graph-classification task (Tab. IX)."""

import numpy as np
import pytest

from repro.graphs import load_tu_dataset, tu_dataset_names


class TestRegistry:
    def test_paper_datasets_present(self):
        assert {"nci1", "ptc_mr", "proteins"} == set(tu_dataset_names())

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_tu_dataset("mutag")


class TestGeneration:
    @pytest.fixture(scope="class")
    def nci1(self):
        return load_tu_dataset("nci1", seed=0)

    def test_counts(self, nci1):
        graphs, labels = nci1
        assert len(graphs) == labels.shape[0] == 200

    def test_all_graphs_valid(self, nci1):
        graphs, _ = nci1
        for g in graphs[:50]:
            g.validate()
            assert g.num_nodes >= 8

    def test_deterministic(self):
        g1, y1 = load_tu_dataset("ptc_mr", seed=3)
        g2, y2 = load_tu_dataset("ptc_mr", seed=3)
        np.testing.assert_array_equal(y1, y2)
        assert (g1[0].adjacency != g2[0].adjacency).nnz == 0

    def test_both_classes_present(self, nci1):
        _, labels = nci1
        assert set(np.unique(labels)) == {0, 1}

    def test_classes_structurally_distinguishable(self, nci1):
        """Class-1 graphs (community-heavy) are denser on average."""
        graphs, labels = nci1
        density = np.array([g.num_edges / g.num_nodes for g in graphs])
        assert density[labels == 1].mean() > density[labels == 0].mean()

    def test_degree_features_one_hot(self, nci1):
        graphs, _ = nci1
        g = graphs[0]
        assert set(np.unique(g.features)) <= {0.0, 1.0}
        np.testing.assert_allclose(g.features.sum(axis=1), 1.0)
