"""Disjoint unions (graph-classification batching)."""

import numpy as np
import pytest

from repro.graphs import Graph, disjoint_union, split_union_embeddings
from repro.nn import GCN


def make_graphs():
    g1 = Graph.from_edge_list(3, [(0, 1), (1, 2)], features=np.ones((3, 4)),
                              labels=np.array([0, 0, 0]))
    g2 = Graph.from_edge_list(2, [(0, 1)], features=np.zeros((2, 4)),
                              labels=np.array([1, 1]))
    return [g1, g2]


class TestDisjointUnion:
    def test_counts(self):
        union, offsets = disjoint_union(make_graphs())
        assert union.num_nodes == 5
        assert union.num_edges == 3
        np.testing.assert_array_equal(offsets, [0, 3, 5])

    def test_no_cross_graph_edges(self):
        union, offsets = disjoint_union(make_graphs())
        for u, v in union.edge_array():
            # both endpoints in the same block
            block_u = np.searchsorted(offsets, u, side="right")
            block_v = np.searchsorted(offsets, v, side="right")
            assert block_u == block_v

    def test_features_and_labels_concatenate(self):
        union, _ = disjoint_union(make_graphs())
        assert union.features[:3].sum() == 12
        assert union.features[3:].sum() == 0
        np.testing.assert_array_equal(union.labels, [0, 0, 0, 1, 1])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            disjoint_union([])

    def test_feature_dim_mismatch_rejected(self):
        g1 = Graph.from_edge_list(2, [(0, 1)], features=np.ones((2, 3)))
        g2 = Graph.from_edge_list(2, [(0, 1)], features=np.ones((2, 4)))
        with pytest.raises(ValueError, match="feature dimensions"):
            disjoint_union([g1, g2])

    def test_union_forward_equals_per_graph_forward(self):
        """The point of the construction: block-diagonal GCN == per-graph GCN."""
        graphs = make_graphs()
        union, offsets = disjoint_union(graphs)
        encoder = GCN(4, 8, 4, seed=0)
        union_blocks = split_union_embeddings(encoder.embed(union), offsets)
        for graph, block in zip(graphs, union_blocks):
            np.testing.assert_allclose(encoder.embed(graph), block, atol=1e-10)


class TestSplitUnionEmbeddings:
    def test_row_count_validated(self):
        with pytest.raises(ValueError):
            split_union_embeddings(np.zeros((4, 2)), np.array([0, 3, 5]))

    def test_blocks_cover_all_rows(self):
        blocks = split_union_embeddings(np.arange(10).reshape(5, 2), np.array([0, 3, 5]))
        assert blocks[0].shape == (3, 2)
        assert blocks[1].shape == (2, 2)


def _empty_graph(num_features=4):
    return Graph.from_edge_list(0, [], features=np.zeros((0, num_features)),
                                labels=np.zeros(0, dtype=np.int64))


class TestEmptyGraphUnions:
    """Regression tests: zero-node members and degenerate offsets.

    The serving microbatcher block-diagonals ego subgraphs with the same
    machinery, so silent mis-slicing here would cross-assign embeddings
    between queries.
    """

    def test_empty_member_preserves_positions(self):
        g1, g2 = make_graphs()
        union, offsets = disjoint_union([g1, _empty_graph(), g2])
        assert union.num_nodes == 5
        np.testing.assert_array_equal(offsets, [0, 3, 3, 5])
        blocks = split_union_embeddings(union.features, offsets)
        assert [b.shape[0] for b in blocks] == [3, 0, 2]
        np.testing.assert_array_equal(blocks[0], g1.features)
        np.testing.assert_array_equal(blocks[2], g2.features)

    def test_all_empty_union(self):
        union, offsets = disjoint_union([_empty_graph(), _empty_graph()])
        assert union.num_nodes == 0
        assert union.adjacency.shape == (0, 0)
        np.testing.assert_array_equal(offsets, [0, 0, 0])
        blocks = split_union_embeddings(np.zeros((0, 7)), offsets)
        assert [b.shape for b in blocks] == [(0, 7), (0, 7)]

    def test_single_empty_union(self):
        union, offsets = disjoint_union([_empty_graph()])
        assert union.num_nodes == 0
        np.testing.assert_array_equal(offsets, [0, 0])

    def test_empty_member_forward_consistent(self):
        g1, g2 = make_graphs()
        union, offsets = disjoint_union([g1, _empty_graph(), g2])
        encoder = GCN(4, 8, 4, seed=0)
        blocks = split_union_embeddings(encoder.embed(union), offsets)
        np.testing.assert_allclose(encoder.embed(g1), blocks[0], atol=1e-10)
        assert blocks[1].shape == (0, 4)
        np.testing.assert_allclose(encoder.embed(g2), blocks[2], atol=1e-10)


class TestOffsetValidation:
    """Malformed offsets must fail loudly, never mis-assign rows."""

    def test_decreasing_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            split_union_embeddings(np.zeros((5, 2)), np.array([0, 4, 3, 5]))

    def test_nonzero_start_rejected(self):
        with pytest.raises(ValueError, match="start at 0"):
            split_union_embeddings(np.zeros((5, 2)), np.array([1, 3, 5]))

    def test_too_short_offsets_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            split_union_embeddings(np.zeros((5, 2)), np.array([5]))

    def test_two_dimensional_offsets_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            split_union_embeddings(np.zeros((5, 2)), np.zeros((2, 2)))


class TestEgoSubgraphEdgeCases:
    """Ego extraction cases the inductive serving path leans on."""

    def test_isolated_node_ego_is_singleton(self):
        graph = Graph.from_edge_list(4, [(0, 1), (1, 2)],
                                     features=np.eye(4))
        ego, center = graph.ego_subgraph(3, hops=2)
        assert ego.num_nodes == 1
        assert center == 0
        assert ego.num_edges == 0
        np.testing.assert_array_equal(ego.features, graph.features[3:4])

    def test_radius_larger_than_component_clamps(self):
        graph = Graph.from_edge_list(6, [(0, 1), (1, 2), (3, 4)],
                                     features=np.eye(6))
        ego, center = graph.ego_subgraph(0, hops=10)
        # Only the 3-node component, never the disconnected 3-4 pair.
        assert ego.num_nodes == 3
        assert center == 0

    def test_ego_relabeling_preserves_edges(self):
        graph = Graph.from_edge_list(5, [(0, 4), (4, 2), (2, 1)],
                                     features=np.eye(5))
        ego, center = graph.ego_subgraph(4, hops=1)
        # nodes {0, 2, 4} relabeled to {0, 1, 2}; edges 0-4 and 4-2 survive.
        assert ego.num_nodes == 3
        assert center == 2
        assert ego.has_edge(0, 2) and ego.has_edge(1, 2)
        assert not ego.has_edge(0, 1)
