"""Disjoint unions (graph-classification batching)."""

import numpy as np
import pytest

from repro.graphs import Graph, disjoint_union, split_union_embeddings
from repro.nn import GCN


def make_graphs():
    g1 = Graph.from_edge_list(3, [(0, 1), (1, 2)], features=np.ones((3, 4)),
                              labels=np.array([0, 0, 0]))
    g2 = Graph.from_edge_list(2, [(0, 1)], features=np.zeros((2, 4)),
                              labels=np.array([1, 1]))
    return [g1, g2]


class TestDisjointUnion:
    def test_counts(self):
        union, offsets = disjoint_union(make_graphs())
        assert union.num_nodes == 5
        assert union.num_edges == 3
        np.testing.assert_array_equal(offsets, [0, 3, 5])

    def test_no_cross_graph_edges(self):
        union, offsets = disjoint_union(make_graphs())
        for u, v in union.edge_array():
            # both endpoints in the same block
            block_u = np.searchsorted(offsets, u, side="right")
            block_v = np.searchsorted(offsets, v, side="right")
            assert block_u == block_v

    def test_features_and_labels_concatenate(self):
        union, _ = disjoint_union(make_graphs())
        assert union.features[:3].sum() == 12
        assert union.features[3:].sum() == 0
        np.testing.assert_array_equal(union.labels, [0, 0, 0, 1, 1])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            disjoint_union([])

    def test_feature_dim_mismatch_rejected(self):
        g1 = Graph.from_edge_list(2, [(0, 1)], features=np.ones((2, 3)))
        g2 = Graph.from_edge_list(2, [(0, 1)], features=np.ones((2, 4)))
        with pytest.raises(ValueError, match="feature dimensions"):
            disjoint_union([g1, g2])

    def test_union_forward_equals_per_graph_forward(self):
        """The point of the construction: block-diagonal GCN == per-graph GCN."""
        graphs = make_graphs()
        union, offsets = disjoint_union(graphs)
        encoder = GCN(4, 8, 4, seed=0)
        union_blocks = split_union_embeddings(encoder.embed(union), offsets)
        for graph, block in zip(graphs, union_blocks):
            np.testing.assert_allclose(encoder.embed(graph), block, atol=1e-10)


class TestSplitUnionEmbeddings:
    def test_row_count_validated(self):
        with pytest.raises(ValueError):
            split_union_embeddings(np.zeros((4, 2)), np.array([0, 3, 5]))

    def test_blocks_cover_all_rows(self):
        blocks = split_union_embeddings(np.arange(10).reshape(5, 2), np.array([0, 3, 5]))
        assert blocks[0].shape == (3, 2)
        assert blocks[1].shape == (2, 2)
