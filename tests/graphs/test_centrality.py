"""Centrality measures: closed-form checks on canonical graphs."""

import numpy as np
import pytest

from repro.graphs import (
    Graph,
    centrality,
    degree_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)


class TestDegreeCentrality:
    def test_log_degree_formula(self, star_graph):
        out = degree_centrality(star_graph)
        np.testing.assert_allclose(out, np.log(star_graph.degrees + 1.0))

    def test_hub_has_max(self, star_graph):
        assert degree_centrality(star_graph).argmax() == 0

    def test_isolated_node_zero(self, isolated_node_graph):
        assert degree_centrality(isolated_node_graph)[3] == 0.0


class TestPageRank:
    def test_sums_to_one(self, small_er_graph):
        pr = pagerank_centrality(small_er_graph)
        assert pr.sum() == pytest.approx(1.0, abs=1e-6)

    def test_uniform_on_regular_graph(self, triangle_graph):
        pr = pagerank_centrality(triangle_graph)
        np.testing.assert_allclose(pr, 1 / 3, atol=1e-6)

    def test_hub_ranks_highest(self, star_graph):
        pr = pagerank_centrality(star_graph)
        assert pr.argmax() == 0

    def test_dangling_nodes_handled(self, isolated_node_graph):
        pr = pagerank_centrality(isolated_node_graph)
        assert np.isfinite(pr).all()
        assert pr.sum() == pytest.approx(1.0, abs=1e-6)

    def test_empty_graph(self):
        g = Graph.from_edge_list(0, [], features=np.zeros((0, 1)))
        assert pagerank_centrality(g).shape == (0,)


class TestEigenvector:
    def test_uniform_on_complete_graph(self, triangle_graph):
        ev = eigenvector_centrality(triangle_graph)
        np.testing.assert_allclose(ev, ev[0], atol=1e-6)

    def test_hub_highest_on_star(self, star_graph):
        ev = eigenvector_centrality(star_graph)
        assert ev.argmax() == 0

    def test_nonnegative(self, small_er_graph):
        assert (eigenvector_centrality(small_er_graph) >= 0).all()


class TestDispatch:
    def test_by_name(self, star_graph):
        np.testing.assert_allclose(centrality(star_graph, "degree"), degree_centrality(star_graph))

    def test_unknown_name_rejected(self, star_graph):
        with pytest.raises(ValueError, match="unknown centrality"):
            centrality(star_graph, "betweenness")
