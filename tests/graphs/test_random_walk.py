"""Random walks: validity, bias behaviour, skip-gram pair extraction."""

import numpy as np
import pytest

from repro.graphs import node2vec_walks, skip_gram_pairs, uniform_random_walks


def assert_walks_follow_edges(graph, walks):
    """Every consecutive pair in a walk is an edge (or a dead-end repeat)."""
    for walk in walks:
        for a, b in zip(walk[:-1], walk[1:]):
            if a != b:
                assert graph.has_edge(int(a), int(b))


class TestUniformWalks:
    def test_shapes(self, small_er_graph, rng):
        walks = uniform_random_walks(small_er_graph, walks_per_node=2, walk_length=5, rng=rng)
        assert walks.shape == (60, 5)

    def test_every_node_starts_walks(self, small_er_graph, rng):
        walks = uniform_random_walks(small_er_graph, walks_per_node=1, walk_length=3, rng=rng)
        np.testing.assert_array_equal(np.sort(walks[:, 0]), np.arange(30))

    def test_walks_follow_edges(self, small_er_graph, rng):
        walks = uniform_random_walks(small_er_graph, walks_per_node=1, walk_length=6, rng=rng)
        assert_walks_follow_edges(small_er_graph, walks)

    def test_dead_end_pads_with_last_node(self, isolated_node_graph, rng):
        walks = uniform_random_walks(isolated_node_graph, walks_per_node=1, walk_length=4, rng=rng)
        isolated_walk = walks[3]
        np.testing.assert_array_equal(isolated_walk, [3, 3, 3, 3])

    def test_walk_length_validated(self, small_er_graph, rng):
        with pytest.raises(ValueError):
            uniform_random_walks(small_er_graph, 1, 0, rng)


class TestNode2VecWalks:
    def test_walks_follow_edges(self, small_er_graph, rng):
        walks = node2vec_walks(small_er_graph, 1, 6, rng, p=0.5, q=2.0)
        assert_walks_follow_edges(small_er_graph, walks)

    def test_low_p_returns_more(self, path_graph):
        """Small p (return parameter) makes walks bounce back more often."""
        def count_returns(p):
            rng = np.random.default_rng(0)
            walks = node2vec_walks(path_graph, 50, 6, rng, p=p, q=1.0)
            returns = 0
            for walk in walks:
                for i in range(2, len(walk)):
                    if walk[i] == walk[i - 2] and walk[i] != walk[i - 1]:
                        returns += 1
            return returns

        assert count_returns(0.1) > count_returns(10.0)

    def test_params_validated(self, path_graph, rng):
        with pytest.raises(ValueError):
            node2vec_walks(path_graph, 1, 3, rng, p=0.0)
        with pytest.raises(ValueError):
            node2vec_walks(path_graph, 1, 3, rng, q=-1.0)


class TestSkipGramPairs:
    def test_pairs_within_window(self):
        walks = np.array([[0, 1, 2, 3]])
        pairs = set(skip_gram_pairs(walks, window=1))
        assert pairs == {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}

    def test_window_two_includes_skips(self):
        walks = np.array([[0, 1, 2]])
        pairs = set(skip_gram_pairs(walks, window=2))
        assert (0, 2) in pairs and (2, 0) in pairs

    def test_self_pairs_skipped(self):
        walks = np.array([[5, 5, 5]])
        assert list(skip_gram_pairs(walks, window=2)) == []

    def test_window_validated(self):
        with pytest.raises(ValueError):
            list(skip_gram_pairs(np.array([[0, 1]]), window=0))
