"""Personalized PageRank diffusion (MVGRL's second view)."""

import numpy as np
import pytest

from repro.graphs import ppr_diffusion_graph, ppr_matrix, topk_sparsify


class TestPPRMatrix:
    def test_exact_matches_power_series(self, small_er_graph):
        exact = ppr_matrix(small_er_graph, alpha=0.2, exact=True)
        series = ppr_matrix(small_er_graph, alpha=0.2, exact=False, iterations=300)
        np.testing.assert_allclose(exact, series, atol=1e-6)

    def test_symmetric_for_symmetric_normalization(self, small_er_graph):
        mat = ppr_matrix(small_er_graph, alpha=0.15)
        np.testing.assert_allclose(mat, mat.T, atol=1e-10)

    def test_diagonal_dominates_distant_nodes(self, path_graph):
        mat = ppr_matrix(path_graph, alpha=0.15)
        # Restart mass keeps a node's own score above a far node's score.
        assert mat[0, 0] > mat[0, 4]

    def test_alpha_validated(self, path_graph):
        with pytest.raises(ValueError):
            ppr_matrix(path_graph, alpha=0.0)
        with pytest.raises(ValueError):
            ppr_matrix(path_graph, alpha=1.0)


class TestTopKSparsify:
    def test_row_degree_at_least_k(self):
        rng = np.random.default_rng(0)
        mat = rng.random((10, 10))
        adj = topk_sparsify(mat, k=3)
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        # Symmetrization can only add edges beyond the k chosen per row.
        assert (degrees >= 3).all()

    def test_output_is_symmetric_no_loops(self):
        rng = np.random.default_rng(1)
        adj = topk_sparsify(rng.random((8, 8)), k=2)
        assert abs(adj - adj.T).max() == 0
        assert adj.diagonal().sum() == 0

    def test_k_validated(self):
        with pytest.raises(ValueError):
            topk_sparsify(np.eye(3), k=0)

    def test_k_larger_than_n_caps(self):
        rng = np.random.default_rng(2)
        adj = topk_sparsify(rng.random((4, 4)), k=100)
        assert adj.shape == (4, 4)


class TestDiffusionGraph:
    def test_produces_valid_graph(self, small_er_graph):
        view = ppr_diffusion_graph(small_er_graph, top_k=4)
        view.validate()
        assert view.num_nodes == small_er_graph.num_nodes

    def test_features_preserved(self, small_er_graph):
        view = ppr_diffusion_graph(small_er_graph, top_k=4)
        np.testing.assert_allclose(view.features, small_er_graph.features)

    def test_structure_differs_from_original(self, small_er_graph):
        view = ppr_diffusion_graph(small_er_graph, top_k=4)
        # Diffusion both adds (2-hop shortcuts) and drops (weak) edges.
        assert (view.adjacency != small_er_graph.adjacency).nnz > 0
