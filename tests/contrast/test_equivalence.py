"""Seed-for-seed equivalence of the contrast-layer refactor.

The reference trajectories below were captured on the pre-refactor
implementations (inline per-method losses) with the exact fixture graph
and hyperparameters used here.  Every method composed through the
contrast layer under its default objective × ``all`` sampler must
reproduce them to 1e-8 — the refactor moves code, it must not move
floats.
"""

import numpy as np
import pytest

from repro.baselines import get_method

KWARGS = dict(epochs=4, embedding_dim=8, hidden_dim=16, seed=0)

# Captured from the pre-refactor tree (inline losses), cora seed=3 scale=0.25.
REFERENCE_LOSSES = {
    "grace": [5.654061706092769, 5.662198389569422, 5.731176977691955,
              5.559432988506691],
    "gca": [5.563426478780737, 5.237736956945545, 5.363856772721078,
            5.149797382128668],
    "graphcl": [5.484124130696759, 5.168925039638889, 5.232045040767423,
                4.960180782272223],
    "adgcl": [5.4492737022299576, 5.1750499111370765, 5.147970340125212,
              4.9733045627030394],
    "dgi": [0.6958905993155399, 0.6917259399871621, 0.6860784055432398,
            0.678622254265899],
    "mvgrl": [0.6993837530484611, 0.6921306700301657, 0.6894325009294235,
              0.6841757081627338],
    "bgrl": [2.4809346728606783, 2.017810511096933, 1.6607712891647664,
             1.389215978681448],
    "afgrl": [2.360344507365685, 1.4420933874505715, 1.1333721204987512,
              0.8873624575865211],
    "e2gcl": [4.547301675400685, 4.213976768752556, 4.001879156440164,
              3.8804190927571094],
}

# E2GCL's Eq. 5 branch: inline sample_negative_indices -> UniformK mapping.
REFERENCE_EUCLIDEAN = [-0.4779594983735131, -1.00793731258055,
                       -1.273212794999344, -1.586896113308279]


@pytest.mark.parametrize("name", sorted(REFERENCE_LOSSES))
def test_method_reproduces_pre_refactor_losses(name, tiny_cora):
    method = get_method(name, **KWARGS)
    method.fit(tiny_cora)
    np.testing.assert_allclose(
        method.info.losses, REFERENCE_LOSSES[name], atol=1e-8,
        err_msg=f"{name}: contrast-layer refactor changed the loss sequence",
    )


def test_e2gcl_euclidean_reproduces_pre_refactor_losses(tiny_cora):
    method = get_method("e2gcl", loss="euclidean", **KWARGS)
    method.fit(tiny_cora)
    np.testing.assert_allclose(
        method.info.losses, REFERENCE_EUCLIDEAN, atol=1e-8,
        err_msg="euclidean: UniformK mapping changed the RNG draw",
    )


def test_legacy_loss_shims_are_reexports(tiny_cora):
    """core.losses keeps its public surface, delegating to repro.contrast."""
    from repro.contrast import negatives as contrast_negatives
    from repro.core import losses as core_losses

    assert (
        core_losses.sample_negative_indices
        is contrast_negatives.sample_negative_indices
    )
