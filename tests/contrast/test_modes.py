"""Modes: L2L sampler threading + RNG discipline, G2L helpers."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.contrast import (
    G2LContrast,
    L2LContrast,
    UniformK,
    bilinear_scores,
    get_negative_sampler,
    get_objective,
    graph_summary,
)


def _views(m=12, d=6, seed=0):
    rng = np.random.default_rng(seed)
    return (
        Tensor(rng.normal(size=(m, d)), requires_grad=True),
        Tensor(rng.normal(size=(m, d)), requires_grad=True),
    )


class TestL2LContrast:
    def test_default_sampler_is_all_pairs(self):
        contrast = L2LContrast(get_objective("infonce"))
        assert contrast.sampler.name == "all"

    def test_all_pairs_composition_consumes_no_rng(self):
        """Composing with the dense sampler must leave the RNG untouched —
        the seed-equivalence contract of the refactor."""
        z1, z2 = _views()
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        L2LContrast(get_objective("infonce")).loss(z1, z2, rng=rng)
        assert rng.bit_generator.state == before

    def test_negative_free_objective_skips_sampling_entirely(self):
        """A bootstrap loss with a uniform sampler still draws nothing:
        uses_negatives gates the sampler call."""
        z1, z2 = _views()
        rng = np.random.default_rng(6)
        before = rng.bit_generator.state
        contrast = L2LContrast(get_objective("bootstrap"), UniformK(k=4))
        contrast.loss(z1, z2, rng=rng)
        assert rng.bit_generator.state == before

    def test_uniform_sampler_draws_once_per_loss(self):
        z1, z2 = _views()
        rng = np.random.default_rng(7)
        contrast = L2LContrast(get_objective("infonce"), UniformK(k=4))
        before = rng.bit_generator.state
        contrast.loss(z1, z2, rng=rng)
        assert rng.bit_generator.state != before

    def test_sampled_loss_differs_from_dense(self):
        z1, z2 = _views()
        dense = float(L2LContrast(get_objective("infonce")).loss(z1, z2).item())
        sampled = float(
            L2LContrast(get_objective("infonce"), UniformK(k=3))
            .loss(z1, z2, rng=np.random.default_rng(0))
            .item()
        )
        assert dense != sampled

    def test_hard_sampler_reads_embeddings(self):
        z1, z2 = _views()
        contrast = L2LContrast(
            get_objective("margin"), get_negative_sampler("hard", k=3)
        )
        loss = contrast.loss(z1, z2)
        loss.backward()
        assert z1.grad is not None and np.isfinite(float(loss.item()))

    def test_weights_forwarded(self):
        z1, z2 = _views(m=8)
        contrast = L2LContrast(get_objective("infonce"))
        uniform = float(contrast.loss(z1, z2).item())
        skewed = float(
            contrast.loss(z1, z2, weights=np.linspace(1, 9, 8)).item()
        )
        assert uniform != skewed


class TestG2LContrast:
    def test_routes_to_score_loss(self):
        rng = np.random.default_rng(1)
        pos = Tensor(rng.normal(size=6))
        neg = Tensor(rng.normal(size=6))
        obj = get_objective("jsd")
        got = G2LContrast(obj).loss(pos, neg)
        want = obj.score_loss(pos, neg)
        assert float(got.item()) == float(want.item())


class TestHelpers:
    def test_graph_summary_shape_and_range(self):
        h = Tensor(np.random.default_rng(2).normal(size=(10, 4)))
        s = graph_summary(h)
        assert s.shape == (1, 4)
        assert np.all(s.data > 0) and np.all(s.data < 1)

    def test_bilinear_scores_matches_manual(self):
        rng = np.random.default_rng(3)
        h = Tensor(rng.normal(size=(7, 4)))
        w = Tensor(rng.normal(size=(4, 4)))
        s = graph_summary(h)
        scores = bilinear_scores(h, w, s)
        assert scores.shape == (7,)
        manual = (h.data @ w.data) @ s.data.T
        np.testing.assert_allclose(scores.data, manual.ravel(), rtol=1e-12)

    def test_bilinear_scores_differentiable(self):
        rng = np.random.default_rng(4)
        h = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        s = graph_summary(h)
        loss = ops.sum(bilinear_scores(h, w, s))
        loss.backward()
        assert h.grad is not None and w.grad is not None
