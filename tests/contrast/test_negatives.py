"""Negative samplers: invariants, RNG discipline, and uniformity.

The chi-square test pins the statistical contract of the shifted-draw
construction in ``sample_negative_indices``: conditioned on the anchor,
draws are exactly uniform over the ``m-1`` non-anchor rows.
"""

import numpy as np
import pytest
from scipy import stats

from repro.contrast import (
    AllPairs,
    HardTopK,
    UniformK,
    available_negative_samplers,
    get_negative_sampler,
    sample_negative_indices,
)


class TestSampleNegativeIndices:
    def test_shape(self):
        rng = np.random.default_rng(0)
        negs = sample_negative_indices(10, 4, rng)
        assert negs.shape == (10, 4)

    def test_never_returns_the_anchor(self):
        """The shifted-draw construction guarantees neg != anchor."""
        rng = np.random.default_rng(1)
        for m in (2, 3, 7, 50):
            negs = sample_negative_indices(m, 6, rng)
            anchors = np.arange(m)[:, None]
            assert np.all(negs != anchors)
            assert negs.min() >= 0 and negs.max() < m

    def test_rejects_degenerate_inputs(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ValueError):
            sample_negative_indices(1, 3, rng)
        with pytest.raises(ValueError):
            sample_negative_indices(5, 0, rng)

    def test_uniform_over_non_anchor_rows_chi_square(self):
        """Conditioned on the anchor, the draw is uniform over the other
        m-1 rows: a chi-square goodness-of-fit test on pooled per-anchor
        histograms must not reject at the 1% level."""
        m, k, rounds = 8, 16, 400
        rng = np.random.default_rng(12345)
        counts = np.zeros((m, m), dtype=np.int64)
        for _ in range(rounds):
            negs = sample_negative_indices(m, k, rng)
            for anchor in range(m):
                counts[anchor] += np.bincount(negs[anchor], minlength=m)
        assert np.all(np.diag(counts) == 0)
        # Per anchor: k*rounds draws over m-1 equiprobable cells.
        expected = k * rounds / (m - 1)
        off_diag = counts[~np.eye(m, dtype=bool)].reshape(m, m - 1)
        chi2_stat = ((off_diag - expected) ** 2 / expected).sum()
        dof = m * (m - 2)  # m anchors × (m-1 cells − 1) each
        critical = stats.chi2.ppf(0.99, dof)
        assert chi2_stat < critical, (
            f"chi2={chi2_stat:.1f} exceeds the 1% critical value "
            f"{critical:.1f} (dof={dof}): draws are not uniform"
        )

    def test_boundary_shift_is_not_biased(self):
        """Regression for the >= shift: the cell just above the anchor must
        not be double-weighted (a strict > would fold two draws into it)."""
        m, k, rounds = 4, 32, 500
        rng = np.random.default_rng(7)
        counts = np.zeros(m, dtype=np.int64)
        for _ in range(rounds):
            negs = sample_negative_indices(m, k, rng)
            counts += np.bincount(negs[0], minlength=m)
        # Anchor 0: cells 1, 2, 3 each expect k*rounds/3.
        expected = k * rounds / (m - 1)
        assert counts[0] == 0
        assert np.all(np.abs(counts[1:] - expected) < 6 * np.sqrt(expected))


class TestAllPairs:
    def test_returns_none_and_consumes_no_rng(self):
        """Load-bearing for seed equivalence: the dense default must leave
        the method RNG stream untouched."""
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        assert AllPairs().sample(10, rng=rng) is None
        assert rng.bit_generator.state == before

    def test_works_without_rng(self):
        assert AllPairs().sample(5) is None


class TestUniformK:
    def test_caps_k_at_m_minus_one(self):
        rng = np.random.default_rng(4)
        negs = UniformK(k=64).sample(5, rng=rng)
        assert negs.shape == (5, 4)

    def test_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            UniformK(k=2).sample(5)

    def test_matches_legacy_draw(self):
        """UniformK is the packaged form of the historical inline sampling:
        same RNG, same k-capping, same draws."""
        negs_a = UniformK(k=8).sample(6, rng=np.random.default_rng(9))
        negs_b = sample_negative_indices(6, min(8, 6 - 1), np.random.default_rng(9))
        np.testing.assert_array_equal(negs_a, negs_b)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            UniformK(k=0)


class TestHardTopK:
    def _embeddings(self, m=20, d=6, seed=11):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(m, d)), rng.normal(size=(m, d))

    def test_selects_most_similar_non_positive(self):
        z1, z2 = self._embeddings()
        k = 4
        negs = HardTopK(k=k).sample(20, z1=z1, z2=z2)
        a = z1 / np.linalg.norm(z1, axis=1, keepdims=True)
        b = z2 / np.linalg.norm(z2, axis=1, keepdims=True)
        sims = a @ b.T
        np.fill_diagonal(sims, -np.inf)
        for row in range(20):
            expected = set(np.argsort(sims[row])[-k:])
            assert set(negs[row]) == expected
            assert row not in negs[row]

    def test_hardest_first_ordering(self):
        z1, z2 = self._embeddings(seed=13)
        negs = HardTopK(k=5).sample(20, z1=z1, z2=z2)
        a = z1 / np.linalg.norm(z1, axis=1, keepdims=True)
        b = z2 / np.linalg.norm(z2, axis=1, keepdims=True)
        sims = a @ b.T
        row_sims = np.take_along_axis(sims, negs, axis=1)
        assert np.all(np.diff(row_sims, axis=1) <= 1e-12)

    def test_chunked_scan_matches_single_chunk(self):
        z1, z2 = self._embeddings(m=30, seed=17)
        full = HardTopK(k=3, chunk_rows=4096).sample(30, z1=z1, z2=z2)
        chunked = HardTopK(k=3, chunk_rows=7).sample(30, z1=z1, z2=z2)
        np.testing.assert_array_equal(full, chunked)

    def test_requires_embeddings(self):
        with pytest.raises(ValueError, match="embeddings"):
            HardTopK(k=2).sample(5, rng=np.random.default_rng(0))


class TestRegistry:
    def test_available(self):
        assert available_negative_samplers() == ["all", "hard", "uniform"]

    def test_get_by_name(self):
        assert isinstance(get_negative_sampler("all"), AllPairs)
        assert isinstance(get_negative_sampler("ALL", k=9), AllPairs)
        sampler = get_negative_sampler("uniform", k=9)
        assert isinstance(sampler, UniformK) and sampler.k == 9
        hard = get_negative_sampler("hard", k=3)
        assert isinstance(hard, HardTopK) and hard.k == 3

    def test_defaults_without_k(self):
        assert get_negative_sampler("uniform").k == 64

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown negative sampler"):
            get_negative_sampler("nope")
