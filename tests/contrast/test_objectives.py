"""Objective semantics: registry, dense-vs-sampled consistency, score forms."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional
from repro.contrast import (
    BarlowTwins,
    BootstrapCosine,
    Euclidean,
    InfoNCE,
    available_objectives,
    get_objective,
    sample_negative_indices,
)


def _views(m=24, d=8, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=(m, d))
    z1 = base + scale * rng.normal(size=(m, d)) * 0.1
    z2 = base + scale * rng.normal(size=(m, d)) * 0.1
    return Tensor(z1, requires_grad=True), Tensor(z2, requires_grad=True)


class TestRegistry:
    def test_available(self):
        assert available_objectives() == [
            "barlow", "bootstrap", "euclidean", "infonce", "jsd", "margin",
        ]

    def test_kwargs_filtered_to_constructor(self):
        """A shared hyperparameter bag works for every objective."""
        bag = dict(temperature=0.3, margin=0.7, lambda_offdiag=0.01)
        assert get_objective("infonce", **bag).temperature == 0.3
        assert get_objective("margin", **bag).margin == 0.7
        assert get_objective("barlow", **bag).lambda_offdiag == 0.01
        get_objective("bootstrap", **bag)  # accepts none of them: no error

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown objective"):
            get_objective("ntxent")

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            InfoNCE(temperature=0.0)
        with pytest.raises(ValueError):
            get_objective("margin", margin=-1.0)
        with pytest.raises(ValueError):
            BarlowTwins(lambda_offdiag=-0.1)


class TestInfoNCE:
    def test_dense_matches_legacy_shim(self):
        from repro.core.losses import infonce_loss

        z1, z2 = _views()
        a = InfoNCE(temperature=0.4).pair_loss(z1, z2)
        b = infonce_loss(z1, z2, temperature=0.4)
        assert float(a.item()) == float(b.item())

    def test_sampled_approaches_dense_as_k_grows(self):
        """With k = m-1 distinct negatives the subsampled denominator sees
        the same pair set as the dense loss (up to the positive's presence),
        so the values must be close; small k is a coarser estimate."""
        z1, z2 = _views(m=16)
        dense = float(InfoNCE().pair_loss(z1, z2).item())
        m = 16
        all_neg = np.array([[j for j in range(m) if j != i] for i in range(m)])
        full = float(InfoNCE().pair_loss(z1, z2, negatives=all_neg).item())
        assert abs(full - dense) < 0.1
        small = float(
            InfoNCE().pair_loss(
                z1, z2,
                negatives=sample_negative_indices(m, 2, np.random.default_rng(0)),
            ).item()
        )
        # Fewer denominator terms -> smaller logsumexp -> smaller loss.
        assert small < full + 1e-9

    def test_asymmetric_halves_the_work(self):
        z1, z2 = _views()
        sym = InfoNCE(symmetric=True).pair_loss(z1, z2)
        one = InfoNCE(symmetric=False).pair_loss(z1, z2)
        other = InfoNCE(symmetric=False).pair_loss(z2, z1)
        np.testing.assert_allclose(
            float(sym.item()),
            0.5 * (float(one.item()) + float(other.item())),
            rtol=1e-12,
        )

    def test_score_loss_prefers_separated_scores(self):
        obj = InfoNCE()
        good = obj.score_loss(Tensor(np.full(4, 3.0)), Tensor(np.full(6, -3.0)))
        bad = obj.score_loss(Tensor(np.full(4, -3.0)), Tensor(np.full(6, 3.0)))
        assert float(good.item()) < float(bad.item())

    def test_weight_validation(self):
        z1, z2 = _views(m=6)
        with pytest.raises(ValueError, match="expected 6 weights"):
            InfoNCE().pair_loss(z1, z2, weights=np.ones(5))
        with pytest.raises(ValueError, match="positive sum"):
            InfoNCE().pair_loss(z1, z2, weights=np.zeros(6))

    def test_negatives_shape_validation(self):
        z1, z2 = _views(m=6)
        with pytest.raises(ValueError, match="num_anchors"):
            InfoNCE().pair_loss(z1, z2, negatives=np.zeros((3, 2), dtype=int))


class TestJSD:
    def test_score_loss_is_bce(self):
        """On scores, JSD is exactly BCE over [pos; neg] with 1/0 targets —
        the historical DGI discriminator loss."""
        rng = np.random.default_rng(3)
        pos = Tensor(rng.normal(size=5))
        neg = Tensor(rng.normal(size=5))
        got = get_objective("jsd").score_loss(pos, neg)
        from repro.autograd import ops

        logits = ops.concat([pos, neg], axis=0)
        targets = np.concatenate([np.ones(5), np.zeros(5)])
        want = functional.binary_cross_entropy_with_logits(logits, targets)
        assert float(got.item()) == float(want.item())

    def test_pair_loss_sampled_and_dense_agree_in_sign(self):
        z1, z2 = _views(m=12)
        obj = get_objective("jsd")
        dense = float(obj.pair_loss(z1, z2).item())
        sampled = float(
            obj.pair_loss(
                z1, z2,
                negatives=sample_negative_indices(12, 6, np.random.default_rng(1)),
            ).item()
        )
        assert dense > 0 and sampled > 0


class TestBarlowTwins:
    def test_identical_views_minimize_invariance_term(self):
        rng = np.random.default_rng(5)
        z = Tensor(rng.normal(size=(32, 6)))
        same = float(BarlowTwins().pair_loss(z, z).item())
        other = Tensor(rng.normal(size=(32, 6)))
        different = float(BarlowTwins().pair_loss(z, other).item())
        assert same < different

    def test_negative_free(self):
        assert not BarlowTwins.uses_negatives
        z1, z2 = _views()
        # negatives are ignored, not an error
        a = float(BarlowTwins().pair_loss(z1, z2).item())
        b = float(BarlowTwins().pair_loss(z1, z2, negatives=None).item())
        assert a == b


class TestBootstrapCosine:
    def test_matches_functional_form(self):
        z1, z2 = _views()
        got = BootstrapCosine().pair_loss(z1, z2)
        want = functional.bootstrap_cosine_loss(z1, z2)
        assert float(got.item()) == float(want.item())

    def test_weighted_uniform_equals_unweighted(self):
        z1, z2 = _views(m=10)
        unweighted = float(BootstrapCosine().pair_loss(z1, z2).item())
        weighted = float(
            BootstrapCosine().pair_loss(z1, z2, weights=np.full(10, 3.0)).item()
        )
        np.testing.assert_allclose(weighted, unweighted, rtol=1e-12)


class TestMarginMining:
    def test_aligned_views_with_margin_zero_loss_region(self):
        """Perfectly aligned positives with dissimilar negatives sit inside
        the margin -> zero hinge."""
        rng = np.random.default_rng(8)
        z = rng.normal(size=(10, 6))
        z1 = Tensor(z)
        z2 = Tensor(z.copy())
        obj = get_objective("margin", margin=0.01)
        # orthogonalized negatives are unlikely to violate a tiny margin
        loss = float(obj.pair_loss(z1, z2).item())
        assert loss < 0.5


class TestEuclidean:
    def test_matches_legacy_shim(self):
        from repro.core.losses import euclidean_contrastive_loss

        z1, z2 = _views(m=14)
        negs = sample_negative_indices(14, 5, np.random.default_rng(2))
        a = Euclidean().pair_loss(z1, z2, negatives=negs)
        b = euclidean_contrastive_loss(z1, z2, negs)
        assert float(a.item()) == float(b.item())

    def test_requires_negatives(self):
        z1, z2 = _views()
        with pytest.raises(ValueError, match="needs sampled negatives"):
            Euclidean().pair_loss(z1, z2)
