"""2-D projection utilities."""

import numpy as np
import pytest

from repro.eval import ScatterData, coreset_scatter, pca_2d, tsne_2d


def three_blobs(rng, n_per=20, dim=6):
    centers = [np.zeros(dim), np.full(dim, 10.0), np.concatenate([np.full(dim // 2, -10.0), np.zeros(dim - dim // 2)])]
    x = np.concatenate([rng.normal(size=(n_per, dim)) + c for c in centers])
    y = np.repeat([0, 1, 2], n_per)
    return x, y


class TestPCA:
    def test_shape(self, rng):
        out = pca_2d(rng.normal(size=(30, 5)))
        assert out.shape == (30, 2)

    def test_centered_output(self, rng):
        out = pca_2d(rng.normal(size=(30, 5)))
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)

    def test_preserves_blob_separation(self, rng):
        x, y = three_blobs(rng)
        out = pca_2d(x)
        centroids = np.stack([out[y == c].mean(axis=0) for c in range(3)])
        spread = np.linalg.norm(centroids[0] - centroids[1])
        within = np.linalg.norm(out[y == 0] - centroids[0], axis=1).mean()
        assert spread > 3 * within

    def test_first_component_has_max_variance(self, rng):
        out = pca_2d(rng.normal(size=(50, 4)) * np.array([5.0, 1.0, 1.0, 1.0]))
        assert out[:, 0].var() >= out[:, 1].var()

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            pca_2d(np.zeros((1, 3)))


class TestTSNE:
    def test_shape_and_finite(self, rng):
        out = tsne_2d(rng.normal(size=(25, 4)), iterations=60)
        assert out.shape == (25, 2)
        assert np.isfinite(out).all()

    def test_separates_blobs(self, rng):
        x, y = three_blobs(rng, n_per=15)
        out = tsne_2d(x, iterations=150, seed=0)
        centroids = np.stack([out[y == c].mean(axis=0) for c in range(3)])
        within = np.mean([
            np.linalg.norm(out[y == c] - centroids[c], axis=1).mean() for c in range(3)
        ])
        between = min(
            np.linalg.norm(centroids[a] - centroids[b])
            for a in range(3) for b in range(a + 1, 3)
        )
        assert between > within

    def test_deterministic_under_seed(self, rng):
        x = rng.normal(size=(20, 3))
        out1 = tsne_2d(x, iterations=40, seed=5)
        out2 = tsne_2d(x, iterations=40, seed=5)
        np.testing.assert_allclose(out1, out2)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            tsne_2d(np.zeros((3, 4)))


class TestCoresetScatter:
    def test_marks_selected(self, rng):
        x, y = three_blobs(rng)
        data = coreset_scatter(x, selected=np.array([0, 5, 42]), labels=y)
        assert data.selected_mask.sum() == 3
        assert data.selected_mask[5]

    def test_rows_format(self, rng):
        x, y = three_blobs(rng)
        data = coreset_scatter(x, selected=np.array([1]), labels=y)
        rows = data.to_rows()
        assert len(rows) == x.shape[0]
        assert rows[1][3] is True
        assert isinstance(rows[0][2], int)

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValueError):
            coreset_scatter(rng.normal(size=(10, 3)), selected=np.array([0]), method="umap")

    def test_labels_optional(self, rng):
        data = coreset_scatter(rng.normal(size=(10, 3)), selected=np.array([0]))
        assert data.to_rows()[0][2] == -1
