"""TimedCurve / CurvePoint semantics (the Fig. 3 series container).

``TimedCurve.time_to_reach`` feeds the "time to reach X% accuracy"
comparisons, so its edge semantics — first crossing, exact threshold,
empty/non-monotone curves — are pinned here.
"""

import math

import numpy as np

from repro.eval import CurvePoint, TimedCurve, TimedEvaluator


def make_curve(pairs, label="e2gcl"):
    return TimedCurve(label=label, points=[
        CurvePoint(epoch=i * 5, seconds=s, accuracy=a)
        for i, (s, a) in enumerate(pairs)
    ])


class TestTimeToReach:
    def test_first_crossing_wins(self):
        curve = make_curve([(1.0, 0.50), (2.0, 0.70), (3.0, 0.72)])
        assert curve.time_to_reach(0.60) == 2.0

    def test_exact_threshold_counts(self):
        curve = make_curve([(1.0, 0.50), (2.0, 0.70)])
        assert curve.time_to_reach(0.70) == 2.0

    def test_unreached_is_none(self):
        curve = make_curve([(1.0, 0.50), (2.0, 0.70)])
        assert curve.time_to_reach(0.71) is None

    def test_empty_curve_is_none(self):
        assert make_curve([]).time_to_reach(0.1) is None

    def test_first_point_can_cross(self):
        curve = make_curve([(0.5, 0.90), (1.0, 0.95)])
        assert curve.time_to_reach(0.80) == 0.5

    def test_non_monotone_curve_uses_first_touch(self):
        """Accuracy dipping below the threshold later must not matter."""
        curve = make_curve([(1.0, 0.40), (2.0, 0.75), (3.0, 0.60), (4.0, 0.80)])
        assert curve.time_to_reach(0.70) == 2.0

    def test_zero_threshold_returns_first_point(self):
        curve = make_curve([(1.5, 0.10), (2.5, 0.90)])
        assert curve.time_to_reach(0.0) == 1.5


class TestCurveSummaries:
    def test_best_and_final(self):
        curve = make_curve([(1.0, 0.60), (2.0, 0.80), (3.0, 0.75)])
        assert curve.best_accuracy() == 0.80
        assert curve.final_accuracy() == 0.75

    def test_empty_curve_summaries_are_nan(self):
        curve = make_curve([])
        assert math.isnan(curve.best_accuracy())
        assert math.isnan(curve.final_accuracy())

    def test_single_point(self):
        curve = make_curve([(1.0, 0.42)])
        assert curve.best_accuracy() == 0.42
        assert curve.final_accuracy() == 0.42
        assert curve.time_to_reach(0.42) == 1.0


class TestTimedEvaluator:
    def test_records_on_interval_only(self, tiny_cora):
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(tiny_cora.num_nodes, 8))
        evaluator = TimedEvaluator(
            tiny_cora, lambda: embeddings, label="rand",
            every=2, eval_trials=1, decoder_epochs=5).start()
        for epoch in range(4):
            evaluator(epoch)
        assert [p.epoch for p in evaluator.curve.points] == [0, 2]

    def test_eval_overhead_excluded_from_clock(self, tiny_cora):
        """Each point's seconds must exclude earlier probes' cost: the
        recorded clock can only advance by (wall time minus probe time)."""
        import time

        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(tiny_cora.num_nodes, 8))
        evaluator = TimedEvaluator(
            tiny_cora, lambda: embeddings, label="rand",
            every=1, eval_trials=1, decoder_epochs=30).start()
        start = time.perf_counter()
        for epoch in range(3):
            evaluator(epoch)
        wall = time.perf_counter() - start
        points = evaluator.curve.points
        assert len(points) == 3
        assert points[-1].seconds <= wall
        assert points[-1].seconds <= wall - evaluator._eval_overhead + 0.05

    def test_extra_seconds_shifts_curve(self, tiny_cora):
        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(tiny_cora.num_nodes, 8))
        evaluator = TimedEvaluator(
            tiny_cora, lambda: embeddings, label="rand",
            every=1, eval_trials=1, decoder_epochs=5).start()
        evaluator.extra_seconds = 100.0
        evaluator(0)
        assert evaluator.curve.points[0].seconds >= 100.0
