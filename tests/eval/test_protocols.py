"""Evaluation protocols: node classification, link prediction, graph
classification, and the timed curve used by Fig. 3."""

import numpy as np
import pytest

from repro.eval import (
    TimedEvaluator,
    evaluate_embeddings,
    evaluate_graph_classification,
    evaluate_link_prediction,
    summarize_graphs,
)
from repro.graphs import load_tu_dataset
from repro.nn import GCN


class TestNodeClassificationEval:
    def test_informative_embeddings_score_high(self, tiny_cora):
        """One-hot class embeddings must be nearly perfectly decodable."""
        onehot = np.eye(tiny_cora.num_classes)[tiny_cora.labels]
        result = evaluate_embeddings(tiny_cora, onehot, trials=2, decoder_epochs=150)
        assert result.test_accuracy.mean > 0.95

    def test_random_embeddings_near_chance(self, tiny_cora):
        rng = np.random.default_rng(0)
        noise = rng.normal(size=(tiny_cora.num_nodes, 8))
        result = evaluate_embeddings(tiny_cora, noise, trials=2, decoder_epochs=100)
        assert result.test_accuracy.mean < 0.5

    def test_trials_aggregate(self, tiny_cora):
        onehot = np.eye(tiny_cora.num_classes)[tiny_cora.labels]
        result = evaluate_embeddings(tiny_cora, onehot, trials=3, decoder_epochs=50)
        assert len(result.test_accuracy.values) == 3

    def test_requires_labels(self, tiny_cora):
        unlabeled = tiny_cora.copy()
        unlabeled.labels = None
        with pytest.raises(ValueError, match="labels"):
            evaluate_embeddings(unlabeled, np.zeros((tiny_cora.num_nodes, 4)))

    def test_embedding_row_count_validated(self, tiny_cora):
        with pytest.raises(ValueError):
            evaluate_embeddings(tiny_cora, np.zeros((3, 4)))

    def test_deterministic_under_seed(self, tiny_cora):
        onehot = np.eye(tiny_cora.num_classes)[tiny_cora.labels].astype(float)
        r1 = evaluate_embeddings(tiny_cora, onehot, seed=7, trials=2, decoder_epochs=50)
        r2 = evaluate_embeddings(tiny_cora, onehot, seed=7, trials=2, decoder_epochs=50)
        assert r1.test_accuracy.mean == r2.test_accuracy.mean


class TestLinkPredictionEval:
    def test_protocol_runs_and_beats_chance(self, small_cora):
        """Embeddings from an untrained GCN still carry structure via
        propagation, so AUC should exceed 0.5."""
        encoder = GCN(small_cora.num_features, 16, 8, seed=0)
        result = evaluate_link_prediction(
            small_cora, lambda g: encoder.embed(g), trials=2, decoder_epochs=120,
        )
        assert result.test_auc.mean > 0.55
        assert 0.0 <= result.test_accuracy.mean <= 1.0

    def test_embed_fn_receives_train_graph(self, small_cora):
        seen = []

        def embed_fn(graph):
            seen.append(graph.num_edges)
            return np.zeros((graph.num_nodes, 4))

        evaluate_link_prediction(small_cora, embed_fn, trials=1, decoder_epochs=10)
        # The graph handed to the embedder must be missing the held-out edges.
        assert seen[0] < small_cora.num_edges


class TestGraphClassificationEval:
    @pytest.fixture(scope="class")
    def tu(self):
        graphs, labels = load_tu_dataset("ptc_mr", seed=1)
        return graphs[:60], labels[:60]

    def test_summaries_shape(self, tu):
        graphs, _ = tu
        encoder = GCN(graphs[0].num_features, 8, 4, seed=0)
        summaries = summarize_graphs(graphs, encoder.embed)
        assert summaries.shape == (60, 4)

    def test_sum_vs_mean_readout(self, tu):
        graphs, _ = tu
        encoder = GCN(graphs[0].num_features, 8, 4, seed=0)
        s_sum = summarize_graphs(graphs[:5], encoder.embed, readout="sum")
        s_mean = summarize_graphs(graphs[:5], encoder.embed, readout="mean")
        sizes = np.array([g.num_nodes for g in graphs[:5]], dtype=float)
        np.testing.assert_allclose(s_sum, s_mean * sizes[:, None], atol=1e-9)

    def test_unknown_readout_rejected(self, tu):
        graphs, _ = tu
        encoder = GCN(graphs[0].num_features, 8, 4, seed=0)
        with pytest.raises(ValueError):
            summarize_graphs(graphs[:2], encoder.embed, readout="attention")

    def test_protocol_beats_chance(self, tu):
        graphs, labels = tu
        encoder = GCN(graphs[0].num_features, 16, 8, seed=0)
        result = evaluate_graph_classification(
            graphs, labels, encoder.embed, trials=2, decoder_epochs=150,
        )
        assert result.test_accuracy.mean > 0.5

    def test_label_count_validated(self, tu):
        graphs, labels = tu
        with pytest.raises(ValueError):
            evaluate_graph_classification(graphs, labels[:-1], lambda g: np.zeros((g.num_nodes, 2)))


class TestTimedEvaluator:
    def test_records_points_at_interval(self, tiny_cora):
        encoder = GCN(tiny_cora.num_features, 8, 4, seed=0)
        evaluator = TimedEvaluator(
            tiny_cora, lambda: encoder.embed(tiny_cora), label="test",
            every=2, eval_trials=1, decoder_epochs=20,
        ).start()
        for epoch in range(6):
            evaluator(epoch)
        assert [p.epoch for p in evaluator.curve.points] == [0, 2, 4]
        assert all(np.isfinite(p.accuracy) for p in evaluator.curve.points)

    def test_seconds_monotone(self, tiny_cora):
        encoder = GCN(tiny_cora.num_features, 8, 4, seed=0)
        evaluator = TimedEvaluator(
            tiny_cora, lambda: encoder.embed(tiny_cora), label="t",
            every=1, eval_trials=1, decoder_epochs=10,
        ).start()
        for epoch in range(4):
            evaluator(epoch)
        secs = [p.seconds for p in evaluator.curve.points]
        assert all(b >= a for a, b in zip(secs, secs[1:]))

    def test_curve_helpers(self, tiny_cora):
        encoder = GCN(tiny_cora.num_features, 8, 4, seed=0)
        evaluator = TimedEvaluator(
            tiny_cora, lambda: encoder.embed(tiny_cora), label="t",
            every=1, eval_trials=1, decoder_epochs=10,
        ).start()
        for epoch in range(3):
            evaluator(epoch)
        curve = evaluator.curve
        assert curve.best_accuracy() >= curve.points[0].accuracy - 1e-12
        assert curve.time_to_reach(2.0) is None  # accuracy can't reach 200%
        assert curve.time_to_reach(0.0) is not None
