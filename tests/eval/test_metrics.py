"""Metrics against hand computations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import MeanStd, accuracy, macro_f1, roc_auc


class TestAccuracy:
    def test_value(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_perfect_and_zero(self):
        assert accuracy(np.array([1, 1]), np.array([1, 1])) == 1.0
        assert accuracy(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestMacroF1:
    def test_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(y, y) == 1.0

    def test_binary_manual(self):
        preds = np.array([1, 1, 0, 0])
        labels = np.array([1, 0, 1, 0])
        # class1: tp=1 fp=1 fn=1 → f1 = 0.5; class0: same by symmetry.
        assert macro_f1(preds, labels) == pytest.approx(0.5)

    def test_missing_class_in_predictions(self):
        preds = np.array([0, 0, 0])
        labels = np.array([0, 1, 0])
        out = macro_f1(preds, labels)
        assert 0 < out < 1


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted_scores(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.integers(0, 2, 4000)
        assert roc_auc(scores, labels) == pytest.approx(0.5, abs=0.03)

    def test_ties_average(self):
        scores = np.array([0.5, 0.5])
        labels = np.array([0, 1])
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0.1, 0.9]), np.array([1, 1]))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_property_matches_pair_counting(self, seed):
        """AUC equals the fraction of correctly ordered (pos, neg) pairs."""
        rng = np.random.default_rng(seed)
        scores = rng.random(30)
        labels = np.concatenate([np.ones(10), np.zeros(20)]).astype(int)
        rng.shuffle(labels)
        if labels.sum() in (0, 30):
            return
        pos = scores[labels == 1]
        neg = scores[labels == 0]
        wins = (pos[:, None] > neg[None, :]).sum() + 0.5 * (pos[:, None] == neg[None, :]).sum()
        expected = wins / (len(pos) * len(neg))
        assert roc_auc(scores, labels) == pytest.approx(expected, abs=1e-9)


class TestMeanStd:
    def test_aggregation(self):
        ms = MeanStd.from_values([0.8, 0.9])
        assert ms.mean == pytest.approx(0.85)
        assert ms.std == pytest.approx(0.05)

    def test_paper_style_format(self):
        ms = MeanStd.from_values([0.8406, 0.8406])
        assert ms.as_percent() == "84.06±0.00"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MeanStd.from_values([])
