"""End-to-end pipelines and cross-module consistency."""

import numpy as np
import pytest

from repro import E2GCL, E2GCLConfig, load_dataset
from repro.baselines import get_method
from repro.core import ablation_config
from repro.eval import evaluate_embeddings


FAST = dict(epochs=10, num_clusters=10, sample_size=30, node_ratio=0.4,
            hidden_dim=16, embedding_dim=8)


class TestE2GCLPipeline:
    def test_quickstart_path(self, tiny_cora):
        """The README quickstart, verbatim."""
        model = E2GCL(E2GCLConfig(**FAST)).fit(tiny_cora)
        embeddings = model.embed()
        assert embeddings.shape == (tiny_cora.num_nodes, 8)
        result = model.evaluate(trials=2)
        assert result.test_accuracy.mean > 0.3

    def test_pretraining_improves_over_random_features(self, small_cora):
        model = E2GCL(E2GCLConfig(**{**FAST, "epochs": 40})).fit(small_cora)
        trained = model.evaluate(trials=3).test_accuracy.mean
        rng = np.random.default_rng(0)
        random_acc = evaluate_embeddings(
            small_cora, rng.normal(size=(small_cora.num_nodes, 8)), trials=3,
        ).test_accuracy.mean
        assert trained > random_acc + 0.2

    def test_ablation_variants_all_run(self, tiny_cora):
        base = E2GCLConfig(**FAST)
        accs = {}
        for variant in ("S,I", "S,U", "A,I", "A,U"):
            cfg = ablation_config(base, variant)
            model = E2GCL(cfg).fit(tiny_cora)
            accs[variant] = model.evaluate(trials=2).test_accuracy.mean
        assert all(np.isfinite(v) for v in accs.values())

    def test_coreset_variant_faster_per_epoch_anchor_count(self, tiny_cora):
        """The S variants optimize over fewer anchors than the A variants."""
        base = E2GCLConfig(**{**FAST, "node_ratio": 0.2})
        s_model = E2GCL(base).fit(tiny_cora)
        a_model = E2GCL(base.with_overrides(use_coreset=False)).fit(tiny_cora)
        assert s_model.coreset.budget < tiny_cora.num_nodes
        assert a_model.coreset is None


class TestCrossMethodComparison:
    def test_leaderboard_runs_and_orders_sensibly(self, small_cora):
        """GCL methods should beat random embeddings; this is the minimal
        'shape' check behind Tab. IV at test scale."""
        scores = {}
        for name in ("grace", "gca"):
            method = get_method(name, epochs=15, embedding_dim=8, hidden_dim=16, seed=0)
            method.fit(small_cora)
            scores[name] = evaluate_embeddings(
                small_cora, method.embed(small_cora), trials=2, decoder_epochs=100,
            ).test_accuracy.mean
        rng = np.random.default_rng(1)
        random_score = evaluate_embeddings(
            small_cora, rng.normal(size=(small_cora.num_nodes, 8)), trials=2,
            decoder_epochs=100,
        ).test_accuracy.mean
        for name, score in scores.items():
            assert score > random_score, f"{name} failed to learn"


class TestDeterminism:
    def test_full_pipeline_reproducible(self, tiny_cora):
        def run():
            model = E2GCL(E2GCLConfig(**{**FAST, "seed": 42})).fit(tiny_cora)
            return model.embed()

        np.testing.assert_allclose(run(), run())

    def test_dataset_plus_model_reproducible(self):
        def run():
            graph = load_dataset("citeseer", seed=9, scale=0.25)
            model = E2GCL(E2GCLConfig(**{**FAST, "seed": 1, "epochs": 5})).fit(graph)
            return model.embed()

        np.testing.assert_allclose(run(), run())
