"""Chaos suite: end-to-end proof of the three recovery paths.

Each scenario drives a *real* method fit (grace — the fastest GCL method
with a full optimizer) through an injected fault and asserts the stack
recovers deterministically:

* NaN gradients at epoch k  → HealthGuard flags, AutoRecovery rolls back,
  the run completes with finite losses;
* a mid-epoch crash         → the process "dies", a fresh fit resumes from
  the newest valid checkpoint and finishes **bit-identical** to an
  uninterrupted baseline;
* corrupted checkpoints     → digest validation skips the damaged files
  and resume picks the newest intact one.
"""

import numpy as np
import pytest

from repro.baselines import get_method
from repro.engine import CheckpointCorruptError, find_latest_valid, read_checkpoint
from repro.resilience import (
    AutoRecovery,
    CheckpointManager,
    FaultPlan,
    HealthGuard,
    SimulatedCrash,
)

EPOCHS = 8
KWARGS = dict(epochs=EPOCHS, embedding_dim=8, hidden_dim=16, seed=0)


def make():
    return get_method("grace", **KWARGS)


def nan_rollback_run(graph, tmp_path, tag=""):
    plan = FaultPlan(seed=7).nan_gradients(epoch=4)
    guard = HealthGuard(policy="recover", spike_factor=None)
    recovery = AutoRecovery(
        CheckpointManager(tmp_path / f"ckpts{tag}", keep=3), max_retries=2
    )
    method = make()
    # Order matters: faults fire inside the epoch, the guard inspects the
    # epoch, recovery reacts to what the guard signalled.
    method.fit(graph, hooks=[plan.hook(), guard, recovery])
    return method, guard, recovery


class TestNanRollback:
    def test_poisoned_epoch_is_rolled_back_and_run_completes(
        self, tiny_cora, tmp_path
    ):
        method, guard, recovery = nan_rollback_run(tiny_cora, tmp_path)
        losses = method.info.losses
        assert len(losses) == EPOCHS
        assert np.isfinite(losses).all()
        assert recovery.retries == 1
        entry = recovery.recoveries[0]
        assert entry["failed_epoch"] == 4
        assert entry["resume_epoch"] == 4
        assert "non-finite" in entry["reason"]
        assert len(guard.reports) == 1
        # The recovery is part of the run's durable record.
        assert method.last_loop.history.recoveries == recovery.recoveries

    def test_chaos_is_deterministic_under_fixed_seed(self, tiny_cora, tmp_path):
        first, _, _ = nan_rollback_run(tiny_cora, tmp_path, tag="a")
        second, _, _ = nan_rollback_run(tiny_cora, tmp_path, tag="b")
        np.testing.assert_array_equal(first.info.losses, second.info.losses)
        np.testing.assert_array_equal(
            first.embed(tiny_cora), second.embed(tiny_cora)
        )


class TestCrashResume:
    def test_kill_then_resume_is_bit_identical(self, tiny_cora, tmp_path):
        baseline = make()
        baseline.fit(tiny_cora)

        # The "process" dies mid-epoch 5; checkpoints up to epoch 4 exist.
        ckpt_dir = tmp_path / "ckpts"
        crashed = make()
        with pytest.raises(SimulatedCrash):
            crashed.fit(tiny_cora, hooks=[
                FaultPlan(seed=1).crash(epoch=5).hook(),
                AutoRecovery(CheckpointManager(ckpt_dir, keep=3)),
            ])

        target = find_latest_valid(ckpt_dir)
        assert target is not None
        assert read_checkpoint(target)[0]["epoch_next"] == 5

        resumed = make()
        resumed.fit(tiny_cora, resume_from=target)
        np.testing.assert_array_equal(resumed.info.losses, baseline.info.losses)
        np.testing.assert_array_equal(
            resumed.embed(tiny_cora), baseline.embed(tiny_cora)
        )


def make_sampled():
    """E2GCL on the repro.scale mini-batch path, batched so the sampler,
    batch shuffle, and local-view RNG streams are all genuinely live."""
    return get_method(
        "e2gcl", sampled=True, batch_size=16, fanouts=[10, 5],
        view_mode="local", **KWARGS)


@pytest.mark.scale
class TestSampledChaos:
    """The recovery paths must survive the sampled engine's extra RNG
    streams (batches, sampler, local_views, anchors) — a resume that
    dropped any of them would diverge from the uninterrupted run."""

    def test_nan_rollback_on_sampled_path(self, tiny_cora, tmp_path):
        plan = FaultPlan(seed=7).nan_gradients(epoch=4)
        guard = HealthGuard(policy="recover", spike_factor=None)
        recovery = AutoRecovery(
            CheckpointManager(tmp_path / "ckpts", keep=3), max_retries=2)
        method = make_sampled()
        method.fit(tiny_cora, hooks=[plan.hook(), guard, recovery])
        losses = method.info.losses
        assert len(losses) == EPOCHS
        assert np.isfinite(losses).all()
        assert recovery.retries == 1
        entry = recovery.recoveries[0]
        assert entry["failed_epoch"] == 4
        assert entry["resume_epoch"] == 4

    def test_kill_then_resume_is_bit_identical(self, tiny_cora, tmp_path):
        baseline = make_sampled()
        baseline.fit(tiny_cora)

        ckpt_dir = tmp_path / "ckpts"
        crashed = make_sampled()
        with pytest.raises(SimulatedCrash):
            crashed.fit(tiny_cora, hooks=[
                FaultPlan(seed=1).crash(epoch=5).hook(),
                AutoRecovery(CheckpointManager(ckpt_dir, keep=3)),
            ])

        target = find_latest_valid(ckpt_dir)
        assert target is not None
        assert read_checkpoint(target)[0]["epoch_next"] == 5

        resumed = make_sampled()
        resumed.fit(tiny_cora, resume_from=target)
        np.testing.assert_array_equal(
            resumed.info.losses, baseline.info.losses)
        np.testing.assert_array_equal(
            resumed.embed(tiny_cora), baseline.embed(tiny_cora))

    def test_dense_checkpoint_rejected_by_sampled_run(self, tiny_cora, tmp_path):
        """step_class validation: dense and sampled runs never cross-resume."""
        ckpt_dir = tmp_path / "ckpts"
        dense = get_method("e2gcl", **KWARGS)
        dense.fit(tiny_cora, hooks=[
            AutoRecovery(CheckpointManager(ckpt_dir, keep=3))])
        target = find_latest_valid(ckpt_dir)
        assert target is not None
        with pytest.raises(ValueError, match="step"):
            make_sampled().fit(tiny_cora, resume_from=target)


class TestCorruptSkip:
    def test_resume_skips_damaged_checkpoints(self, tiny_cora, tmp_path):
        ckpt_dir = tmp_path / "ckpts"
        manager = CheckpointManager(ckpt_dir, keep=4)
        method = make()
        method.fit(tiny_cora, hooks=[AutoRecovery(manager)])
        plan = FaultPlan(seed=2)

        newest = manager.path_for(EPOCHS - 1)
        plan.flip_bytes(newest)
        # Depending on which bytes flip, either the zip layer's CRC or our
        # digest trips first — both must surface as corruption.
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(newest)
        assert find_latest_valid(ckpt_dir) == manager.path_for(EPOCHS - 2)

        plan.truncate_file(manager.path_for(EPOCHS - 2))
        target = find_latest_valid(ckpt_dir)
        assert target == manager.path_for(EPOCHS - 3)

        # And the survivor actually resumes a working fit.
        resumed = make()
        resumed.fit(tiny_cora, resume_from=target)
        assert len(resumed.info.losses) == EPOCHS
        assert np.isfinite(resumed.info.losses).all()
