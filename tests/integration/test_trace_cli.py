"""End-to-end: ``repro train --trace`` writes a full trace and
``repro trace`` summarizes it (the PR's acceptance pipeline)."""

import pytest

from repro.cli import main
from repro.obs import current_tracer, read_events, summarize_events


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    leaked = current_tracer()
    if leaked is not None:
        leaked.deactivate()


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    code = main([
        "train", "--dataset", "cora", "--method", "e2gcl",
        "--epochs", "2", "--trials", "1", "--scale", "0.1",
        "--trace", str(path),
    ])
    assert code == 0
    return path


class TestTrainTrace:
    def test_manifest_leads_the_stream(self, trace_path):
        events = read_events(trace_path)
        assert events[0]["type"] == "manifest"
        manifest = events[0]
        assert manifest["method"] == "e2gcl"
        assert manifest["dataset"]["name"] == "cora"
        assert manifest["dataset"]["sha256"]
        assert manifest["config"]["epochs"] == 2
        assert manifest["packages"]["repro"]

    def test_expected_spans_present(self, trace_path):
        spans = {e["name"] for e in read_events(trace_path)
                 if e["type"] == "span"}
        # setup + selection + per-epoch + eval — the whole run is covered.
        for required in ("run", "trainer.setup", "trainer.selection",
                         "selector.greedy", "epoch", "trainer.epoch",
                         "eval.linear_probe"):
            assert required in spans, f"missing span {required}"

    def test_per_epoch_metric_series(self, trace_path):
        summary = summarize_events(read_events(trace_path))
        rows = summary.epoch_table()
        assert [row["epoch"] for row in rows] == [0, 1]
        assert all("loss" in row for row in rows)

    def test_tracer_released_after_command(self, trace_path):
        assert current_tracer() is None

    def test_trace_subcommand_renders_summary(self, trace_path, capsys):
        assert main(["trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "dataset cora" in out
        assert "slowest spans" in out
        assert "eval.linear_probe" in out
        assert "per-epoch metrics" in out


class TestTraceSubcommandErrors:
    def test_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{not json\n")
        assert main(["trace", str(bad)]) == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestBenchTraceEmission:
    def test_fit_and_score_writes_traces(self, tmp_path):
        from repro.bench.harness import fit_and_score, load_bench_dataset

        graph = load_bench_dataset("cora", scale=0.1)
        fit_and_score("grace", graph, epochs=2, trials=1, fit_seeds=1,
                      trace_dir=str(tmp_path))
        traces = sorted(tmp_path.glob("*.jsonl"))
        assert [p.name for p in traces] == ["grace-cora-seed0.jsonl"]
        events = read_events(traces[0])
        assert events[0]["type"] == "manifest"
        assert events[0]["method"] == "grace"
        assert any(e["type"] == "span" and e["name"] == "run" for e in events)
        assert current_tracer() is None

    def test_no_traces_without_opt_in(self, tmp_path, monkeypatch):
        from repro.bench.harness import fit_and_score, load_bench_dataset

        monkeypatch.delenv("REPRO_BENCH_TRACE_DIR", raising=False)
        graph = load_bench_dataset("cora", scale=0.1)
        fit_and_score("grace", graph, epochs=1, trials=1, fit_seeds=1)
        assert list(tmp_path.glob("*.jsonl")) == []
