"""End-to-end: ``repro train --checkpoint`` then ``repro serve`` /
``repro query`` answer over the in-process transport (the PR's CLI
acceptance round-trip — no sockets involved)."""

import json

import pytest

from repro.cli import main
from repro.graphs import load_dataset

DATASET_ARGS = ["--dataset", "cora", "--scale", "0.1", "--seed", "0"]


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    """A directory holding one digest-valid engine checkpoint from the CLI."""
    directory = tmp_path_factory.mktemp("serve-cli")
    code = main([
        "train", "--method", "grace", "--epochs", "2", "--trials", "1",
        *DATASET_ARGS,
        "--checkpoint", str(directory / "grace.npz"), "--checkpoint-every", "1",
    ])
    assert code == 0
    assert (directory / "grace.npz").is_file()
    return directory


@pytest.fixture(scope="module")
def graph():
    return load_dataset("cora", seed=0, scale=0.1)


class TestServeRequestsMode:
    def test_jsonl_round_trip(self, checkpoint_dir, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(json.dumps(payload) for payload in [
            {"op": "embed", "node": 0},
            {"op": "classify", "node": 1},
            {"op": "models"},
            {"op": "embed", "node": 10 ** 9},  # must answer, not crash
        ]) + "\n")
        code = main(["serve", "--checkpoint", str(checkpoint_dir),
                     *DATASET_ARGS, "--requests", str(requests)])
        out = capsys.readouterr().out.strip().splitlines()
        assert code == 0
        assert out[0].startswith("serving grace-")
        replies = [json.loads(line) for line in out[1:]]
        assert len(replies) == 4
        assert replies[0]["ok"] and len(replies[0]["embedding"]) > 0
        assert replies[1]["ok"] and "label" in replies[1]
        assert replies[2]["models"][0]["method"] == "grace"
        assert replies[3]["ok"] is False
        assert replies[3]["error"]["code"] == "unknown_node"

    def test_unparseable_line_gets_error_envelope(self, checkpoint_dir,
                                                  tmp_path, capsys):
        requests = tmp_path / "bad.jsonl"
        requests.write_text('{"op": "embed", "node": 0}\n{not json\n')
        assert main(["serve", "--checkpoint", str(checkpoint_dir),
                     *DATASET_ARGS, "--requests", str(requests)]) == 0
        replies = [json.loads(line) for line
                   in capsys.readouterr().out.strip().splitlines()[1:]]
        assert replies[0]["ok"]
        assert replies[1]["ok"] is False
        assert replies[1]["error"]["code"] == "malformed_query"


class TestQuerySubcommand:
    def run_query(self, checkpoint_dir, capsys, *extra):
        code = main(["query", "--checkpoint", str(checkpoint_dir),
                     *DATASET_ARGS, *extra])
        return code, json.loads(capsys.readouterr().out.strip().splitlines()[-1])

    def test_embed_known_node(self, checkpoint_dir, capsys):
        code, reply = self.run_query(checkpoint_dir, capsys,
                                     "--op", "embed", "--node", "0")
        assert code == 0
        assert reply["ok"] and reply["version"].startswith("grace-")

    def test_classify(self, checkpoint_dir, graph, capsys):
        code, reply = self.run_query(checkpoint_dir, capsys,
                                     "--op", "classify", "--node", "2")
        assert code == 0
        assert 0 <= reply["label"] < graph.num_classes

    def test_embed_unseen_node(self, checkpoint_dir, graph, capsys):
        features = json.dumps(graph.features[0].tolist())
        code, reply = self.run_query(
            checkpoint_dir, capsys, "--op", "embed",
            "--features", features, "--neighbors", "[0, 1]")
        assert code == 0
        assert reply["ok"] and len(reply["embedding"]) > 0

    def test_query_error_is_exit_code_one(self, checkpoint_dir, capsys):
        code, reply = self.run_query(checkpoint_dir, capsys,
                                     "--op", "embed", "--node", "999999")
        assert code == 1
        assert reply["error"]["code"] == "unknown_node"

    def test_bad_features_json_is_usage_error(self, checkpoint_dir, capsys):
        code = main(["query", "--checkpoint", str(checkpoint_dir),
                     *DATASET_ARGS, "--op", "embed", "--features", "[1, 2"])
        assert code == 2
        assert "JSON array" in capsys.readouterr().err


class TestLoadFailures:
    def test_missing_checkpoint_dir(self, tmp_path, capsys):
        assert main(["query", "--checkpoint", str(tmp_path / "none"),
                     *DATASET_ARGS, "--op", "models"]) == 2
        assert "cannot load model" in capsys.readouterr().err

    def test_corrupt_checkpoint_file(self, checkpoint_dir, tmp_path, capsys):
        corrupt = tmp_path / "corrupt.npz"
        corrupt.write_bytes((checkpoint_dir / "grace.npz").read_bytes()[:100])
        assert main(["serve", "--checkpoint", str(corrupt), *DATASET_ARGS,
                     "--requests", "/dev/null"]) == 2
        assert "cannot load model" in capsys.readouterr().err
