"""Every registered method survives pathological graphs.

The contract: on a degenerate input (isolated nodes, no edges at all, a
single label class, constant features) a method either trains to finite
losses and finite embeddings, or raises a *clear* error — it never emits
NaN.  This is the regression net under the graceful-degradation paths
(KMeans reseeding, the selector's degree fallback, guarded propagation).
"""

import warnings

import numpy as np
import pytest

from repro.baselines import available_methods, get_method
from repro.resilience import degenerate_graph

KINDS = ("isolated", "edgeless", "single_class", "constant_features")


def make(name):
    kwargs = dict(epochs=3, embedding_dim=8, hidden_dim=16, seed=0)
    if name in ("deepwalk", "node2vec"):
        kwargs = dict(seed=0, embedding_dim=8)
    if name == "e2gcl":
        kwargs.update(num_clusters=3, sample_size=6)
    return get_method(name, **kwargs)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("name", available_methods())
def test_trains_finite_or_raises_clearly(name, kind):
    graph = degenerate_graph(kind, num_nodes=12, num_features=6, seed=0)
    method = make(name)
    with warnings.catch_warnings():
        # Degradation warnings (e.g. the selector's degree fallback) are
        # expected and part of the contract; silence them for the sweep.
        warnings.simplefilter("ignore")
        try:
            method.fit(graph)
        except (ValueError, RuntimeError) as exc:
            assert str(exc), f"{name} on {kind}: error with empty message"
            return
    losses = np.asarray(method.info.losses, dtype=float)
    assert np.isfinite(losses).all(), (
        f"{name} on {kind}: non-finite losses {losses.tolist()}"
    )
    embeddings = method.embed(graph)
    assert embeddings.shape[0] == graph.num_nodes
    assert np.isfinite(embeddings).all(), f"{name} on {kind}: NaN embeddings"
