"""End-to-end: ``repro stream --generate`` writes a durable delta log, then
``repro stream --replay`` drives it against a live in-process
``EmbeddingServer`` built from a CLI-trained checkpoint."""

import json

import pytest

from repro.cli import main
from repro.stream import read_delta_log

DATASET_ARGS = ["--dataset", "cora", "--scale", "0.1", "--seed", "0"]


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("stream-cli")
    code = main([
        "train", "--method", "grace", "--epochs", "2", "--trials", "1",
        *DATASET_ARGS,
        "--checkpoint", str(directory / "grace.npz"), "--checkpoint-every", "1",
    ])
    assert code == 0
    return directory


@pytest.fixture(scope="module")
def delta_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("stream-cli-log") / "deltas.jsonl"
    code = main(["stream", "--generate", "80", "--out", str(path),
                 *DATASET_ARGS])
    assert code == 0
    return path


class TestGenerate:
    def test_log_is_replayable_jsonl(self, delta_log, capsys):
        result = read_delta_log(delta_log)
        assert len(result) == 80
        assert result.skipped == 0
        assert [d.seq for d in result.deltas] == list(range(80))

    def test_generate_without_out_is_a_usage_error(self, capsys):
        assert main(["stream", "--generate", "5", *DATASET_ARGS]) == 2


class TestReplay:
    def test_replay_round_trip(self, checkpoint_dir, delta_log, tmp_path,
                               capsys):
        summary_path = tmp_path / "summary.json"
        code = main(["stream", "--replay", str(delta_log),
                     "--checkpoint", str(checkpoint_dir),
                     *DATASET_ARGS, "--delta-batch", "20", "--probes", "2",
                     "--out", str(summary_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "replaying" in out
        summary = json.loads(summary_path.read_text())
        assert summary["deltas_read"] == 80
        assert summary["num_batches"] == 4
        assert summary["probe_failures"] == 0
        assert summary["deltas_per_s"] > 0
        # Printed summary omits the per-batch detail but carries the totals.
        printed = json.loads(out[out.index("{"):])
        assert "batches" not in printed
        assert printed["deltas_applied"] == summary["deltas_applied"]

    def test_replay_resumes_from_start_seq(self, checkpoint_dir, delta_log,
                                           capsys):
        code = main(["stream", "--replay", str(delta_log),
                     "--checkpoint", str(checkpoint_dir),
                     *DATASET_ARGS, "--start-seq", "40"])
        out = capsys.readouterr().out
        assert code == 0
        printed = json.loads(out[out.index("{"):])
        assert printed["deltas_read"] == 40

    def test_replay_without_checkpoint_is_a_usage_error(self, delta_log,
                                                        capsys):
        assert main(["stream", "--replay", str(delta_log),
                     *DATASET_ARGS]) == 2
