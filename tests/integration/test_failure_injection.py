"""Degenerate and hostile inputs: the library must fail loudly or cope."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro import E2GCL, E2GCLConfig
from repro.core import (
    compute_edge_scores,
    compute_feature_scores,
    generate_global_view,
    select_coreset,
)
from repro.graphs import Graph, normalized_adjacency, propagated_features
from repro.nn import GCN


def edgeless_graph(n=8, d=4):
    rng = np.random.default_rng(0)
    return Graph(sp.csr_matrix((n, n)), rng.normal(size=(n, d)),
                 labels=rng.integers(0, 2, n), name="edgeless")


def single_node_graph():
    return Graph(sp.csr_matrix((1, 1)), np.ones((1, 3)), labels=np.zeros(1, dtype=int))


class TestEdgelessGraph:
    def test_normalization_finite(self):
        a_n = normalized_adjacency(edgeless_graph().adjacency)
        assert np.isfinite(a_n.toarray()).all()

    def test_propagated_features_finite(self):
        r = propagated_features(edgeless_graph(), 2)
        assert np.isfinite(r).all()

    def test_gcn_forward_finite(self):
        g = edgeless_graph()
        h = GCN(4, 8, 4, seed=0).embed(g)
        assert np.isfinite(h).all()

    def test_coreset_selection_works(self):
        g = edgeless_graph(n=20)
        result = select_coreset(g, budget=5, num_clusters=4, sample_size=10,
                                rng=np.random.default_rng(0))
        assert result.budget == 5

    def test_view_generation_returns_disconnected_view(self):
        g = edgeless_graph()
        rng = np.random.default_rng(0)
        edge_t = compute_edge_scores(g, rng=rng)
        feat_t = compute_feature_scores(g)
        view = generate_global_view(g, 1.0, 0.3, edge_t, feat_t, rng)
        assert view.num_edges == 0
        assert view.num_nodes == g.num_nodes


class TestSingleNode:
    def test_gcn_runs(self):
        g = single_node_graph()
        assert GCN(3, 4, 2, seed=0).embed(g).shape == (1, 2)

    def test_coreset_clamps(self):
        g = single_node_graph()
        result = select_coreset(g, budget=5, num_clusters=2, sample_size=5,
                                rng=np.random.default_rng(0))
        assert result.budget == 1
        assert result.weights.sum() == 1


class TestHostileFeatures:
    def test_constant_features_survive_scoring(self):
        g = Graph.from_edge_list(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
                                 features=np.ones((6, 3)))
        table = compute_feature_scores(g)
        probs = table.perturb_probability(0.5)
        assert np.isfinite(probs).all()
        assert probs.min() >= 0 and probs.max() <= 1

    def test_zero_features_survive_edge_scoring(self):
        g = Graph.from_edge_list(5, [(0, 1), (1, 2), (2, 3)], features=np.zeros((5, 4)))
        table = compute_edge_scores(g, rng=np.random.default_rng(0))
        for probs in table.probabilities:
            if probs.size:
                assert np.isfinite(probs).all()

    def test_huge_feature_magnitudes_do_not_overflow(self):
        rng = np.random.default_rng(0)
        g = Graph.from_edge_list(6, [(0, 1), (1, 2), (3, 4)],
                                 features=rng.normal(size=(6, 3)) * 1e6)
        table = compute_edge_scores(g, rng=rng)
        for probs in table.probabilities:
            if probs.size:
                assert np.isfinite(probs).all()


class TestTinyTraining:
    def test_e2gcl_on_minimal_graph(self):
        """Smallest graph the pipeline accepts: enough anchors for negatives."""
        rng = np.random.default_rng(0)
        g = Graph.from_edge_list(
            10, [(i, (i + 1) % 10) for i in range(10)],
            features=rng.normal(size=(10, 4)),
            labels=rng.integers(0, 2, 10),
        )
        cfg = E2GCLConfig(epochs=3, node_ratio=0.5, num_clusters=3,
                          sample_size=5, hidden_dim=8, embedding_dim=4,
                          num_negatives=2)
        model = E2GCL(cfg).fit(g)
        assert np.isfinite(model.embed()).all()
