"""Wire ``tools/check_contrast_adoption.py`` into the suite.

Loss code under ``src/repro/core/`` and ``src/repro/baselines/`` must
compose contrastive objectives through ``repro.contrast`` instead of
hand-rolling exp/logsumexp partition functions over similarity matrices.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_contrast_adoption", ROOT / "tools" / "check_contrast_adoption.py"
)
check_contrast_adoption = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_contrast_adoption)


def test_loss_code_has_no_inline_similarity_losses():
    findings = []
    for rel in check_contrast_adoption.CHECKED_DIRS:
        for path in sorted((ROOT / rel).rglob("*.py")):
            findings.extend(check_contrast_adoption.check_file(path))
    assert not findings, "inline similarity losses:\n" + "\n".join(findings)


def test_contrast_package_itself_is_exempt():
    """The objectives module legitimately builds partition functions; it
    must not be in the checked set."""
    assert "src/repro/contrast" not in check_contrast_adoption.CHECKED_DIRS
    assert all(
        not d.startswith("src/repro/contrast")
        for d in check_contrast_adoption.CHECKED_DIRS
    )


def test_detects_logsumexp(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "den = ops.logsumexp(sims, axis=1)\n"
    )
    findings = check_contrast_adoption.check_file(module)
    assert len(findings) == 1
    assert "logsumexp" in findings[0]


def test_detects_exp_over_matmul(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "den = ops.exp(ops.div(ops.matmul(a, ops.transpose(b)), t))\n"
    )
    findings = check_contrast_adoption.check_file(module)
    assert len(findings) == 1
    assert "matmul" in findings[0]


def test_detects_log_over_gathered_similarity(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "ll = ops.log(ops.normalize_cosine_sim_gather(z1, z2, cols))\n"
    )
    findings = check_contrast_adoption.check_file(module)
    assert len(findings) == 1
    assert "normalize_cosine_sim_gather" in findings[0]


def test_vgae_reparameterisation_passes(tmp_path):
    """exp over a non-similarity expression is not a loss."""
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "z = ops.add(mu, ops.mul(ops.exp(ops.mul(logvar, 0.5)), noise))\n"
    )
    assert check_contrast_adoption.check_file(module) == []


def test_numpy_exp_over_plain_array_passes(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "import numpy as np\n\nscores = beta * np.exp(exponent)\n"
    )
    assert check_contrast_adoption.check_file(module) == []


def test_matmul_without_exp_log_passes(tmp_path):
    """Similarity computation alone is fine; only exponentiating it is a
    loss construction."""
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import ops\n\n"
        "sims = ops.matmul(a, ops.transpose(b))\n"
    )
    assert check_contrast_adoption.check_file(module) == []
