"""Bench harness: rendering, sizing knobs, registry, and the shared runner."""

import numpy as np
import pytest

from repro.bench import (
    EXPERIMENTS,
    bench_epochs,
    bench_guard,
    bench_scale,
    bench_trials,
    expect,
    fit_and_score,
    get_experiment,
    load_bench_dataset,
    method_kwargs,
    render_series,
    render_table,
)


class TestSizingKnobs:
    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_epochs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_EPOCHS", "7")
        assert bench_epochs() == 7

    def test_trials_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_TRIALS", raising=False)
        assert bench_trials(default=4) == 4

    def test_load_bench_dataset_uses_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
        graph = load_bench_dataset("cora", seed=0)
        assert graph.num_nodes == 70

    def test_guard_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_GUARD", "warn")
        assert bench_guard() == "warn"

    def test_guard_rejects_unknown_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_GUARD", "explode")
        with pytest.raises(ValueError, match="REPRO_BENCH_GUARD"):
            bench_guard()

    def test_guard_defaults_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_GUARD", raising=False)
        assert bench_guard() == "off"


class TestRegistry:
    def test_every_paper_artifact_present(self):
        artifacts = {exp.artifact for exp in EXPERIMENTS.values()}
        expected = {
            "Table IV", "Table V", "Table VI", "Table VII", "Table VIII",
            "Table IX", "Figure 2", "Figure 3", "Figure 4(a)", "Figure 4(b)",
            "Figure 4(c)", "Figure 4(d)", "Figure 4(e)",
        }
        assert artifacts == expected

    def test_bench_files_exist(self):
        from pathlib import Path

        bench_dir = Path(__file__).parent.parent / "benchmarks"
        for exp in EXPERIMENTS.values():
            assert (bench_dir / exp.bench_file).exists(), exp.bench_file

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            get_experiment("table99")


class TestRendering:
    def test_render_table_contains_cells(self):
        text = render_table("T", ["A", "B"], {"m1": ["1.0", "2.0"], "m2": ["3.0", "4.0"]})
        assert "=== T ===" in text
        assert "m1" in text and "4.0" in text

    def test_render_table_alignment(self):
        text = render_table("T", ["Col"], {"short": ["x"], "a-very-long-name": ["y"]})
        lines = [l for l in text.splitlines() if "|" in l]
        pipes = {line.index("|") for line in lines}
        assert len(pipes) == 1  # all rows align

    def test_render_series_format(self):
        text = render_series("S", {"line": [(0.5, 0.25)]}, "x", "y")
        assert "(0.5, 0.25)" in text
        assert "x -> y" in text

    def test_expect_markers(self):
        assert expect(True, "fine").startswith("[OK ]")
        assert expect(False, "broken").startswith("[MISS]")


class TestMethodKwargs:
    def test_e2gcl_gets_selector_params(self):
        graph = load_bench_dataset("cora", seed=0, scale=0.1)
        kwargs = method_kwargs("e2gcl", graph, epochs=5, seed=1)
        assert "num_clusters" in kwargs and "sample_size" in kwargs

    def test_tuned_table_applied_by_dataset_name(self):
        graph = load_bench_dataset("citeseer", seed=0, scale=0.1)
        kwargs = method_kwargs("e2gcl", graph, epochs=5, seed=1)
        assert kwargs["eta_hat"] == pytest.approx(1.0)

    def test_walk_methods_have_no_epochs(self):
        graph = load_bench_dataset("cora", seed=0, scale=0.1)
        kwargs = method_kwargs("deepwalk", graph, epochs=5, seed=1)
        assert "epochs" not in kwargs


class TestFitAndScore:
    def test_runs_and_pools_seeds(self):
        graph = load_bench_dataset("cora", seed=0, scale=0.15)
        result = fit_and_score("dgi", graph, epochs=2, trials=2, fit_seeds=2)
        assert len(result.accuracy.values) == 4  # 2 seeds x 2 splits
        assert result.fit_seconds > 0

    def test_overrides_reach_method(self):
        graph = load_bench_dataset("cora", seed=0, scale=0.15)
        result = fit_and_score(
            "e2gcl", graph, epochs=2, trials=1, fit_seeds=1,
            method_overrides=dict(node_ratio=0.1, num_clusters=5, sample_size=10),
        )
        assert 0.0 <= result.accuracy.mean <= 1.0
        assert result.selection_seconds > 0
