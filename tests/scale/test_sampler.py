"""NeighborSampler oracles: exactness, unbiasedness, RNG discipline.

Three claims are locked down here.  (1) The full-fanout sampler is not
approximately right, it is *bit-identical* to dense propagation at the
seed rows.  (2) With a fanout, per-neighbor inclusion is uniform
(chi-square) and the deg/fanout rescale makes aggregation unbiased.
(3) The exact sampler consumes zero randomness — the property the
full-graph training fallback's seed-for-seed equivalence rests on.
"""

import numpy as np
import pytest
from scipy.stats import chisquare

from repro.graphs import Graph, normalized_adjacency
from repro.scale import NeighborSampler, SampledBlock

pytestmark = pytest.mark.scale


@pytest.fixture()
def graph(small_er_graph):
    return small_er_graph


def block_propagate(block, features, hops):
    """L propagations over the block, returning the seed rows."""
    h = features[block.nodes]
    for _ in range(hops):
        h = block.a_n @ h
    return h[block.seeds_local]


class TestExactSampler:
    @pytest.mark.parametrize("hops", [1, 2, 3])
    def test_seed_rows_bit_identical_to_dense(self, graph, hops):
        a_n = normalized_adjacency(graph.adjacency)
        dense = graph.features.copy()
        for _ in range(hops):
            dense = a_n @ dense
        sampler = NeighborSampler(graph.adjacency, num_hops=hops)
        assert sampler.exact
        seeds = np.array([0, 4, 11], dtype=np.int64)
        block = sampler.sample(seeds)
        np.testing.assert_array_equal(
            block_propagate(block, graph.features, hops), dense[seeds])

    def test_matches_spliced_subgraph_oracle(self, graph):
        """Union block == the L-hop induced subgraph with parent degrees."""
        hops = 2
        seeds = np.array([3, 17], dtype=np.int64)
        block = NeighborSampler(graph.adjacency, num_hops=hops).sample(seeds)
        ego = np.union1d(graph.ego_nodes(3, hops), graph.ego_nodes(17, hops))
        np.testing.assert_array_equal(block.nodes, ego)
        np.testing.assert_array_equal(block.nodes[block.seeds_local], seeds)
        # Interior rows carry the exact full-graph normalized entries.
        a_n = normalized_adjacency(graph.adjacency).toarray()
        interior = np.union1d(
            graph.ego_nodes(3, hops - 1), graph.ego_nodes(17, hops - 1))
        dense_block = block.a_n.toarray()
        for v in interior:
            local = int(np.searchsorted(block.nodes, v))
            np.testing.assert_array_equal(
                dense_block[local], a_n[v, block.nodes])

    def test_fringe_rows_are_self_loop_only(self, graph):
        hops = 1
        block = NeighborSampler(graph.adjacency, num_hops=hops).sample(
            np.array([0]))
        fringe = np.setdiff1d(block.nodes, graph.ego_nodes(0, 0))
        dense = block.a_n.toarray()
        for v in fringe:
            local = int(np.searchsorted(block.nodes, v))
            row = dense[local]
            assert np.count_nonzero(row) == 1
            assert row[local] > 0

    def test_consumes_no_rng(self, graph):
        rng = np.random.default_rng(123)
        before = rng.bit_generator.state
        NeighborSampler(graph.adjacency, num_hops=2).sample(
            np.array([0, 1]), rng=rng)
        assert rng.bit_generator.state == before

    def test_isolated_seed(self, isolated_node_graph):
        block = NeighborSampler(
            isolated_node_graph.adjacency, num_hops=2).sample(np.array([3]))
        np.testing.assert_array_equal(block.nodes, [3])
        np.testing.assert_array_equal(block.a_n.toarray(), [[1.0]])


class TestSubsampling:
    def test_requires_rng(self, graph):
        sampler = NeighborSampler(graph.adjacency, fanouts=[2])
        with pytest.raises(ValueError, match="rng"):
            sampler.sample(np.array([0]))

    def test_fanout_bounds_kept_neighbors(self, star_graph):
        rng = np.random.default_rng(0)
        block = NeighborSampler(star_graph.adjacency, fanouts=[2]).sample(
            np.array([0]), rng=rng)
        # Hub keeps exactly 2 of its 5 neighbors (plus the self-loop).
        hub_local = int(block.seeds_local[0])
        row = block.a_n[hub_local].toarray().ravel()
        assert np.count_nonzero(row) == 3

    def test_rescale_exactly_deg_over_fanout(self, star_graph):
        """Kept hub entries carry the full-graph float times deg/fanout."""
        fanout = 2
        a_n = normalized_adjacency(star_graph.adjacency).toarray()
        rng = np.random.default_rng(1)
        block = NeighborSampler(
            star_graph.adjacency, fanouts=[fanout]).sample(
                np.array([0]), rng=rng)
        hub_local = int(block.seeds_local[0])
        row = block.a_n[hub_local].toarray().ravel()
        deg = 5.0
        for local, value in enumerate(row):
            if local == hub_local or value == 0.0:
                continue
            full = a_n[0, block.nodes[local]]
            assert value == full * (deg / fanout)

    def test_aggregation_unbiased(self, star_graph):
        """E[sampled hub row sum] == full hub row sum (GraphSAGE estimator)."""
        a_n = normalized_adjacency(star_graph.adjacency).toarray()
        full_sum = a_n[0].sum()
        rng = np.random.default_rng(7)
        sampler = NeighborSampler(star_graph.adjacency, fanouts=[2])
        trials = 2000
        total = 0.0
        for _ in range(trials):
            block = sampler.sample(np.array([0]), rng=rng)
            total += block.a_n[int(block.seeds_local[0])].sum()
        assert total / trials == pytest.approx(full_sum, rel=0.02)

    def test_chi_square_neighbor_uniformity(self, star_graph):
        """Each of the hub's 5 neighbors is kept with equal probability."""
        rng = np.random.default_rng(42)
        sampler = NeighborSampler(star_graph.adjacency, fanouts=[2])
        counts = np.zeros(6)
        trials = 3000
        for _ in range(trials):
            block = sampler.sample(np.array([0]), rng=rng)
            hub_local = int(block.seeds_local[0])
            row = block.a_n[hub_local].toarray().ravel()
            kept = block.nodes[np.flatnonzero(row)]
            counts[kept[kept != 0]] += 1
        observed = counts[1:]
        assert observed.sum() == trials * 2
        _, p_value = chisquare(observed)
        assert p_value > 0.01

    def test_seed_determinism(self, graph):
        sampler = NeighborSampler(graph.adjacency, fanouts=[3, 2])
        a = sampler.sample(np.arange(5), rng=np.random.default_rng(9))
        b = sampler.sample(np.arange(5), rng=np.random.default_rng(9))
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(a.a_n.toarray(), b.a_n.toarray())
        assert a.num_edges == b.num_edges

    def test_multi_seed_heterogeneous_degrees(self, star_graph):
        """A deg<=fanout seed sampled alongside a hub keeps its exact row.

        Regression: the deg/fanout rescale used to index the per-entry
        degree array with local row ids, so a low-degree seed batched with
        a hub inherited the hub's degree and its row was scaled by
        hub_deg/fanout instead of staying exact.
        """
        fanout = 2
        a_n = normalized_adjacency(star_graph.adjacency).toarray()
        sampler = NeighborSampler(star_graph.adjacency, fanouts=[fanout])
        hub_deg = 5.0
        for trial in range(20):
            block = sampler.sample(
                np.array([0, 1]), rng=np.random.default_rng(trial))
            # Leaf seed (deg 1 <= fanout): exact full-graph row, unscaled.
            leaf_local = int(block.seeds_local[1])
            np.testing.assert_array_equal(
                block.a_n[leaf_local].toarray().ravel(), a_n[1, block.nodes])
            # Hub seed (deg 5 > fanout): kept entries carry deg/fanout.
            hub_local = int(block.seeds_local[0])
            hub_row = block.a_n[hub_local].toarray().ravel()
            for local, value in enumerate(hub_row):
                if local == hub_local or value == 0.0:
                    continue
                assert value == a_n[0, block.nodes[local]] * (hub_deg / fanout)

    def test_isolated_seeds_with_fanout(self):
        """Zero-degree seeds in the frontier must not break the rescale.

        Regression: row-id indexing raised IndexError once isolated seeds
        pushed a connected row's local id past the entry count.
        """
        graph = Graph.from_edge_list(
            5, [(3, 4)], features=np.eye(5),
            labels=np.zeros(5, dtype=int), name="mostly-isolated")
        a_n = normalized_adjacency(graph.adjacency).toarray()
        block = NeighborSampler(graph.adjacency, fanouts=[1]).sample(
            np.array([0, 1, 2, 3]), rng=np.random.default_rng(0))
        dense = block.a_n.toarray()
        for seed, local in zip((0, 1, 2, 3), block.seeds_local):
            np.testing.assert_array_equal(
                dense[int(local)], a_n[seed, block.nodes])

    def test_small_degree_rows_not_rescaled(self, path_graph):
        """deg <= fanout rows keep full, unscaled neighborhoods."""
        rng = np.random.default_rng(3)
        block = NeighborSampler(path_graph.adjacency, fanouts=[5]).sample(
            np.array([2]), rng=rng)
        a_n = normalized_adjacency(path_graph.adjacency).toarray()
        local = int(block.seeds_local[0])
        np.testing.assert_array_equal(
            block.a_n[local].toarray().ravel(), a_n[2, block.nodes])


class TestValidation:
    def test_needs_fanouts_or_hops(self, graph):
        with pytest.raises(ValueError):
            NeighborSampler(graph.adjacency)

    def test_rejects_zero_fanout(self, graph):
        with pytest.raises(ValueError):
            NeighborSampler(graph.adjacency, fanouts=[0])

    def test_rejects_empty_seeds(self, graph):
        sampler = NeighborSampler(graph.adjacency, num_hops=1)
        with pytest.raises(ValueError):
            sampler.sample(np.empty(0, dtype=np.int64))

    def test_returns_sampled_block(self, graph):
        block = NeighborSampler(graph.adjacency, num_hops=1).sample(
            np.array([0]))
        assert isinstance(block, SampledBlock)
        assert block.num_edges >= 0
