"""Partition invariants for the BFS-grow sharder.

The contract: every node lands in exactly one part, every edge is
accounted for (intra-part or counted in the edge cut), and re-emitting
the per-part row gathers reassembles the original CSR bit-for-bit.
"""

import numpy as np
import pytest

from repro.graphs import random_graph
from repro.scale import GraphPartition, bfs_partition

pytestmark = pytest.mark.scale


@pytest.fixture()
def graph(small_er_graph):
    return small_er_graph


class TestAssignment:
    @pytest.mark.parametrize("num_parts", [1, 2, 3, 5])
    def test_every_node_assigned_exactly_once(self, graph, num_parts):
        part = bfs_partition(graph.adjacency, num_parts)
        assert part.assignment.shape == (graph.num_nodes,)
        assert part.assignment.min() >= 0
        assert part.assignment.max() < num_parts
        # parts are disjoint and cover everything
        all_nodes = np.concatenate(part.parts)
        np.testing.assert_array_equal(
            np.sort(all_nodes), np.arange(graph.num_nodes))
        for pid, nodes in enumerate(part.parts):
            np.testing.assert_array_equal(part.assignment[nodes], pid)

    def test_sizes_sum_to_num_nodes(self, graph):
        part = bfs_partition(graph.adjacency, 4)
        assert int(np.sum(part.sizes())) == graph.num_nodes

    def test_deterministic(self, graph):
        a = bfs_partition(graph.adjacency, 3)
        b = bfs_partition(graph.adjacency, 3)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_more_parts_than_nodes_clamps(self, triangle_graph):
        part = bfs_partition(triangle_graph.adjacency, 4)
        assert part.num_parts == 3
        np.testing.assert_array_equal(np.sort(part.sizes()), [1, 1, 1])

    def test_zero_parts_rejected(self, triangle_graph):
        with pytest.raises(ValueError):
            bfs_partition(triangle_graph.adjacency, 0)


class TestEdgeAccounting:
    def test_edge_cut_in_unit_interval(self, graph):
        part = bfs_partition(graph.adjacency, 3)
        assert 0.0 <= part.edge_cut <= 1.0

    def test_single_part_has_zero_cut_and_perfect_balance(self, graph):
        part = bfs_partition(graph.adjacency, 1)
        assert part.edge_cut == 0.0
        assert part.balance == 1.0

    def test_intra_plus_cut_edges_cover_all(self, graph):
        """Every undirected edge is either intra-part or cut — no third bin."""
        part = bfs_partition(graph.adjacency, 3)
        coo = graph.adjacency.tocoo()
        upper = coo.row < coo.col
        rows, cols = coo.row[upper], coo.col[upper]
        cut = np.sum(part.assignment[rows] != part.assignment[cols])
        intra = np.sum(part.assignment[rows] == part.assignment[cols])
        assert cut + intra == rows.size
        assert part.edge_cut == pytest.approx(cut / max(rows.size, 1))

    def test_balance_matches_max_over_ideal(self, graph):
        part = bfs_partition(graph.adjacency, 3)
        ideal = graph.num_nodes / 3
        assert part.balance == pytest.approx(part.sizes().max() / ideal)
        assert part.balance >= 1.0


class TestReassemble:
    @pytest.mark.parametrize("num_parts", [1, 2, 4])
    def test_round_trips_csr_bit_for_bit(self, graph, num_parts):
        part = bfs_partition(graph.adjacency, num_parts)
        rebuilt = part.reassemble(graph.adjacency)
        assert (rebuilt != graph.adjacency).nnz == 0
        np.testing.assert_array_equal(
            rebuilt.indptr, graph.adjacency.indptr)
        np.testing.assert_array_equal(
            rebuilt.indices, graph.adjacency.indices)
        np.testing.assert_array_equal(rebuilt.data, graph.adjacency.data)

    def test_round_trip_large(self):
        big = random_graph(400, edge_prob=0.02, seed=11, num_features=4)
        part = bfs_partition(big.adjacency, 8)
        rebuilt = part.reassemble(big.adjacency)
        assert (rebuilt != big.adjacency).nnz == 0


class TestAdversarialShapes:
    def test_disconnected_components(self, isolated_node_graph):
        part = bfs_partition(isolated_node_graph.adjacency, 2)
        all_nodes = np.concatenate(part.parts)
        np.testing.assert_array_equal(np.sort(all_nodes), np.arange(4))

    def test_star(self, star_graph):
        part = bfs_partition(star_graph.adjacency, 2)
        assert int(np.sum(part.sizes())) == star_graph.num_nodes
        assert 0.0 <= part.edge_cut <= 1.0

    def test_path(self, path_graph):
        """A path should shard into contiguous runs with a small cut."""
        part = bfs_partition(path_graph.adjacency, 2)
        assert part.edge_cut <= 0.5

    def test_single_node(self):
        from repro.graphs import Graph
        g = Graph.from_edge_list(1, [], features=np.ones((1, 2)),
                                 labels=np.zeros(1, dtype=int))
        part = bfs_partition(g.adjacency, 1)
        assert isinstance(part, GraphPartition)
        np.testing.assert_array_equal(part.assignment, [0])
        assert part.edge_cut == 0.0
