"""SampledTrainStep: the full-graph fallback oracle and the scaling knobs.

The anchor test is seed-for-seed equivalence: a SampledTrainStep left at
its defaults (no fanouts, no batching, global views) must retrace the
dense ``E2GCLTrainer`` loss trajectory *bit for bit* and land on the same
embeddings.  Every scaling knob — mini-batching, fanouts, local views,
uniform anchors, partition batching — is then exercised on top of that
anchor point.
"""

import numpy as np
import pytest

from repro.core import E2GCLConfig, E2GCLTrainer
from repro.scale import SampledTrainStep, ScaleConfig

pytestmark = pytest.mark.scale

CFG = dict(epochs=4, embedding_dim=8, hidden_dim=16, seed=0)


def losses(result):
    return np.array([rec.loss for rec in result.history])


class TestDenseFallback:
    def test_loss_trajectory_bit_identical(self, tiny_cora):
        dense = E2GCLTrainer(tiny_cora, E2GCLConfig(**CFG))
        dense_result = dense.train()
        sampled = SampledTrainStep(tiny_cora, E2GCLConfig(**CFG))
        assert sampled._base_sampler.exact
        sampled_result = sampled.train()
        np.testing.assert_array_equal(
            losses(sampled_result), losses(dense_result))
        np.testing.assert_array_equal(
            sampled.embed(tiny_cora), dense.embed(tiny_cora))

    def test_fallback_matches_with_infonce(self, tiny_cora):
        cfg = E2GCLConfig(loss="infonce", **CFG)
        dense_result = E2GCLTrainer(tiny_cora, cfg).train()
        sampled_result = SampledTrainStep(tiny_cora, cfg).train()
        np.testing.assert_array_equal(
            losses(sampled_result), losses(dense_result))

    def test_coreset_selection_identical_from_blockwise_r(self, tiny_cora):
        """Alg. 2 fed the out-of-core R picks the same anchors/weights."""
        dense = E2GCLTrainer(tiny_cora, E2GCLConfig(**CFG)).setup()
        sampled = SampledTrainStep(tiny_cora, E2GCLConfig(**CFG)).setup()
        np.testing.assert_array_equal(sampled._anchors, dense._anchors)
        np.testing.assert_array_equal(sampled._weights, dense._weights)


class TestBatchedTraining:
    def test_mini_batches_run_and_are_deterministic(self, tiny_cora):
        def run():
            step = SampledTrainStep(
                tiny_cora, E2GCLConfig(**CFG),
                scale=ScaleConfig(batch_size=16))
            result = step.train()
            return losses(result), step.embed(tiny_cora)

        loss_a, emb_a = run()
        loss_b, emb_b = run()
        assert np.all(np.isfinite(loss_a))
        np.testing.assert_array_equal(loss_a, loss_b)
        np.testing.assert_array_equal(emb_a, emb_b)

    def test_fanouts_run(self, tiny_cora):
        step = SampledTrainStep(
            tiny_cora, E2GCLConfig(**CFG),
            scale=ScaleConfig(batch_size=16, fanouts=[10, 5]))
        result = step.train()
        assert not step._base_sampler.exact
        assert np.all(np.isfinite(losses(result)))

    def test_batch_losses_differ_from_dense(self, tiny_cora):
        """Mini-batching is actually on: trajectory departs from dense."""
        dense_result = E2GCLTrainer(tiny_cora, E2GCLConfig(**CFG)).train()
        step = SampledTrainStep(
            tiny_cora, E2GCLConfig(**CFG), scale=ScaleConfig(batch_size=8))
        assert not np.array_equal(losses(step.train()), losses(dense_result))


class TestLocalViews:
    def test_local_mode_skips_score_tables(self, tiny_cora):
        step = SampledTrainStep(
            tiny_cora, E2GCLConfig(**CFG),
            scale=ScaleConfig(view_mode="local", batch_size=16))
        result = step.train()
        assert step._edge_table is None
        assert step._feature_table is None
        assert np.all(np.isfinite(losses(result)))

    def test_local_mode_deterministic(self, tiny_cora):
        def run():
            step = SampledTrainStep(
                tiny_cora, E2GCLConfig(**CFG),
                scale=ScaleConfig(view_mode="local", batch_size=16,
                                  fanouts=[5, 3]))
            return losses(step.train())

        np.testing.assert_array_equal(run(), run())


class TestAnchorModes:
    def test_uniform_budget(self, tiny_cora):
        step = SampledTrainStep(
            tiny_cora, E2GCLConfig(**CFG),
            scale=ScaleConfig(anchor_mode="uniform", anchor_budget=32))
        step.setup()
        assert step._anchors.size == 32
        assert np.unique(step._anchors).size == 32
        np.testing.assert_array_equal(step._anchors, np.sort(step._anchors))
        np.testing.assert_array_equal(step._weights, np.ones(32))

    def test_all_anchors(self, tiny_cora):
        step = SampledTrainStep(
            tiny_cora, E2GCLConfig(**CFG),
            scale=ScaleConfig(anchor_mode="all"))
        step.setup()
        assert step._anchors.size == tiny_cora.num_nodes

    def test_weight_map_zero_off_anchor(self, tiny_cora):
        step = SampledTrainStep(tiny_cora, E2GCLConfig(**CFG))
        step.setup()
        off_anchor = np.setdiff1d(
            np.arange(tiny_cora.num_nodes), step._anchors)
        assert np.all(step._weight_by_node[off_anchor] == 0.0)
        np.testing.assert_array_equal(
            step._weight_by_node[step._anchors], step._weights)


class TestPartitionBatching:
    def test_partition_built_and_respected(self, tiny_cora):
        parts = 4
        step = SampledTrainStep(
            tiny_cora, E2GCLConfig(**CFG),
            scale=ScaleConfig(partition_parts=parts, view_mode="local"))
        result = step.train()
        assert step.partition is not None
        assert step.partition.num_parts == parts
        assert np.all(np.isfinite(losses(result)))
        # Each epoch batch stays within one part (modulo singleton merges).
        batches = step._epoch_batches()
        assignment = step.partition.assignment
        whole = sum(np.unique(assignment[b]).size == 1 for b in batches)
        assert whole >= len(batches) - 1


class TestValidation:
    def test_fanout_arity_must_match_depth(self, tiny_cora):
        with pytest.raises(ValueError, match="fanouts"):
            SampledTrainStep(
                tiny_cora, E2GCLConfig(**CFG),
                scale=ScaleConfig(fanouts=[5]))

    def test_scale_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ScaleConfig(view_mode="nope")
        with pytest.raises(ValueError):
            ScaleConfig(anchor_mode="nope")
        with pytest.raises(ValueError):
            ScaleConfig(batch_size=1)
        with pytest.raises(ValueError):
            ScaleConfig(local_edge_drop=1.0)
        with pytest.raises(ValueError):
            ScaleConfig(local_feature_mask=-0.1)

    def test_method_wrapper_requires_sampled_flag(self):
        from repro.baselines import get_method
        with pytest.raises(ValueError, match="sampled"):
            get_method("e2gcl", batch_size=16)

    def test_method_wrapper_builds_sampled_step(self, tiny_cora):
        from repro.baselines import get_method
        method = get_method("e2gcl", sampled=True, batch_size=16, **CFG)
        method.fit(tiny_cora)
        assert isinstance(method.trainer, SampledTrainStep)
        assert np.all(np.isfinite(method.embed(tiny_cora)))
