"""FeatureStore and out-of-core ``A^L X``: bit-identity with the dense path.

The headline oracle: ``blockwise_propagated_features`` must equal
:func:`repro.graphs.adjacency.propagated_features` via ``np.array_equal``
— not allclose — for every chunk size and for the memmap path, because
scipy's CSR row-slice matmul runs the exact per-row kernel of the full
product.  Training correctness downstream (coreset selection consumes R)
depends on this being exact, not approximate.
"""

import numpy as np
import pytest

from repro.graphs.adjacency import propagated_features
from repro.scale import (
    DEFAULT_CHUNK_BUDGET,
    FeatureStore,
    blockwise_propagated_features,
    rows_per_chunk,
)

pytestmark = pytest.mark.scale


@pytest.fixture()
def graph(small_er_graph):
    return small_er_graph


class TestRowsPerChunk:
    def test_basic_division(self):
        assert rows_per_chunk(16, 8, 1024) == 8

    def test_at_least_one_row(self):
        assert rows_per_chunk(10_000, 8, 16) == 1

    def test_zero_features_does_not_divide_by_zero(self):
        assert rows_per_chunk(0, 8, 1024) >= 1


class TestFeatureStore:
    def test_gather_matches_fancy_indexing(self, graph):
        store = FeatureStore(graph.features)
        idx = np.array([5, 0, 5, 29])
        np.testing.assert_array_equal(
            store.gather(idx), graph.features[idx])
        assert not store.on_disk

    def test_chunk_and_as_array(self, graph):
        store = FeatureStore(graph.features)
        np.testing.assert_array_equal(
            store.chunk(3, 9), graph.features[3:9])
        np.testing.assert_array_equal(store.as_array(), graph.features)
        assert store.shape == graph.features.shape
        assert store.num_rows == graph.num_nodes
        assert store.num_features == graph.features.shape[1]

    def test_memmapped_round_trip(self, graph, tmp_path):
        store = FeatureStore.memmapped(graph.features, tmp_path)
        assert store.on_disk
        assert (tmp_path / "features.npy").exists()
        np.testing.assert_array_equal(store.as_array(), graph.features)
        idx = np.array([1, 17, 2])
        np.testing.assert_array_equal(store.gather(idx), graph.features[idx])

    def test_from_path(self, graph, tmp_path):
        path = tmp_path / "x.npy"
        np.save(path, graph.features)
        store = FeatureStore(path)
        assert store.on_disk
        np.testing.assert_array_equal(store.as_array(), graph.features)

    def test_rejects_bad_shapes_and_budgets(self, graph):
        with pytest.raises(ValueError):
            FeatureStore(graph.features.ravel())
        with pytest.raises(ValueError):
            FeatureStore(graph.features, chunk_budget_bytes=0)

    def test_rows_per_chunk_respects_budget(self, graph):
        row_bytes = graph.features.shape[1] * graph.features.dtype.itemsize
        store = FeatureStore(graph.features, chunk_budget_bytes=4 * row_bytes)
        assert store.rows_per_chunk() == 4


class TestBlockwisePropagation:
    @pytest.mark.parametrize("hops", [0, 1, 2, 3])
    def test_bit_identical_to_dense(self, graph, hops):
        dense = propagated_features(graph, hops)
        blockwise = blockwise_propagated_features(
            graph.adjacency, graph.features, hops)
        assert np.array_equal(blockwise, dense)

    @pytest.mark.parametrize("rows", [1, 3, 7, 1000])
    def test_every_chunk_size_is_exact(self, graph, rows):
        """Chunk boundaries must never change a single output bit."""
        dense = propagated_features(graph, 2)
        row_bytes = graph.features.shape[1] * 8
        blockwise = blockwise_propagated_features(
            graph.adjacency, graph.features, 2,
            chunk_budget_bytes=rows * row_bytes)
        assert np.array_equal(blockwise, dense)

    def test_memmap_path_is_exact(self, graph, tmp_path):
        dense = propagated_features(graph, 3)
        blockwise = blockwise_propagated_features(
            graph.adjacency, graph.features, 3, out_dir=tmp_path)
        assert isinstance(blockwise, np.memmap)
        assert np.array_equal(np.asarray(blockwise), dense)
        assert (tmp_path / "propagate_ping.npy").exists()

    def test_accepts_feature_store_input(self, graph, tmp_path):
        dense = propagated_features(graph, 2)
        store = FeatureStore.memmapped(graph.features, tmp_path)
        blockwise = blockwise_propagated_features(
            graph.adjacency, store, 2)
        assert np.array_equal(np.asarray(blockwise), dense)

    def test_row_normalization_method(self, graph):
        dense = propagated_features(graph, 2, method="row")
        blockwise = blockwise_propagated_features(
            graph.adjacency, graph.features, 2, method="row")
        assert np.array_equal(blockwise, dense)

    def test_rejects_negative_hops(self, graph):
        with pytest.raises(ValueError):
            blockwise_propagated_features(graph.adjacency, graph.features, -1)

    def test_isolated_nodes(self, isolated_node_graph):
        g = isolated_node_graph
        dense = propagated_features(g, 2)
        blockwise = blockwise_propagated_features(g.adjacency, g.features, 2)
        assert np.array_equal(blockwise, dense)

    def test_default_budget_constant_sane(self):
        assert DEFAULT_CHUNK_BUDGET == 64 * 1024 * 1024
