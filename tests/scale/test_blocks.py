"""Oracle tests for the shared CSR block-extraction kernels.

Every kernel is checked against a naive scipy construction, and the fused
multi-source builder against independently built per-seed blocks — plus a
regression pinning the serve encoder bit-identical through the extraction
move (its batch outputs must still equal the offline embeddings exactly).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import normalized_adjacency
from repro.scale import (
    BlockDiagonal,
    block_csr,
    fused_ego_blocks,
    gather_rows,
    grow_ego,
    normalized_block,
    sub_triplets,
    true_degrees,
)

pytestmark = pytest.mark.scale


@pytest.fixture()
def graph(small_er_graph):
    return small_er_graph


class TestGatherRows:
    def test_matches_scipy_row_slice(self, graph):
        adj = graph.adjacency
        nodes = np.array([0, 3, 7], dtype=np.int64)
        rows, cols, vals = gather_rows(adj, nodes)
        dense = adj[nodes].toarray()
        rebuilt = np.zeros_like(dense)
        rebuilt[rows, cols] = vals
        np.testing.assert_array_equal(rebuilt, dense)

    def test_empty_rows(self, isolated_node_graph):
        adj = isolated_node_graph.adjacency
        isolated = np.flatnonzero(true_degrees(adj) == 0)
        rows, cols, vals = gather_rows(adj, isolated)
        assert rows.size == cols.size == vals.size == 0

    def test_column_order_is_ascending_within_rows(self, graph):
        rows, cols, _ = gather_rows(
            graph.adjacency, np.arange(graph.num_nodes, dtype=np.int64))
        for r in np.unique(rows):
            np.testing.assert_array_equal(
                cols[rows == r], np.sort(cols[rows == r]))


class TestGrowEgo:
    def test_matches_graph_ego_nodes(self, graph):
        for seed in (0, 5, graph.num_nodes - 1):
            for hops in (0, 1, 2, 3):
                expected = graph.ego_nodes(seed, hops)
                got = grow_ego(graph.adjacency, np.array([seed]), hops)
                np.testing.assert_array_equal(got, np.sort(expected))

    def test_multi_seed_union(self, graph):
        seeds = np.array([0, 4])
        got = grow_ego(graph.adjacency, seeds, 2)
        expected = np.union1d(graph.ego_nodes(0, 2), graph.ego_nodes(4, 2))
        np.testing.assert_array_equal(got, expected)


class TestSubTriplets:
    def test_matches_scipy_submatrix_minus_diagonal(self, graph):
        nodes = np.array([1, 2, 5, 8], dtype=np.int64)
        rows, cols, vals = sub_triplets(graph.adjacency, nodes)
        sub = graph.adjacency[nodes][:, nodes].toarray()
        np.fill_diagonal(sub, 0.0)
        rebuilt = np.zeros_like(sub)
        rebuilt[rows, cols] = vals
        np.testing.assert_array_equal(rebuilt, sub)


class TestNormalizedBlock:
    def test_full_graph_block_equals_normalized_adjacency(self, graph):
        """Taking the whole graph as one block must reproduce A_n exactly."""
        adj = graph.adjacency
        nodes = np.arange(graph.num_nodes, dtype=np.int64)
        rows, cols, vals = sub_triplets(adj, nodes)
        rows, cols, vals = normalized_block(rows, cols, vals, true_degrees(adj))
        block = block_csr(rows, cols, vals, graph.num_nodes)
        dense_a_n = normalized_adjacency(adj)
        assert (block != dense_a_n).nnz == 0
        np.testing.assert_array_equal(block.toarray(), dense_a_n.toarray())

    def test_sub_block_entries_are_exact_full_graph_floats(self, graph):
        adj = graph.adjacency
        nodes = grow_ego(adj, np.array([0]), 2)
        rows, cols, vals = sub_triplets(adj, nodes)
        rows, cols, vals = normalized_block(
            rows, cols, vals, true_degrees(adj)[nodes])
        a_n = normalized_adjacency(adj).toarray()
        block = block_csr(rows, cols, vals, nodes.size).toarray()
        np.testing.assert_array_equal(block, a_n[np.ix_(nodes, nodes)])

    def test_isolated_node_gets_unit_self_loop(self):
        rows, cols, vals = normalized_block(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
            np.empty(0), np.zeros(1))
        block = block_csr(rows, cols, vals, 1).toarray()
        np.testing.assert_array_equal(block, [[1.0]])


class TestFusedEgoBlocks:
    def _naive_block(self, adj, degrees, center, radius):
        nodes = grow_ego(adj, np.array([center]), radius)
        rows, cols, vals = sub_triplets(adj, nodes)
        rows, cols, vals = normalized_block(rows, cols, vals, degrees[nodes])
        return nodes, block_csr(rows, cols, vals, nodes.size)

    def test_matches_per_seed_naive_blocks(self, graph):
        adj = graph.adjacency
        degrees = true_degrees(adj)
        centers = np.array([0, 3, 9], dtype=np.int64)
        fused = fused_ego_blocks(adj, centers, radius=2, degrees=degrees)
        assert isinstance(fused, BlockDiagonal)
        matrix = fused.matrix()
        assert fused.offsets[0] == 0
        assert fused.offsets[-1] == fused.num_rows
        for i, center in enumerate(centers):
            nodes, naive = self._naive_block(adj, degrees, int(center), 2)
            lo, hi = int(fused.offsets[i]), int(fused.offsets[i + 1])
            np.testing.assert_array_equal(fused.nodes[lo:hi], nodes)
            np.testing.assert_array_equal(
                matrix[lo:hi, lo:hi].toarray(), naive.toarray())
            # The block is purely diagonal: nothing outside its window.
            assert matrix[lo:hi].sum() == pytest.approx(
                matrix[lo:hi, lo:hi].sum())
            assert nodes[fused.centers[i]] == center

    def test_duplicate_centers_get_independent_blocks(self, graph):
        centers = np.array([2, 2], dtype=np.int64)
        fused = fused_ego_blocks(graph.adjacency, centers, radius=1)
        lo0, hi0, hi1 = (int(fused.offsets[0]), int(fused.offsets[1]),
                         int(fused.offsets[2]))
        np.testing.assert_array_equal(
            fused.nodes[lo0:hi0], fused.nodes[hi0:hi1])
        assert fused.centers[0] == fused.centers[1]


class TestServeRegression:
    """The extraction move must not perturb serve outputs by a single bit."""

    def test_batch_encode_bit_identical_to_offline(self, tiny_cora, tmp_path):
        from repro.baselines import get_method
        from repro.core.serialization import export_encoder
        from repro.engine import PeriodicCheckpoint
        from repro.serve import InductiveEncoder

        path = tmp_path / "e2gcl.npz"
        method = get_method("e2gcl", epochs=2, embedding_dim=8,
                            hidden_dim=16, seed=0)
        method.fit(tiny_cora, hooks=[PeriodicCheckpoint(str(path), every=1)])
        offline = np.asarray(method.embed(tiny_cora))
        encoder = InductiveEncoder(export_encoder(path), tiny_cora)
        nodes = [0, 7, 3, tiny_cora.num_nodes - 1]
        batch = encoder.encode_batch(nodes)
        for node, embedding in zip(nodes, batch):
            np.testing.assert_array_equal(embedding, offline[node])
            np.testing.assert_array_equal(
                encoder.encode_node(node), offline[node])


class TestBlockCsr:
    def test_duplicate_triplets_are_summed(self):
        block = block_csr(
            np.array([0, 0]), np.array([1, 1]), np.array([0.25, 0.5]), 2)
        assert block[0, 1] == 0.75
        assert isinstance(block, sp.csr_matrix)
