"""Trace summarization: aggregation, epoch table, rendering, parse errors."""

import pytest

from repro.obs import (
    SpanStat,
    Tracer,
    read_events,
    render_summary,
    summarize_events,
    summarize_trace,
)

EVENTS = [
    {"type": "manifest", "seed": 3, "method": "grace",
     "dataset": {"name": "cora", "num_nodes": 35, "sha256": "ab" * 32},
     "packages": {"repro": "1.0.0", "numpy": "2.0"}},
    {"type": "span", "name": "setup", "id": 1, "parent": 2, "depth": 1,
     "t_start": 0.0, "seconds": 0.5},
    {"type": "span", "name": "epoch", "id": 3, "parent": 2, "depth": 1,
     "t_start": 0.5, "seconds": 0.2, "epoch": 0},
    {"type": "span", "name": "epoch", "id": 4, "parent": 2, "depth": 1,
     "t_start": 0.7, "seconds": 0.4, "epoch": 1, "peak_bytes": 2048},
    {"type": "span", "name": "run", "id": 2, "parent": None, "depth": 0,
     "t_start": 0.0, "seconds": 1.1},
    {"type": "metric", "name": "loss", "value": 2.0, "t": 0.7, "epoch": 0},
    {"type": "metric", "name": "loss", "value": 1.5, "t": 1.1, "epoch": 1},
    {"type": "metric", "name": "grad_norm", "value": 0.3, "t": 1.1, "epoch": 1},
    {"type": "metric", "name": "untagged", "value": 9.0, "t": 1.2},
    {"type": "counter", "name": "scope.epoch", "calls": 2, "seconds": 0.6,
     "peak_bytes": 0},
    {"type": "event", "name": "stop", "t": 1.1, "reason": "done"},
]


class TestSummarizeEvents:
    def test_span_aggregation(self):
        summary = summarize_events(EVENTS)
        epoch = summary.spans["epoch"]
        assert epoch.calls == 2
        assert abs(epoch.total_seconds - 0.6) < 1e-12
        assert abs(epoch.max_seconds - 0.4) < 1e-12
        assert abs(epoch.mean_seconds - 0.3) < 1e-12
        assert epoch.peak_bytes == 2048
        assert summary.num_events == len(EVENTS)

    def test_slowest_spans_order(self):
        summary = summarize_events(EVENTS)
        names = [s.name for s in summary.slowest_spans(2)]
        assert names == ["run", "epoch"]

    def test_epoch_table_joins_series(self):
        rows = summarize_events(EVENTS).epoch_table()
        assert rows == [
            {"epoch": 0, "loss": 2.0},
            {"epoch": 1, "loss": 1.5, "grad_norm": 0.3},
        ]

    def test_manifest_counters_markers(self):
        summary = summarize_events(EVENTS)
        assert summary.manifest["seed"] == 3
        assert summary.counters[0]["name"] == "scope.epoch"
        assert summary.markers[0]["reason"] == "done"

    def test_empty_stream(self):
        summary = summarize_events([])
        assert summary.manifest is None
        assert summary.spans == {} and summary.num_events == 0


class TestRoundTrip:
    def test_tracer_file_through_summarizer(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(path)
        tracer.manifest({"seed": 0})
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        tracer.metric("loss", 1.0, epoch=0)
        tracer.close()
        summary = summarize_trace(path)
        assert summary.manifest == {"seed": 0}
        assert summary.spans["inner"].max_depth == 1
        assert summary.epoch_table() == [{"epoch": 0, "loss": 1.0}]

    def test_read_events_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "event", "name": "ok", "t": 0}\n{oops\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_events(path)

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"type": "event", "name": "ok", "t": 0}\n\n')
        assert len(read_events(path)) == 1


class TestRenderSummary:
    def test_contains_sections(self):
        text = render_summary(summarize_events(EVENTS))
        assert "dataset cora" in text
        assert "method grace" in text
        assert "seed 3" in text
        assert "slowest spans" in text
        assert "per-epoch metrics" in text
        assert "loss" in text and "grad_norm" in text
        assert "perf counters" in text

    def test_missing_manifest_flagged(self):
        text = render_summary(summarize_events(EVENTS[1:]))
        assert "manifest: MISSING" in text

    def test_top_limits_span_rows(self):
        summary = summarize_events(EVENTS)
        text = render_summary(summary, top=1)
        lines = [l for l in text.splitlines() if l.startswith("  run")]
        assert lines
        assert not any(l.startswith("  setup") for l in text.splitlines())

    def test_span_stat_mean_of_empty(self):
        assert SpanStat("x").mean_seconds == 0.0
