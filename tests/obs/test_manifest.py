"""Manifest building: fingerprints, versions, JSON coercion, completeness."""

import json
from dataclasses import dataclass

import numpy as np

from repro.graphs import load_dataset
from repro.obs import build_manifest, dataset_fingerprint, jsonable, package_versions


class TestDatasetFingerprint:
    def test_deterministic(self, tiny_cora):
        assert dataset_fingerprint(tiny_cora) == dataset_fingerprint(tiny_cora)

    def test_fields(self, tiny_cora):
        fp = dataset_fingerprint(tiny_cora)
        assert fp["name"] == "cora"
        assert fp["num_nodes"] == tiny_cora.num_nodes
        assert fp["num_edges"] == tiny_cora.num_edges
        assert fp["num_features"] == tiny_cora.num_features
        assert len(fp["sha256"]) == 64

    def test_sensitive_to_content(self):
        a = load_dataset("cora", seed=3, scale=0.25)
        b = load_dataset("cora", seed=4, scale=0.25)
        assert dataset_fingerprint(a)["sha256"] != dataset_fingerprint(b)["sha256"]

    def test_sensitive_to_features(self, tiny_cora):
        before = dataset_fingerprint(tiny_cora)["sha256"]
        perturbed = tiny_cora.features.copy()
        perturbed[0, 0] += 1.0
        clone = type(tiny_cora)(
            adjacency=tiny_cora.adjacency, features=perturbed,
            labels=tiny_cora.labels, name=tiny_cora.name,
        )
        assert dataset_fingerprint(clone)["sha256"] != before


class TestPackageVersions:
    def test_core_packages_present(self):
        versions = package_versions()
        for key in ("repro", "numpy", "scipy", "python"):
            assert versions[key]


class TestJsonable:
    def test_primitives_pass_through(self):
        assert jsonable({"a": 1, "b": [1.5, None, "x"]}) == {"a": 1, "b": [1.5, None, "x"]}

    def test_numpy_coerced(self):
        out = jsonable({"s": np.float64(2.5), "arr": np.arange(3)})
        assert out == {"s": 2.5, "arr": [0, 1, 2]}

    def test_dataclass_flattened(self):
        @dataclass
        class Cfg:
            lr: float
            dims: tuple

        assert jsonable(Cfg(lr=0.01, dims=(8, 16))) == {"lr": 0.01, "dims": [8, 16]}

    def test_fallback_is_repr(self):
        value = jsonable({"fn": len})
        assert isinstance(value["fn"], str)

    def test_result_is_json_serializable(self, tiny_cora):
        manifest = build_manifest(
            config={"rng": np.random.default_rng(0)}, seed=0, graph=tiny_cora
        )
        json.dumps(manifest)  # must not raise


class TestBuildManifest:
    def test_completeness(self, tiny_cora):
        manifest = build_manifest(
            config={"epochs": 3}, seed=7, graph=tiny_cora,
            extra={"method": "e2gcl"},
        )
        for key in ("created_unix", "argv", "platform", "packages",
                    "seed", "config", "dataset"):
            assert key in manifest, f"manifest missing {key}"
        assert manifest["seed"] == 7
        assert manifest["config"] == {"epochs": 3}
        assert manifest["dataset"]["sha256"]
        assert manifest["method"] == "e2gcl"

    def test_minimal_manifest(self):
        manifest = build_manifest()
        assert manifest["config"] is None and manifest["dataset"] is None
        assert manifest["packages"]["numpy"]
