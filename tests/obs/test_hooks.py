"""TraceHook / MetricsHook riding a real engine run."""

import pytest

from repro.baselines import get_method
from repro.engine import PeriodicCheckpoint, StopAfter
from repro.obs import MetricsHook, TraceHook, Tracer, build_manifest, current_tracer

FAST = dict(epochs=3, embedding_dim=8, hidden_dim=16, seed=0)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    leaked = current_tracer()
    if leaked is not None:
        leaked.deactivate()


def _fit_traced(graph, extra_hooks=(), manifest=None, **kwargs):
    tracer = Tracer()
    params = dict(FAST)
    params.update(kwargs)
    method = get_method("grace", **params)
    hooks = [TraceHook(tracer, manifest=manifest), MetricsHook(tracer)]
    hooks.extend(extra_hooks)
    method.fit(graph, hooks=hooks)
    return tracer


class TestTraceHook:
    def test_manifest_is_first_event(self, tiny_cora):
        tracer = _fit_traced(tiny_cora, manifest=build_manifest(seed=0))
        assert tracer.events[0]["type"] == "manifest"
        assert tracer.events[0]["seed"] == 0

    def test_default_manifest_when_none_given(self, tiny_cora):
        tracer = _fit_traced(tiny_cora)
        assert tracer.events[0]["type"] == "manifest"
        assert tracer.events[0]["packages"]["numpy"]

    def test_run_and_epoch_spans(self, tiny_cora):
        tracer = _fit_traced(tiny_cora)
        spans = [e for e in tracer.events if e["type"] == "span"]
        run_spans = [s for s in spans if s["name"] == "run"]
        epoch_spans = [s for s in spans if s["name"] == "epoch"]
        assert len(run_spans) == 1
        assert len(epoch_spans) == FAST["epochs"]
        assert [s["epoch"] for s in epoch_spans] == [0, 1, 2]
        run_id = run_spans[0]["id"]
        assert all(s["parent"] == run_id for s in epoch_spans)

    def test_perf_scopes_nest_inside_run(self, tiny_cora):
        tracer = _fit_traced(tiny_cora)
        spans = {e["name"] for e in tracer.events if e["type"] == "span"}
        assert "method.grace.setup" in spans
        assert "method.grace.epoch" in spans

    def test_counter_deltas_on_stop(self, tiny_cora):
        tracer = _fit_traced(tiny_cora)
        counters = {e["name"] for e in tracer.events if e["type"] == "counter"}
        assert "method.grace.epoch" in counters

    def test_stop_reason_marker(self, tiny_cora):
        tracer = _fit_traced(tiny_cora, extra_hooks=[StopAfter(0)])
        markers = [e for e in tracer.events if e["type"] == "event"]
        stops = [m for m in markers if m["name"] == "stop"]
        assert len(stops) == 1 and "epoch 0" in stops[0]["reason"]
        # Only the completed epoch got a span.
        assert sum(1 for e in tracer.events
                   if e["type"] == "span" and e["name"] == "epoch") == 1

    def test_checkpoint_marker(self, tiny_cora, tmp_path):
        ckpt = tmp_path / "run.npz"
        tracer = _fit_traced(
            tiny_cora, extra_hooks=[PeriodicCheckpoint(ckpt, every=2)]
        )
        markers = [e for e in tracer.events
                   if e["type"] == "event" and e["name"] == "checkpoint"]
        assert markers and markers[0]["path"] == str(ckpt)

    def test_hook_releases_activation(self, tiny_cora):
        tracer = _fit_traced(tiny_cora)
        assert current_tracer() is None
        assert not tracer.active

    def test_preactivated_tracer_keeps_ownership(self, tiny_cora):
        tracer = Tracer().activate()
        try:
            method = get_method("grace", **FAST)
            method.fit(tiny_cora, hooks=[TraceHook(tracer)])
            # The hook must not steal or release an activation it didn't own.
            assert current_tracer() is tracer
        finally:
            tracer.deactivate()


class TestMetricsHook:
    def test_per_epoch_series(self, tiny_cora):
        tracer = _fit_traced(tiny_cora)
        metrics = {}
        for event in tracer.events:
            if event["type"] == "metric":
                metrics.setdefault(event["name"], []).append(event)
        for name in ("loss", "elapsed_seconds", "grad_norm"):
            assert len(metrics[name]) == FAST["epochs"], name
            assert [m["epoch"] for m in metrics[name]] == [0, 1, 2]
        assert all(m["value"] > 0 for m in metrics["grad_norm"])

    def test_grad_norms_can_be_disabled(self, tiny_cora):
        tracer = Tracer()
        method = get_method("grace", **FAST)
        method.fit(tiny_cora, hooks=[TraceHook(tracer),
                                     MetricsHook(tracer, grad_norms=False)])
        names = {e["name"] for e in tracer.events if e["type"] == "metric"}
        assert "loss" in names and "grad_norm" not in names

    def test_optimizer_free_method_skips_grad_norm(self, tiny_cora):
        tracer = Tracer()
        method = get_method("deepwalk", seed=0, embedding_dim=8)
        method.fit(tiny_cora, hooks=[TraceHook(tracer), MetricsHook(tracer)])
        names = {e["name"] for e in tracer.events if e["type"] == "metric"}
        assert "grad_norm" not in names
