"""Tracer behaviour: span nesting, event shapes, activation, overhead."""

import time

import numpy as np
import pytest

from repro.obs import Tracer, current_tracer, emit_event, emit_metric, span
from repro.obs.summary import read_events
from repro.obs.tracer import _NOOP
from repro.perf import record, report


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """A test that dies mid-span must not leave a global tracer behind."""
    yield
    leaked = current_tracer()
    if leaked is not None:
        leaked.deactivate()


class TestSpans:
    def test_nesting_and_ordering(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        names = [e["name"] for e in tracer.events]
        # Spans are emitted at close: children precede their parents.
        assert names == ["inner", "middle", "sibling", "outer"]
        by_name = {e["name"]: e for e in tracer.events}
        assert by_name["outer"]["parent"] is None and by_name["outer"]["depth"] == 0
        assert by_name["middle"]["parent"] == by_name["outer"]["id"]
        assert by_name["inner"]["parent"] == by_name["middle"]["id"]
        assert by_name["inner"]["depth"] == 2
        assert by_name["sibling"]["parent"] == by_name["outer"]["id"]
        ids = [e["id"] for e in tracer.events]
        assert len(set(ids)) == len(ids)

    def test_span_payload_shape(self):
        tracer = Tracer()
        with tracer.span("work", epoch=3):
            time.sleep(0.001)
        (event,) = tracer.events
        assert event["type"] == "span"
        assert event["epoch"] == 3
        assert event["seconds"] >= 0.001
        assert event["t_start"] >= 0.0

    def test_metric_event_counter_manifest_shapes(self):
        tracer = Tracer()
        tracer.metric("loss", np.float64(1.5), epoch=0)
        tracer.event("checkpoint", path="x.npz")
        tracer.counter("scope.epoch", 3, 0.25)
        tracer.manifest({"seed": 7})
        kinds = [e["type"] for e in tracer.events]
        assert kinds == ["metric", "event", "counter", "manifest"]
        metric = tracer.events[0]
        assert metric["value"] == 1.5 and metric["epoch"] == 0 and metric["t"] >= 0
        assert tracer.events[2]["calls"] == 3
        assert tracer.events[3]["seed"] == 7


class TestJsonlRoundTrip:
    def test_file_matches_memory(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(path)
        tracer.manifest({"seed": 1})
        with tracer.span("a", note="hi"):
            tracer.metric("loss", 0.5, epoch=0)
        tracer.close()
        assert read_events(path) == tracer.events

    def test_numpy_attrs_serialize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(path)
        tracer.metric("acc", np.float32(0.75), epoch=np.int64(2))
        tracer.close()
        (event,) = read_events(path)
        assert event["epoch"] == 2 and abs(event["value"] - 0.75) < 1e-6

    def test_events_after_close_stay_in_memory(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tracer = Tracer(path)
        tracer.event("first")
        tracer.close()
        tracer.event("late")
        assert len(read_events(path)) == 1
        assert len(tracer.events) == 2


class TestActivation:
    def test_exclusive_activation(self):
        first, second = Tracer(), Tracer()
        first.activate()
        try:
            assert first.active and current_tracer() is first
            with pytest.raises(RuntimeError):
                second.activate()
        finally:
            first.deactivate()
        assert current_tracer() is None

    def test_deactivate_foreign_tracer_is_noop(self):
        owner, other = Tracer(), Tracer()
        owner.activate()
        try:
            other.deactivate()
            assert current_tracer() is owner
        finally:
            owner.deactivate()

    def test_context_manager_lifecycle(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with Tracer(path) as tracer:
            assert tracer.active
            tracer.event("inside")
        assert not tracer.active
        assert len(read_events(path)) == 1

    def test_module_helpers_route_to_active_tracer(self):
        with Tracer() as tracer:
            with span("step"):
                emit_metric("loss", 1.0, epoch=0)
            emit_event("mark")
        kinds = sorted(e["type"] for e in tracer.events)
        assert kinds == ["event", "metric", "span"]


class TestPerfBridge:
    def test_record_scopes_become_spans(self):
        with Tracer() as tracer:
            with record("bridge.outer"):
                with record("bridge.inner"):
                    pass
        names = [e["name"] for e in tracer.events]
        assert names == ["bridge.inner", "bridge.outer"]
        # The perf counters themselves still accumulated.
        assert report()["bridge.outer"]["calls"] >= 1

    def test_record_without_tracer_emits_nothing(self):
        probe = Tracer()  # never activated
        with record("bridge.untraced"):
            pass
        assert probe.events == []
        assert current_tracer() is None


class TestDisabledTracingOverhead:
    def test_off_means_zero_events(self, tiny_cora):
        from repro.baselines import get_method

        probe = Tracer()  # constructed but never activated
        get_method("grace", epochs=2, embedding_dim=8, hidden_dim=16,
                   seed=0).fit(tiny_cora)
        assert probe.events == []
        assert current_tracer() is None

    def test_noop_span_is_shared_singleton(self):
        assert span("anything") is _NOOP
        assert span("anything", epoch=1) is _NOOP
        emit_metric("dropped", 1.0)  # must not raise or allocate a tracer
        assert current_tracer() is None

    def test_disabled_overhead_under_five_percent(self, tiny_cora):
        """Projected cost of the no-op span sites is <5% of a smoke fit.

        Every ``repro.perf.record`` call is a potential span site; with
        tracing off each costs one global read.  We measure the fit, count
        how many sites it actually hit, measure the per-call no-op cost,
        and assert the product stays under the 5%% budget with room to
        spare.
        """
        from repro.baselines import get_method

        before = report()
        t0 = time.perf_counter()
        get_method("grace", epochs=3, embedding_dim=8, hidden_dim=16,
                   seed=0).fit(tiny_cora)
        fit_seconds = time.perf_counter() - t0
        after = report()
        site_hits = sum(
            stats["calls"] - before.get(name, {}).get("calls", 0)
            for name, stats in after.items()
        )
        assert site_hits > 0

        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with span("noop"):
                pass
        per_call = (time.perf_counter() - t0) / n
        assert site_hits * per_call < 0.05 * fit_seconds
