"""HealthGuard: detection (NaN loss/grads/params, spikes) and policies."""

import time

import numpy as np
import pytest

from repro.autograd import Parameter
from repro.engine import TrainLoop, TrainStep, TrainingFailure
from repro.resilience import HealthError, HealthGuard


class ScriptedStep(TrainStep):
    """Replay a fixed loss sequence (no parameters, no optimizer)."""

    def __init__(self, losses):
        self.losses = list(losses)

    def run_epoch(self, loop, epoch):
        return self.losses[epoch]


class PoisonableStep(TrainStep):
    """Quadratic step whose parameter can be poisoned at a chosen epoch."""

    def __init__(self, poison_at=None):
        self.w = Parameter(np.zeros(3))
        self.poison_at = poison_at

    def trainable_parameters(self):
        return [self.w]

    def compute_loss(self, loop, epoch):
        if epoch == self.poison_at:
            self.w.data[0] = np.nan
        return ((self.w - 1.0) ** 2.0).mean()

    def checkpoint_components(self):
        return {"w": self.w}


class TestValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            HealthGuard(policy="explode")

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError, match="window"):
            HealthGuard(window=1)


class TestDetection:
    def test_healthy_run_produces_no_reports(self):
        guard = HealthGuard(policy="warn")
        TrainLoop(ScriptedStep([3.0, 2.0, 1.0]), epochs=3, hooks=[guard]).run()
        assert guard.reports == []
        assert guard.checked_epochs == 3

    def test_nan_loss_is_flagged(self):
        guard = HealthGuard(policy="warn")
        losses = [1.0, float("nan"), 1.0]
        with pytest.warns(RuntimeWarning, match="non-finite loss"):
            TrainLoop(ScriptedStep(losses), epochs=3, hooks=[guard]).run()
        assert len(guard.reports) == 1
        assert guard.reports[0].epoch == 1

    def test_loss_spike_detected_after_window_fills(self):
        guard = HealthGuard(policy="warn", window=4, spike_factor=5.0)
        losses = [1.0, 1.1, 0.9, 1.0, 50.0]
        with pytest.warns(RuntimeWarning, match="loss spike"):
            TrainLoop(ScriptedStep(losses), epochs=5, hooks=[guard]).run()
        assert "loss spike" in guard.reports[0].problems[0]

    def test_no_spike_check_before_window_full(self):
        # The same spike inside the warm-up window is ignored.
        guard = HealthGuard(policy="raise", window=10, spike_factor=5.0)
        TrainLoop(ScriptedStep([1.0, 1.1, 50.0]), epochs=3, hooks=[guard]).run()
        assert guard.reports == []

    def test_flat_window_does_not_turn_dust_into_spikes(self):
        guard = HealthGuard(policy="raise", window=3, spike_factor=5.0)
        losses = [1.0, 1.0, 1.0, 1.0 + 1e-9]
        TrainLoop(ScriptedStep(losses), epochs=4, hooks=[guard]).run()
        assert guard.reports == []

    def test_poisoned_parameters_flagged(self):
        guard = HealthGuard(policy="warn", spike_factor=None)
        step = PoisonableStep(poison_at=2)
        with pytest.warns(RuntimeWarning):
            TrainLoop(step, epochs=4, lr=0.1, hooks=[guard]).run()
        assert any(
            "non-finite" in p for r in guard.reports for p in r.problems
        )


class TestPolicies:
    def test_raise_policy_raises_health_error(self):
        guard = HealthGuard(policy="raise")
        loop = TrainLoop(ScriptedStep([1.0, float("inf")]), epochs=2,
                         hooks=[guard])
        with pytest.raises(HealthError, match="non-finite loss"):
            loop.run()

    def test_recover_policy_signals_failure(self):
        # With no recovery hook installed the signalled failure escalates
        # to TrainingFailure — nothing is silently swallowed.
        guard = HealthGuard(policy="recover")
        loop = TrainLoop(ScriptedStep([1.0, float("nan")]), epochs=2,
                         hooks=[guard])
        with pytest.raises(TrainingFailure, match="non-finite loss"):
            loop.run()

    def test_warn_policy_lets_the_run_finish(self):
        guard = HealthGuard(policy="warn")
        losses = [1.0, float("nan"), 1.0, 1.0]
        with pytest.warns(RuntimeWarning):
            history = TrainLoop(ScriptedStep(losses), epochs=4,
                                hooks=[guard]).run()
        assert len(history.records) == 4


class TestOverhead:
    def test_guard_overhead_under_five_percent(self, tiny_cora):
        """Per-epoch guard cost projects to <5% of a real method fit.

        Measured the same way as the tracer's no-op budget: time the fit,
        time ``inspect`` in isolation on the live loop, and assert the
        per-epoch projection stays under the budget.
        """
        from repro.baselines import get_method

        guard = HealthGuard(policy="warn")
        method = get_method("grace", epochs=3, embedding_dim=8,
                            hidden_dim=16, seed=0)
        t0 = time.perf_counter()
        method.fit(tiny_cora, hooks=[guard])
        fit_seconds = time.perf_counter() - t0
        per_epoch_fit = fit_seconds / 3

        loop = method.last_loop
        n = 200
        t0 = time.perf_counter()
        for _ in range(n):
            guard.inspect(loop, 2, 1.0)
        per_inspect = (time.perf_counter() - t0) / n
        assert per_inspect < 0.05 * per_epoch_fit
