"""FaultPlan: deterministic injection of NaNs, crashes, and file damage."""

import numpy as np
import pytest

from repro.autograd import Parameter
from repro.engine import TrainLoop, TrainStep
from repro.resilience import (
    Fault,
    FaultPlan,
    SimulatedCrash,
    degenerate_graph,
)


class QuadraticStep(TrainStep):
    def __init__(self):
        self.w = Parameter(np.zeros(4))

    def trainable_parameters(self):
        return [self.w]

    def compute_loss(self, loop, epoch):
        return ((self.w - 1.0) ** 2.0).mean()

    def checkpoint_components(self):
        return {"w": self.w}


def run(plan, epochs=5):
    step = QuadraticStep()
    loop = TrainLoop(step, epochs=epochs, lr=0.1, hooks=[plan.hook()])
    history = loop.run()
    return step, loop, history


class TestScheduling:
    def test_fault_due_fires_once_by_default(self):
        fault = Fault("crash", epoch=3)
        assert not fault.due(2)
        assert fault.due(3)
        fault.fired = 1
        assert not fault.due(3)

    def test_recurring_fault_rearms(self):
        fault = Fault("crash", epoch=3, once=False, fired=5)
        assert fault.due(3)

    def test_builder_validation(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultPlan().nan_gradients(epoch=0, fraction=0.0)

    def test_builders_chain(self):
        plan = FaultPlan(seed=7).nan_gradients(epoch=4).crash(epoch=9)
        assert [f.kind for f in plan.faults] == ["nan_gradients", "crash"]


class TestInRunFaults:
    def test_nan_gradients_poison_the_parameters(self):
        plan = FaultPlan(seed=0).nan_gradients(epoch=2)
        step, _loop, history = run(plan, epochs=5)
        # Epochs before the fault are clean; Adam carries the poison into
        # the weights, so every later loss is NaN.
        assert np.isfinite(history.losses[:3]).all()
        assert np.isnan(history.losses[3:]).all()
        assert not np.isfinite(step.w.data).all()

    def test_partial_fraction_is_deterministic(self):
        losses = []
        for _ in range(2):
            plan = FaultPlan(seed=9).nan_gradients(epoch=1, fraction=0.5)
            _, _, history = run(plan, epochs=4)
            losses.append(history.losses)
        np.testing.assert_array_equal(losses[0], losses[1])

    def test_crash_raises_mid_epoch(self):
        plan = FaultPlan(seed=0).crash(epoch=2)
        step = QuadraticStep()
        loop = TrainLoop(step, epochs=5, lr=0.1, hooks=[plan.hook()])
        with pytest.raises(SimulatedCrash, match="mid-epoch 2"):
            loop.run()
        # Only the two completed epochs are on record.
        assert len(loop.history.records) == 2

    def test_shim_is_removed_after_firing(self):
        plan = FaultPlan(seed=0).nan_gradients(epoch=0)
        _, loop, _ = run(plan, epochs=2)
        assert "step" not in loop.optimizer.__dict__


class TestFileAttacks:
    def test_truncate_shrinks_the_file(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(bytes(range(100)))
        FaultPlan().truncate_file(path, keep_fraction=0.4)
        assert path.stat().st_size == 40

    def test_truncate_validates_fraction(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"x" * 10)
        with pytest.raises(ValueError, match="keep_fraction"):
            FaultPlan().truncate_file(path, keep_fraction=1.0)

    def test_flip_bytes_is_seeded(self, tmp_path):
        original = bytes(range(256)) * 4
        mutated = []
        for i in range(2):
            path = tmp_path / f"blob{i}.bin"
            path.write_bytes(original)
            FaultPlan(seed=3).flip_bytes(path, count=8)
            mutated.append(path.read_bytes())
        assert mutated[0] == mutated[1]
        assert mutated[0] != original

    def test_flip_bytes_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError, match="empty"):
            FaultPlan().flip_bytes(path)


class TestDegenerateGraphs:
    def test_kinds(self):
        isolated = degenerate_graph("isolated", num_nodes=10)
        assert (isolated.degrees == 0).sum() >= 5

        edgeless = degenerate_graph("edgeless")
        assert edgeless.num_edges == 0

        single = degenerate_graph("single_class")
        assert set(single.labels.tolist()) == {0}

        constant = degenerate_graph("constant_features")
        assert np.ptp(constant.features, axis=0).max() == 0.0

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            degenerate_graph("zombie")
