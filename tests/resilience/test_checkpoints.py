"""CheckpointManager: series naming, retention, corrupt-aware lookup."""

import numpy as np
import pytest

from repro.autograd import Parameter
from repro.engine import Hook, TrainLoop, TrainStep, read_checkpoint
from repro.resilience import CheckpointManager, FaultPlan


class QuadraticStep(TrainStep):
    def __init__(self):
        self.w = Parameter(np.zeros(3))

    def trainable_parameters(self):
        return [self.w]

    def compute_loss(self, loop, epoch):
        return ((self.w - 1.0) ** 2.0).mean()

    def checkpoint_components(self):
        return {"w": self.w}


class SaveEveryEpoch(Hook):
    def __init__(self, manager):
        self.manager = manager

    def on_epoch_end(self, loop, epoch, record):
        self.manager.save(loop)


def run_with_manager(manager, epochs=5):
    loop = TrainLoop(QuadraticStep(), epochs=epochs, lr=0.1,
                     hooks=[SaveEveryEpoch(manager)])
    loop.run()
    return loop


class TestValidation:
    def test_rejects_keep_below_one(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, keep=0)

    def test_rejects_weird_stem(self, tmp_path):
        with pytest.raises(ValueError, match="stem"):
            CheckpointManager(tmp_path, stem="a/b")


class TestSeries:
    def test_path_for_is_zero_padded(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.path_for(7).name == "ckpt-e000007.npz"

    def test_retention_keeps_last_n(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        run_with_manager(manager, epochs=5)
        names = [p.name for p in manager.checkpoints()]
        assert names == ["ckpt-e000003.npz", "ckpt-e000004.npz"]
        assert [p.name for p in manager.saved] == names

    def test_saved_checkpoints_are_valid_and_resumable(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        run_with_manager(manager, epochs=4)
        latest = manager.latest_valid()
        assert latest is not None and latest.name == "ckpt-e000003.npz"
        meta, arrays = read_checkpoint(latest)
        assert meta["epoch_next"] == 4
        assert "w" in arrays

    def test_empty_directory_has_no_latest(self, tmp_path):
        manager = CheckpointManager(tmp_path / "never-created")
        assert manager.checkpoints() == []
        assert manager.latest_valid() is None


class TestCorruption:
    def test_latest_valid_skips_corrupt_files(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        run_with_manager(manager, epochs=5)
        plan = FaultPlan(seed=1)

        plan.flip_bytes(manager.path_for(4))
        assert manager.latest_valid().name == "ckpt-e000003.npz"

        plan.truncate_file(manager.path_for(3))
        assert manager.latest_valid().name == "ckpt-e000002.npz"

    def test_all_corrupt_means_none(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        run_with_manager(manager, epochs=3)
        plan = FaultPlan(seed=2)
        for path in manager.checkpoints():
            plan.truncate_file(path, keep_fraction=0.3)
        assert manager.latest_valid() is None
