"""AutoRecovery: rollback-and-retry semantics and the retry budget."""

import numpy as np
import pytest

from repro.autograd import Parameter
from repro.engine import Hook, TrainLoop, TrainStep, TrainingFailure
from repro.resilience import AutoRecovery, CheckpointManager, SimulatedCrash


class FlakyStep(TrainStep):
    """Quadratic step that raises once at its Nth ``compute_loss`` *call*.

    Call-count (not epoch) based, so the retried epoch succeeds — which is
    exactly the transient-blow-up shape AutoRecovery exists for.
    """

    def __init__(self, fail_on_call=None, error=FloatingPointError):
        self.w = Parameter(np.zeros(3))
        self.fail_on_call = fail_on_call
        self.error = error
        self.calls = 0

    def trainable_parameters(self):
        return [self.w]

    def compute_loss(self, loop, epoch):
        self.calls += 1
        if self.calls == self.fail_on_call:
            raise self.error("injected transient blow-up")
        return ((self.w - 1.0) ** 2.0).mean()

    def checkpoint_components(self):
        return {"w": self.w}


class SignalOnce(Hook):
    """Guard stand-in: signal a failure the first time ``epoch`` is hit."""

    def __init__(self, epoch):
        self.epoch = epoch
        self.fired = False

    def on_epoch_end(self, loop, epoch, record):
        if epoch == self.epoch and not self.fired:
            self.fired = True
            loop.signal_failure("synthetic guard trip")


class TestValidation:
    def test_constructor_bounds(self, tmp_path):
        with pytest.raises(ValueError, match="every"):
            AutoRecovery(tmp_path, every=0)
        with pytest.raises(ValueError, match="max_retries"):
            AutoRecovery(tmp_path, max_retries=-1)
        with pytest.raises(ValueError, match="lr_factor"):
            AutoRecovery(tmp_path, lr_factor=0.0)

    def test_accepts_a_plain_directory(self, tmp_path):
        recovery = AutoRecovery(tmp_path / "ckpts")
        assert isinstance(recovery.manager, CheckpointManager)


class TestRecovery:
    def test_transient_exception_is_absorbed_and_run_completes(self, tmp_path):
        step = FlakyStep(fail_on_call=4)  # dies at epoch 3's attempt
        recovery = AutoRecovery(tmp_path, max_retries=2, lr_factor=0.5)
        loop = TrainLoop(step, epochs=6, lr=0.1, hooks=[recovery])
        history = loop.run()
        assert len(history.records) == 6
        assert recovery.retries == 1
        entry = recovery.recoveries[0]
        assert entry["failed_epoch"] == 3
        assert entry["resume_epoch"] == 3
        assert entry["retry"] == 1
        assert "blow-up" in entry["reason"]
        assert history.recoveries == recovery.recoveries

    def test_lr_shrinks_on_each_recovery(self, tmp_path):
        step = FlakyStep(fail_on_call=3)
        recovery = AutoRecovery(tmp_path, max_retries=2, lr_factor=0.5)
        loop = TrainLoop(step, epochs=4, lr=0.1, hooks=[recovery])
        loop.run()
        assert loop.optimizer.lr == pytest.approx(0.05)

    def test_signalled_failure_is_always_recoverable(self, tmp_path):
        guard = SignalOnce(epoch=2)
        recovery = AutoRecovery(tmp_path, max_retries=1)
        loop = TrainLoop(FlakyStep(), epochs=5, lr=0.1,
                         hooks=[guard, recovery])
        history = loop.run()
        assert len(history.records) == 5
        assert recovery.retries == 1

    def test_flagged_epoch_is_not_checkpointed(self, tmp_path):
        # The guard signals at epoch 2 before AutoRecovery's on_epoch_end
        # runs; the poisoned state must not enter the good series.
        guard = SignalOnce(epoch=2)
        recovery = AutoRecovery(tmp_path, max_retries=1)
        saved_at_failure = []

        class Spy(Hook):
            def on_failure(self, loop, epoch, failure):
                saved_at_failure.extend(recovery.manager.checkpoints())
                return False

        TrainLoop(FlakyStep(), epochs=4, lr=0.1,
                  hooks=[guard, Spy(), recovery]).run()
        assert all(p.name != "ckpt-e000002.npz" for p in saved_at_failure)


class TestLimits:
    def test_non_retryable_error_propagates(self, tmp_path):
        step = FlakyStep(fail_on_call=3, error=SimulatedCrash)
        recovery = AutoRecovery(tmp_path, max_retries=5)
        loop = TrainLoop(step, epochs=4, lr=0.1, hooks=[recovery])
        with pytest.raises(SimulatedCrash):
            loop.run()
        assert recovery.retries == 0

    def test_retry_budget_is_bounded(self, tmp_path):
        class AlwaysDiverges(FlakyStep):
            def compute_loss(self, loop, epoch):
                if epoch == 2:
                    raise FloatingPointError("deterministic blow-up")
                return super().compute_loss(loop, epoch)

        recovery = AutoRecovery(tmp_path, max_retries=2)
        loop = TrainLoop(AlwaysDiverges(), epochs=4, lr=0.1,
                         hooks=[recovery])
        with pytest.raises(FloatingPointError):
            loop.run()
        assert recovery.retries == 2

    def test_no_checkpoint_yet_means_no_recovery(self, tmp_path):
        step = FlakyStep(fail_on_call=1)  # dies before any save
        recovery = AutoRecovery(tmp_path, max_retries=3)
        loop = TrainLoop(step, epochs=3, lr=0.1, hooks=[recovery])
        with pytest.raises(FloatingPointError):
            loop.run()
        assert recovery.retries == 0

    def test_guard_signal_without_recovery_escalates(self, tmp_path):
        loop = TrainLoop(FlakyStep(), epochs=3, lr=0.1,
                         hooks=[SignalOnce(epoch=1)])
        with pytest.raises(TrainingFailure, match="synthetic guard trip"):
            loop.run()
