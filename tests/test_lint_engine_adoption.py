"""Wire ``tools/check_engine_adoption.py`` into the suite.

Every pre-training method must drive its optimization through
``repro.engine.TrainLoop`` — no module outside the engine (and the
linear-eval decoder) may construct ``Adam``/``AdamW``/``SGD`` directly.
"""

import importlib.util
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_engine_adoption", ROOT / "tools" / "check_engine_adoption.py"
)
check_engine_adoption = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_engine_adoption)


def test_src_has_no_handrolled_optimizers():
    findings = []
    for path in sorted((ROOT / "src").rglob("*.py")):
        findings.extend(check_engine_adoption.check_file(path))
    assert not findings, "hand-rolled optimizers:\n" + "\n".join(findings)


def test_detects_direct_adam(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text(
        "from repro.autograd import Adam\n\nopt = Adam(params, lr=0.01)\n"
    )
    findings = check_engine_adoption.check_file(module)
    assert len(findings) == 1 and "Adam" in findings[0]


def test_detects_attribute_chain_sgd(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("import repro.autograd as optim\n\nopt = optim.SGD(params)\n")
    findings = check_engine_adoption.check_file(module)
    assert len(findings) == 1 and "SGD" in findings[0]


def test_engine_and_decoders_are_exempt():
    for rel in ("src/repro/engine/loop.py", "src/repro/nn/decoders.py"):
        path = ROOT / rel
        assert path.is_file(), rel
        assert check_engine_adoption.check_file(path) == []


def test_unrelated_calls_pass(tmp_path):
    module = tmp_path / "mod.py"
    module.write_text("def run(loop):\n    return loop.run()\n")
    assert check_engine_adoption.check_file(module) == []
