"""Registry and shared two-view template."""

import numpy as np
import pytest

from repro.baselines import (
    EA,
    ED,
    FM,
    FP,
    GRACE,
    ContrastiveMethod,
    available_methods,
    get_method,
)


class TestRegistry:
    def test_all_paper_methods_registered(self):
        expected = {
            "grace", "gca", "mvgrl", "bgrl", "dgi", "gae", "vgae", "afgrl",
            "graphcl", "adgcl", "deepwalk", "node2vec", "e2gcl",
        }
        assert expected == set(available_methods())

    def test_get_method_instantiates(self):
        method = get_method("grace", epochs=3)
        assert isinstance(method, GRACE)
        assert method.epochs == 3

    def test_get_method_case_insensitive(self):
        assert isinstance(get_method("GRACE"), GRACE)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            get_method("simclr")


class TestInterface:
    def test_embed_before_fit_raises(self, tiny_cora):
        with pytest.raises(RuntimeError, match="fit"):
            get_method("grace").embed(tiny_cora)

    def test_fit_records_info(self, tiny_cora):
        method = get_method("grace", epochs=3).fit(tiny_cora)
        assert len(method.info.losses) == 3
        assert method.info.seconds > 0

    def test_unknown_operations_rejected(self):
        with pytest.raises(ValueError, match="unknown operations"):
            GRACE(operations=("ED", "XX"))

    def test_operation_upgrade_changes_views(self, tiny_cora):
        """Upgraded op set (Fig. 2) must actually change view generation."""
        rng_state = np.random.default_rng(0)
        original = GRACE(seed=0, epochs=1)
        upgraded = GRACE(seed=0, epochs=1, operations=GRACE.upgraded_operations)
        v1 = original._augment(tiny_cora, original.view1_rates)
        v2 = upgraded._augment(tiny_cora, upgraded.view1_rates)
        # EA adds edges, so the upgraded view has more than pure-deletion's.
        assert v2.num_edges > 0
        assert set(upgraded.operations) > set(original.operations)
