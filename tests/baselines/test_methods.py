"""Per-method behaviour: every baseline trains, embeds, and learns signal."""

import numpy as np
import pytest

from repro.baselines import (
    ADGCL,
    AFGRL,
    BGRL,
    DGI,
    GAE,
    GCA,
    GRACE,
    MVGRL,
    VGAE,
    DeepWalk,
    GraphCL,
    Node2Vec,
    get_method,
)
from repro.eval import evaluate_embeddings

FAST = dict(epochs=5, embedding_dim=8, hidden_dim=16, seed=0)
ALL_GNN_METHODS = ["grace", "gca", "mvgrl", "bgrl", "dgi", "gae", "vgae",
                   "afgrl", "graphcl", "adgcl"]


@pytest.mark.parametrize("name", ALL_GNN_METHODS)
def test_method_fits_and_embeds(name, tiny_cora):
    method = get_method(name, **FAST).fit(tiny_cora)
    h = method.embed(tiny_cora)
    assert h.shape == (tiny_cora.num_nodes, 8)
    assert np.isfinite(h).all()


@pytest.mark.parametrize("name", ALL_GNN_METHODS)
def test_method_deterministic_under_seed(name, tiny_cora):
    h1 = get_method(name, **FAST).fit(tiny_cora).embed(tiny_cora)
    h2 = get_method(name, **FAST).fit(tiny_cora).embed(tiny_cora)
    np.testing.assert_allclose(h1, h2)


@pytest.mark.parametrize("name", ALL_GNN_METHODS)
def test_method_loss_is_finite(name, tiny_cora):
    method = get_method(name, **FAST).fit(tiny_cora)
    assert np.isfinite(method.info.losses).all()


class TestGRACE:
    def test_loss_decreases(self, tiny_cora):
        method = GRACE(epochs=25, embedding_dim=8, hidden_dim=16, seed=0, lr=0.02)
        method.fit(tiny_cora)
        assert np.mean(method.info.losses[-5:]) < np.mean(method.info.losses[:5])

    def test_upgraded_operations_run(self, tiny_cora):
        method = GRACE(operations=GRACE.upgraded_operations, **FAST).fit(tiny_cora)
        assert np.isfinite(method.embed(tiny_cora)).all()


class TestGCA:
    def test_adaptive_probabilities_precomputed(self, tiny_cora):
        method = GCA(**FAST)
        method._rng = np.random.default_rng(0)
        method._prepare(tiny_cora)
        for rate, probs in method._edge_probs.items():
            assert probs.shape[0] == tiny_cora.num_edges
            assert probs.max() <= 0.9

    def test_low_centrality_edges_dropped_more(self, tiny_cora):
        method = GCA(**FAST)
        method._rng = np.random.default_rng(0)
        method._prepare(tiny_cora)
        probs = method._edge_probs[method.edge_drop_rates[0]]
        edges = tiny_cora.edge_array()
        deg = tiny_cora.degrees
        edge_min_deg = np.minimum(deg[edges[:, 0]], deg[edges[:, 1]])
        low = probs[edge_min_deg <= np.quantile(edge_min_deg, 0.2)]
        high = probs[edge_min_deg >= np.quantile(edge_min_deg, 0.8)]
        assert low.mean() > high.mean()


class TestMVGRL:
    def test_combines_two_encoders(self, tiny_cora):
        method = MVGRL(**FAST).fit(tiny_cora)
        h_total = method.embed(tiny_cora)
        h_adj = method.encoder.embed(tiny_cora)
        assert np.abs(h_total - h_adj).max() > 1e-9  # diffusion part contributes


class TestBGRL:
    def test_target_encoder_tracks_online(self, tiny_cora):
        method = BGRL(ema_decay=0.5, **FAST).fit(tiny_cora)
        online = method.encoder.state_dict()
        target = method.target_encoder.state_dict()
        # After training with decay 0.5 the target should have moved off init
        # toward the online network.
        gaps = [np.abs(online[k] - target[k]).mean() for k in online]
        assert np.mean(gaps) < 0.5

    def test_ema_decay_validated(self):
        with pytest.raises(ValueError):
            BGRL(ema_decay=1.5)


class TestAFGRL:
    def test_positive_targets_refresh(self, tiny_cora):
        method = AFGRL(refresh_positives_every=2, **FAST).fit(tiny_cora)
        assert method._positive_targets is not None
        assert method._positive_targets.shape == (tiny_cora.num_nodes, 8)


class TestGAEFamily:
    def test_gae_reconstruction_improves(self, tiny_cora):
        method = GAE(epochs=30, embedding_dim=8, hidden_dim=16, seed=0, lr=0.02)
        method.fit(tiny_cora)
        assert method.info.losses[-1] < method.info.losses[0]

    def test_vgae_embeds_posterior_mean(self, tiny_cora):
        method = VGAE(**FAST).fit(tiny_cora)
        np.testing.assert_allclose(method.embed(tiny_cora), method.encoder.embed(tiny_cora))


class TestADGCL:
    def test_adversarial_rate_selected_from_grid(self, tiny_cora):
        method = ADGCL(adversarial_rates=(0.2, 0.6), **FAST).fit(tiny_cora)
        assert method.current_rate in (0.2, 0.6)

    def test_empty_rate_grid_rejected(self):
        with pytest.raises(ValueError):
            ADGCL(adversarial_rates=())


class TestWalkMethods:
    @pytest.mark.parametrize("cls", [DeepWalk, Node2Vec])
    def test_fits_and_embeds(self, cls, tiny_cora):
        method = cls(embedding_dim=8, seed=0)
        method.walks_per_node = 2
        method.walk_length = 6
        method.sgns_epochs = 1
        method.fit(tiny_cora)
        h = method.embed(tiny_cora)
        assert h.shape == (tiny_cora.num_nodes, 8)

    def test_transductive_embed_rejects_other_graph(self, tiny_cora, path_graph):
        method = DeepWalk(embedding_dim=8, seed=0)
        method.walks_per_node = 1
        method.walk_length = 4
        method.sgns_epochs = 1
        method.fit(tiny_cora)
        with pytest.raises(ValueError, match="transductive"):
            method.embed(path_graph)

    def test_structure_signal_learned(self, small_cora):
        """DeepWalk embeddings should beat random embeddings on linear eval."""
        method = DeepWalk(embedding_dim=16, seed=0)
        method.walks_per_node = 4
        method.walk_length = 10
        method.fit(small_cora)
        walked = evaluate_embeddings(small_cora, method.embed(small_cora),
                                     trials=2, decoder_epochs=100).test_accuracy.mean
        rng = np.random.default_rng(0)
        random_acc = evaluate_embeddings(small_cora, rng.normal(size=(small_cora.num_nodes, 16)),
                                         trials=2, decoder_epochs=100).test_accuracy.mean
        assert walked > random_acc + 0.1
