"""Supervised GCN / MLP baselines."""

import numpy as np
import pytest

from repro.baselines import SupervisedGCN, SupervisedMLP
from repro.graphs import split_nodes


@pytest.fixture(scope="module")
def setup(request):
    import repro.graphs as graphs

    graph = graphs.load_dataset("cora", seed=21, scale=0.4)
    rng = np.random.default_rng(0)
    split = split_nodes(graph.num_nodes, rng, labels=graph.labels)
    return graph, split


class TestSupervisedGCN:
    def test_learns_above_chance(self, setup):
        graph, split = setup
        model = SupervisedGCN(epochs=60, seed=0).fit(graph, split.train)
        acc = model.score(graph, split.test)
        assert acc > 1.5 / graph.num_classes

    def test_predict_before_fit_raises(self, setup):
        graph, _ = setup
        with pytest.raises(RuntimeError):
            SupervisedGCN().predict(graph)

    def test_requires_labels(self, setup):
        graph, split = setup
        unlabeled = graph.with_features(graph.features)
        unlabeled.labels = None
        with pytest.raises(ValueError, match="labels"):
            SupervisedGCN().fit(unlabeled, split.train)

    def test_beats_structure_blind_mlp(self, setup):
        """On a homophilous graph, GCN should beat the feature-only MLP —
        the relative ordering Tab. IV shows."""
        graph, split = setup
        gcn_acc = SupervisedGCN(epochs=80, seed=0).fit(graph, split.train).score(graph, split.test)
        mlp_acc = SupervisedMLP(epochs=80, seed=0).fit(graph, split.train).score(graph, split.test)
        assert gcn_acc > mlp_acc


class TestSupervisedMLP:
    def test_learns_above_chance(self, setup):
        graph, split = setup
        model = SupervisedMLP(epochs=100, seed=0).fit(graph, split.train)
        assert model.score(graph, split.test) > 1.0 / graph.num_classes

    def test_deterministic(self, setup):
        graph, split = setup
        p1 = SupervisedMLP(epochs=10, seed=3).fit(graph, split.train).predict(graph)
        p2 = SupervisedMLP(epochs=10, seed=3).fit(graph, split.train).predict(graph)
        np.testing.assert_array_equal(p1, p2)
