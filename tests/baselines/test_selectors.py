"""Tab. VII selector baselines: all produce valid (selection, weights)."""

import numpy as np
import pytest

from repro.baselines import SELECTORS, get_selector
from repro.baselines.e2gcl_method import E2GCLMethod
from repro.core import select_coreset


@pytest.mark.parametrize("name", sorted(SELECTORS))
class TestSelectorContract:
    def test_budget_respected(self, name, tiny_cora):
        selector = get_selector(name)
        selected, weights = selector(tiny_cora, 20, np.random.default_rng(0))
        assert selected.shape[0] == 20
        assert len(set(selected.tolist())) == 20

    def test_indices_valid(self, name, tiny_cora):
        selected, _ = get_selector(name)(tiny_cora, 15, np.random.default_rng(1))
        assert selected.min() >= 0
        assert selected.max() < tiny_cora.num_nodes

    def test_weights_sum_to_num_nodes(self, name, tiny_cora):
        _, weights = get_selector(name)(tiny_cora, 15, np.random.default_rng(2))
        assert weights.sum() == tiny_cora.num_nodes
        assert (weights >= 0).all()

    def test_budget_exceeding_nodes_clamps(self, name, tiny_cora):
        selected, _ = get_selector(name)(tiny_cora, 10 ** 6, np.random.default_rng(3))
        assert selected.shape[0] <= tiny_cora.num_nodes


class TestSpecificBehaviour:
    def test_degree_prefers_hubs(self, tiny_cora):
        rng_runs = [get_selector("degree")(tiny_cora, 20, np.random.default_rng(s))[0]
                    for s in range(5)]
        selected_deg = np.mean([tiny_cora.degrees[s].mean() for s in rng_runs])
        assert selected_deg > tiny_cora.degrees.mean()

    def test_kcg_spreads_out(self, tiny_cora):
        """k-center greedy picks points far apart in R-space."""
        from repro.graphs import propagated_features

        r = propagated_features(tiny_cora, 2)
        kcg, _ = get_selector("kcg")(tiny_cora, 10, np.random.default_rng(0))
        rand, _ = get_selector("random")(tiny_cora, 10, np.random.default_rng(0))

        def min_pairwise(sel):
            pts = r[sel]
            d = np.sqrt(((pts[:, None] - pts[None, :]) ** 2).sum(axis=2))
            return d[np.triu_indices(len(sel), 1)].min()

        assert min_pairwise(kcg) >= min_pairwise(rand)

    def test_unknown_selector_rejected(self):
        with pytest.raises(ValueError):
            get_selector("entropy")

    def test_e2gcl_method_accepts_selector(self, tiny_cora):
        method = E2GCLMethod(
            epochs=3, num_clusters=8, sample_size=20, node_ratio=0.3,
            embedding_dim=8, hidden_dim=16, selector=get_selector("random"),
        ).fit(tiny_cora)
        assert method.trainer.coreset is None  # custom selector bypasses Alg. 2
        assert method.embed(tiny_cora).shape == (tiny_cora.num_nodes, 8)

    def test_ours_beats_random_on_objective(self, tiny_cora):
        """Alg. 2's selection should have lower RS than random's (Tab. VII's
        mechanism)."""
        from repro.core import build_cluster_model, representativity_cost
        from repro.graphs import propagated_features

        r = propagated_features(tiny_cora, 2)
        model = build_cluster_model(r, 10, rng=np.random.default_rng(0))
        ours = select_coreset(tiny_cora, budget=15, num_clusters=10, sample_size=40,
                              rng=np.random.default_rng(1), r=r, cluster_model=model)
        rand_sel, _ = get_selector("random")(tiny_cora, 15, np.random.default_rng(2))
        assert ours.representativity < representativity_cost(model, rand_sel)
