"""Cross-method determinism regression suite.

Every registered method must be a pure function of (graph, seed): two fits
with the same seed produce bit-identical embeddings, and a different seed
produces different ones.  This pins the repo-wide determinism contract —
the ``RngStreams`` plumbing, and the absence of hidden global state such as
the ``id()``-keyed adjacency caches that once made same-seed runs diverge
depending on heap layout.
"""

import numpy as np
import pytest

from repro.baselines import available_methods, get_method

# Smoke-scale constructor kwargs per method; walk-based methods take no
# epochs/hidden_dim.  The fallback covers every GNN-style method.
_WALK = dict(seed=0, embedding_dim=8)
_GNN = dict(epochs=2, embedding_dim=8, hidden_dim=16, seed=0)
SMOKE_KWARGS = {
    "deepwalk": _WALK,
    "node2vec": _WALK,
    "e2gcl": dict(num_clusters=4, **_GNN),
}


def _embed(name, graph, seed):
    kwargs = dict(SMOKE_KWARGS.get(name, _GNN))
    kwargs["seed"] = seed
    return get_method(name, **kwargs).fit(graph).embed(graph)


def test_suite_covers_every_registered_method():
    """The parametrization below must track the registry."""
    assert set(available_methods()) == set(METHODS)


METHODS = sorted(available_methods())


@pytest.mark.parametrize("name", METHODS)
def test_same_seed_is_bit_identical(name, tiny_cora):
    h1 = _embed(name, tiny_cora, seed=0)
    h2 = _embed(name, tiny_cora, seed=0)
    assert h1.shape == h2.shape
    assert np.array_equal(h1, h2), (
        f"{name}: same-seed fits diverged "
        f"(max abs diff {np.abs(h1 - h2).max():.3g})"
    )


@pytest.mark.parametrize("name", METHODS)
def test_different_seed_differs(name, tiny_cora):
    h1 = _embed(name, tiny_cora, seed=0)
    h2 = _embed(name, tiny_cora, seed=1)
    assert not np.array_equal(h1, h2), f"{name}: seed has no effect on embeddings"
