"""The ``repro.perf`` scoped-counter registry."""

import json
import time

import numpy as np
import pytest

from repro import perf


@pytest.fixture(autouse=True)
def clean_registry():
    perf.reset()
    yield
    perf.reset()
    perf.disable_allocation_tracking()


class TestRecord:
    def test_accumulates_calls_and_seconds(self):
        for _ in range(3):
            with perf.record("t.scope"):
                time.sleep(0.001)
        counter = perf.get_counter("t.scope")
        assert counter.calls == 3
        assert counter.seconds >= 0.003
        assert counter.mean_seconds == pytest.approx(counter.seconds / 3)

    def test_unknown_scope_is_none(self):
        assert perf.get_counter("never.recorded") is None

    def test_records_even_on_exception(self):
        with pytest.raises(RuntimeError):
            with perf.record("t.raises"):
                raise RuntimeError("boom")
        assert perf.get_counter("t.raises").calls == 1

    def test_reset_clears(self):
        with perf.record("t.gone"):
            pass
        perf.reset()
        assert perf.get_counter("t.gone") is None


class TestProfiled:
    def test_explicit_name(self):
        @perf.profiled("t.named")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work.__name__ == "work"
        assert perf.get_counter("t.named").calls == 1

    def test_default_name_is_qualname(self):
        @perf.profiled()
        def helper():
            return 7

        assert helper() == 7
        scope = f"{helper.__module__}.{helper.__qualname__}"
        assert perf.get_counter(scope).calls == 1


class TestReporting:
    def test_report_is_json_serializable(self):
        with perf.record("t.a"):
            pass
        snapshot = json.loads(json.dumps(perf.report()))
        assert snapshot["t.a"]["calls"] == 1
        assert set(snapshot["t.a"]) == {"calls", "seconds", "mean_seconds", "peak_bytes"}

    def test_summary_lists_scopes(self):
        with perf.record("t.slowest"):
            time.sleep(0.002)
        with perf.record("t.fast"):
            pass
        text = perf.summary()
        assert "t.slowest" in text and "t.fast" in text
        assert text.index("t.slowest") < text.index("t.fast")


class TestAllocationTracking:
    def test_disabled_by_default(self):
        assert not perf.allocation_tracking_enabled()
        with perf.record("t.noalloc"):
            np.zeros(100_000)
        assert perf.get_counter("t.noalloc").peak_bytes == 0

    def test_enabled_records_peak(self):
        perf.enable_allocation_tracking()
        try:
            assert perf.allocation_tracking_enabled()
            with perf.record("t.alloc"):
                buffer = np.zeros(200_000)
                del buffer
        finally:
            perf.disable_allocation_tracking()
        assert perf.get_counter("t.alloc").peak_bytes >= 200_000 * 8
        assert not perf.allocation_tracking_enabled()
