"""Task decoders: logistic regression and the link decoder."""

import numpy as np
import pytest

from repro.nn import LinkDecoder, LogisticRegressionDecoder


def make_blobs(rng, n_per_class=40, gap=4.0):
    x0 = rng.normal(size=(n_per_class, 2))
    x1 = rng.normal(size=(n_per_class, 2)) + gap
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n_per_class, dtype=int), np.ones(n_per_class, dtype=int)])
    return x, y


class TestLogisticRegression:
    def test_fits_separable_blobs(self, rng):
        x, y = make_blobs(rng)
        decoder = LogisticRegressionDecoder(2, 2, epochs=200, seed=0).fit(x, y)
        assert decoder.score(x, y) > 0.95

    def test_predict_proba_normalized(self, rng):
        x, y = make_blobs(rng)
        decoder = LogisticRegressionDecoder(2, 2, epochs=50, seed=0).fit(x, y)
        probs = decoder.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert (probs >= 0).all()

    def test_l2_shrinks_weights(self, rng):
        x, y = make_blobs(rng)
        weak = LogisticRegressionDecoder(2, 2, l2=0.0, epochs=200, seed=0).fit(x, y)
        strong = LogisticRegressionDecoder(2, 2, l2=1.0, epochs=200, seed=0).fit(x, y)
        assert np.abs(strong.linear.weight.data).sum() < np.abs(weak.linear.weight.data).sum()

    def test_sample_weights_shift_boundary(self, rng):
        # Conflicting labels at the same point: weights decide the winner.
        x = np.zeros((10, 1))
        y = np.array([0] * 5 + [1] * 5)
        w = np.array([10.0] * 5 + [0.1] * 5)
        decoder = LogisticRegressionDecoder(1, 2, l2=0.0, epochs=200, seed=0)
        decoder.fit(x, y, sample_weights=w)
        assert decoder.predict(np.zeros((1, 1)))[0] == 0

    def test_multiclass(self, rng):
        x = np.concatenate([rng.normal(size=(30, 2)) + off for off in (0.0, 5.0, 10.0)])
        y = np.repeat([0, 1, 2], 30)
        decoder = LogisticRegressionDecoder(2, 3, epochs=300, seed=0).fit(x, y)
        assert decoder.score(x, y) > 0.9


class TestLinkDecoder:
    def test_pair_features_symmetric(self, rng):
        emb = rng.normal(size=(6, 4))
        pairs = np.array([[0, 1]])
        fwd = LinkDecoder.pair_features(emb, pairs)
        rev = LinkDecoder.pair_features(emb, pairs[:, ::-1])
        np.testing.assert_allclose(fwd, rev)

    def test_pair_features_empty(self, rng):
        emb = rng.normal(size=(6, 4))
        out = LinkDecoder.pair_features(emb, np.empty((0, 2), dtype=int))
        assert out.shape == (0, 8)

    def test_learns_cluster_structure(self, rng):
        # Two clusters in embedding space; edges exist within clusters.
        emb = np.concatenate([rng.normal(size=(10, 4)), rng.normal(size=(10, 4)) + 6.0])
        pos = np.array([[i, j] for i in range(10) for j in range(i + 1, 10)][:30])
        neg = np.array([[i, 10 + i] for i in range(10)])
        decoder = LinkDecoder(4, epochs=200, seed=0).fit(emb, pos, neg)
        pos_scores = decoder.predict_proba(emb, np.array([[11, 12], [13, 14]]))
        neg_scores = decoder.predict_proba(emb, np.array([[0, 15], [2, 18]]))
        assert pos_scores.mean() > neg_scores.mean()
