"""READOUT functions (Sec. II-A graph classification)."""

import numpy as np
import pytest

from repro.autograd import Tensor, ops
from repro.nn import max_readout, mean_readout, readout, sum_readout


@pytest.fixture
def h():
    return Tensor(np.array([[1.0, -2.0], [3.0, 4.0], [5.0, 0.0]]), requires_grad=True)


class TestValues:
    def test_sum(self, h):
        np.testing.assert_allclose(sum_readout(h).data, [9.0, 2.0])

    def test_mean(self, h):
        np.testing.assert_allclose(mean_readout(h).data, [3.0, 2.0 / 3.0])

    def test_max(self, h):
        np.testing.assert_allclose(max_readout(h).data, [5.0, 4.0])


class TestGradients:
    def test_sum_gradient_uniform(self, h):
        ops.sum(sum_readout(h)).backward()
        np.testing.assert_allclose(h.grad, np.ones((3, 2)))

    def test_max_gradient_flows_to_argmax(self, h):
        ops.sum(max_readout(h)).backward()
        expected = np.zeros((3, 2))
        expected[2, 0] = 1.0
        expected[1, 1] = 1.0
        np.testing.assert_allclose(h.grad, expected)


class TestDispatch:
    def test_by_name(self, h):
        np.testing.assert_allclose(readout(h, "sum").data, sum_readout(h).data)

    def test_unknown_rejected(self, h):
        with pytest.raises(ValueError, match="unknown readout"):
            readout(h, "attention")

    def test_sum_scales_with_graph_size(self):
        """SUM (unlike MEAN) distinguishes graph sizes — why Tab. IX uses it."""
        small = Tensor(np.ones((3, 2)))
        large = Tensor(np.ones((9, 2)))
        assert sum_readout(large).data[0] == 3 * sum_readout(small).data[0]
        assert mean_readout(large).data[0] == mean_readout(small).data[0]
