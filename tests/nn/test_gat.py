"""GAT encoder: attention normalization, shapes, training, encoder-agnosticism."""

import numpy as np
import pytest

from repro.autograd import Adam, Tensor, functional, ops
from repro.graphs import add_self_loops
from repro.nn import GAT, GATLayer
from repro.nn.gat import _segment_softmax


class TestSegmentSoftmax:
    def test_normalizes_per_segment(self):
        scores = Tensor(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), requires_grad=True)
        segments = np.array([0, 0, 1, 1, 1])
        out = _segment_softmax(scores, segments, 2)
        assert out.data[:2].sum() == pytest.approx(1.0)
        assert out.data[2:].sum() == pytest.approx(1.0)

    def test_single_element_segment_is_one(self):
        out = _segment_softmax(Tensor(np.array([7.0])), np.array([0]), 1)
        assert out.data[0] == pytest.approx(1.0)

    def test_gradient_flows(self):
        scores = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        out = _segment_softmax(scores, np.array([0, 0, 0]), 1)
        ops.sum(ops.mul(out, np.array([1.0, 0.0, 0.0]))).backward()
        assert scores.grad is not None
        assert np.abs(scores.grad).sum() > 0

    def test_stable_with_large_scores(self):
        out = _segment_softmax(Tensor(np.array([1000.0, 1001.0])), np.array([0, 0]), 1)
        assert np.isfinite(out.data).all()
        assert out.data.sum() == pytest.approx(1.0)


class TestGAT:
    def test_output_shape(self, small_er_graph):
        model = GAT(6, 16, 8, num_layers=2, seed=0)
        assert model.embed(small_er_graph).shape == (30, 8)

    def test_deterministic(self, small_er_graph):
        h1 = GAT(6, 16, 8, seed=3).embed(small_er_graph)
        h2 = GAT(6, 16, 8, seed=3).embed(small_er_graph)
        np.testing.assert_allclose(h1, h2)

    def test_attention_weights_sum_to_one_per_node(self, path_graph):
        """Reconstruct the first layer's alphas and check normalization."""
        model = GAT(5, 4, 4, num_layers=1, seed=0)
        layer: GATLayer = model.layers[0]
        edges = model._directed_edges(path_graph)
        wh = ops.matmul(Tensor(path_graph.features), layer.weight)
        src, dst = edges[:, 0], edges[:, 1]
        s_src = ops.index(ops.reshape(ops.matmul(wh, layer.attn_src), (5,)), src)
        s_dst = ops.index(ops.reshape(ops.matmul(wh, layer.attn_dst), (5,)), dst)
        raw = ops.leaky_relu(ops.add(s_src, s_dst), 0.2)
        alpha = _segment_softmax(raw, dst, 5).data
        for v in range(5):
            assert alpha[dst == v].sum() == pytest.approx(1.0)

    def test_isolated_node_attends_to_itself(self, isolated_node_graph):
        model = GAT(3, 8, 4, seed=0)
        h = model.embed(isolated_node_graph)
        assert np.isfinite(h[3]).all()

    def test_trains_on_supervised_loss(self, small_er_graph):
        model = GAT(6, 8, 2, seed=0)
        optimizer = Adam(model.parameters(), lr=0.02)
        losses = []
        for _ in range(40):
            optimizer.zero_grad()
            loss = functional.cross_entropy(model(small_er_graph), small_er_graph.labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            GAT(4, 8, 2, num_layers=0)


class TestEncoderAgnostic:
    def test_e2gcl_trainer_accepts_gat(self, tiny_cora):
        """Sec. IV-C *Remarks*: views are encoder-agnostic — swap in a GAT."""
        from repro.core import E2GCLConfig, E2GCLTrainer

        cfg = E2GCLConfig(epochs=4, num_clusters=8, sample_size=20,
                          node_ratio=0.3, hidden_dim=8, embedding_dim=8,
                          loss="euclidean")
        gat = GAT(tiny_cora.num_features, 8, 8, seed=0)
        trainer = E2GCLTrainer(tiny_cora, cfg, encoder=gat)
        result = trainer.train()
        assert np.isfinite(result.final_loss)
        assert trainer.embed().shape == (tiny_cora.num_nodes, 8)
