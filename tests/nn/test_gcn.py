"""GCN encoder: Eq. (1) semantics, training behaviour, caching."""

import numpy as np
import pytest

from repro.autograd import Adam, Tensor, functional, ops
from repro.graphs import normalized_adjacency, propagated_features
from repro.nn import GCN, GCNLayer, LinearGCN


class TestGCNLayer:
    def test_forward_matches_equation(self, small_er_graph):
        rng = np.random.default_rng(0)
        layer = GCNLayer(6, 4, rng, activation=None, bias=False)
        a_n = normalized_adjacency(small_er_graph.adjacency)
        out = layer(a_n, Tensor(small_er_graph.features))
        expected = a_n @ (small_er_graph.features @ layer.weight.data)
        np.testing.assert_allclose(out.data, np.asarray(expected), atol=1e-10)

    def test_relu_applied(self, small_er_graph):
        rng = np.random.default_rng(0)
        layer = GCNLayer(6, 4, rng, activation="relu")
        a_n = normalized_adjacency(small_er_graph.adjacency)
        out = layer(a_n, Tensor(small_er_graph.features))
        assert (out.data >= 0).all()

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            GCNLayer(3, 3, np.random.default_rng(0), activation="swish")


class TestGCN:
    def test_output_shape(self, small_er_graph):
        model = GCN(6, 16, 8, num_layers=2, seed=0)
        h = model(small_er_graph)
        assert h.shape == (30, 8)

    def test_embed_returns_array(self, small_er_graph):
        model = GCN(6, 16, 8, seed=0)
        h = model.embed(small_er_graph)
        assert isinstance(h, np.ndarray)
        assert h.shape == (30, 8)

    def test_embed_restores_training_mode(self, small_er_graph):
        model = GCN(6, 16, 8, seed=0, dropout=0.5)
        model.train()
        model.embed(small_er_graph)
        assert model.training

    def test_seed_determinism(self, small_er_graph):
        h1 = GCN(6, 16, 8, seed=3).embed(small_er_graph)
        h2 = GCN(6, 16, 8, seed=3).embed(small_er_graph)
        np.testing.assert_allclose(h1, h2)

    def test_one_layer_allowed(self, small_er_graph):
        model = GCN(6, 16, 4, num_layers=1, seed=0)
        assert model.embed(small_er_graph).shape == (30, 4)

    def test_zero_layers_rejected(self):
        with pytest.raises(ValueError):
            GCN(6, 16, 4, num_layers=0)

    def test_isolated_node_gets_own_features_only(self, isolated_node_graph):
        """With renormalized self-loops an isolated node's representation is
        a pure transformation of its own features — finite and well-defined."""
        model = GCN(3, 8, 4, seed=0)
        h = model.embed(isolated_node_graph)
        assert np.isfinite(h[3]).all()

    def test_adjacency_cache_invalidates_on_new_graph(self, small_er_graph, path_graph):
        model = GCN(6, 8, 4, seed=0)
        model.embed(small_er_graph)
        h = model(path_graph, features=Tensor(np.zeros((5, 6))))
        assert h.shape == (5, 4)

    def test_training_reduces_supervised_loss(self, small_er_graph):
        model = GCN(6, 16, 2, seed=0)
        labels = small_er_graph.labels
        optimizer = Adam(model.parameters(), lr=0.05)
        losses = []
        for _ in range(80):
            optimizer.zero_grad()
            loss = functional.cross_entropy(model(small_er_graph), labels)
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        # Labels are random on an ER graph, but the model should still be
        # able to overfit 30 nodes substantially.
        assert losses[-1] < losses[0] * 0.7

    def test_propagation_uses_structure(self, path_graph):
        """Changing a far node's features changes a node's representation
        only within the receptive field (2 layers → 2 hops)."""
        model = GCN(5, 8, 4, num_layers=2, seed=1)
        base = model.embed(path_graph)
        modified = path_graph.with_features(path_graph.features.copy())
        modified.features[4, :] += 10.0
        changed = model.embed(modified)
        # Node 4 is 4 hops from node 0: out of a 2-layer receptive field.
        np.testing.assert_allclose(changed[0], base[0], atol=1e-10)
        # Node 2 is 2 hops from node 4: inside the receptive field.
        assert np.abs(changed[2] - base[2]).max() > 1e-8


class TestLinearGCN:
    def test_matches_closed_form(self, small_er_graph):
        """LinearGCN must equal A_n^L X θ — the Theorem 1 relaxation."""
        model = LinearGCN(6, 4, hops=2, seed=0)
        out = model(small_er_graph).data
        r = propagated_features(small_er_graph, 2)
        np.testing.assert_allclose(out, r @ model.weight.data, atol=1e-10)

    def test_zero_hops_is_linear_regression(self, small_er_graph):
        model = LinearGCN(6, 4, hops=0, seed=0)
        out = model(small_er_graph).data
        np.testing.assert_allclose(out, small_er_graph.features @ model.weight.data, atol=1e-12)
