"""MLP / Linear / ProjectionHead behaviour."""

import numpy as np
import pytest

from repro.autograd import Adam, Tensor, functional
from repro.nn import MLP, Linear, ProjectionHead


class TestLinear:
    def test_affine_map(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        out = layer(Tensor(x))
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data, atol=1e-12)

    def test_no_bias(self):
        rng = np.random.default_rng(0)
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestMLP:
    def test_shapes(self):
        model = MLP(4, 8, 3, num_layers=3, seed=0)
        out = model(Tensor(np.zeros((7, 4))))
        assert out.shape == (7, 3)

    def test_single_layer_is_linear(self):
        model = MLP(4, 8, 2, num_layers=1, seed=0)
        x = np.random.default_rng(0).normal(size=(5, 4))
        out = model(Tensor(x))
        linear = model.linears[0]
        np.testing.assert_allclose(out.data, x @ linear.weight.data + linear.bias.data, atol=1e-12)

    def test_accepts_raw_arrays(self):
        model = MLP(4, 8, 2, seed=0)
        out = model(np.zeros((3, 4)))
        assert out.shape == (3, 2)

    def test_invalid_layers_rejected(self):
        with pytest.raises(ValueError):
            MLP(4, 8, 2, num_layers=0)

    def test_invalid_activation_rejected(self):
        with pytest.raises(ValueError):
            MLP(4, 8, 2, activation="gelu")

    def test_learns_xor(self):
        """2-layer MLP can fit XOR — sanity that nonlinearity works."""
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = MLP(2, 16, 2, num_layers=2, seed=1)
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            loss = functional.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            optimizer.step()
        preds = model(Tensor(x)).data.argmax(axis=1)
        np.testing.assert_array_equal(preds, y)

    def test_dropout_only_in_training(self):
        model = MLP(4, 32, 2, num_layers=2, seed=0, dropout=0.9)
        x = np.ones((3, 4))
        model.eval()
        out1 = model(Tensor(x)).data
        out2 = model(Tensor(x)).data
        np.testing.assert_allclose(out1, out2)


class TestProjectionHead:
    def test_shape(self):
        head = ProjectionHead(8, 16, 4, seed=0)
        out = head(Tensor(np.zeros((5, 8))))
        assert out.shape == (5, 4)

    def test_has_two_layers_of_params(self):
        head = ProjectionHead(8, 16, 4, seed=0)
        assert len(head.parameters()) == 4  # two weights + two biases
