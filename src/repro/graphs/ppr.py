"""Personalized PageRank diffusion.

MVGRL (one of the diffusion-based baselines in Tab. I) contrasts the raw
adjacency view against a graph-diffusion view, canonically the PPR kernel
``S = α (I − (1 − α) D^{-1/2} A D^{-1/2})^{-1}``.  We compute it densely
(the benchmark analogues are small) or by power iteration, then sparsify to
a top-k graph so downstream GCNs stay sparse.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .adjacency import normalized_adjacency
from .graph import Graph


def ppr_matrix(graph: Graph, alpha: float = 0.15, exact: bool = True, iterations: int = 50) -> np.ndarray:
    """Dense PPR diffusion matrix.

    Parameters
    ----------
    alpha:
        Teleport probability (0.15 is the MVGRL default).
    exact:
        Solve the linear system directly; otherwise run ``iterations`` steps
        of the geometric-series expansion (useful for larger graphs).
    """
    if not 0 < alpha < 1:
        raise ValueError("alpha must be in (0, 1)")
    a_n = normalized_adjacency(graph.adjacency, method="symmetric", self_loops=True)
    n = graph.num_nodes
    if exact:
        dense = np.eye(n) - (1.0 - alpha) * a_n.toarray()
        return alpha * np.linalg.inv(dense)
    # Geometric series: alpha * sum_k ((1-alpha) A_n)^k.
    result = np.eye(n) * alpha
    term = np.eye(n) * alpha
    a_dense = a_n.toarray()
    for _ in range(iterations):
        term = (1.0 - alpha) * (term @ a_dense)
        result += term
        if np.abs(term).max() < 1e-10:
            break
    return result


def topk_sparsify(matrix: np.ndarray, k: int) -> sp.csr_matrix:
    """Keep the ``k`` largest off-diagonal entries per row, symmetrized.

    This is the standard trick to turn a dense diffusion kernel back into a
    sparse graph the GCN can propagate over.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    n = matrix.shape[0]
    work = matrix.copy()
    np.fill_diagonal(work, -np.inf)
    rows, cols = [], []
    k_eff = min(k, n - 1) if n > 1 else 0
    for i in range(n):
        if k_eff == 0:
            continue
        top = np.argpartition(work[i], -k_eff)[-k_eff:]
        top = top[np.isfinite(work[i][top])]
        rows.extend([i] * len(top))
        cols.extend(top.tolist())
    adj = sp.csr_matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n))
    adj = adj.maximum(adj.T)
    adj.setdiag(0)
    adj.eliminate_zeros()
    return adj


def ppr_diffusion_graph(graph: Graph, alpha: float = 0.15, top_k: int = 16) -> Graph:
    """MVGRL's second view: the top-k sparsified PPR graph over the same features."""
    diffusion = ppr_matrix(graph, alpha=alpha, exact=graph.num_nodes <= 3000)
    adjacency = topk_sparsify(diffusion, top_k)
    return Graph(adjacency, graph.features, graph.labels, name=f"{graph.name}[ppr]")
