"""The :class:`Graph` container used throughout the reproduction.

A graph is ``G(V, A, X)`` exactly as in the paper's Sec. II: a node set
(implicit, ``0..n-1``), a symmetric binary adjacency matrix ``A`` stored as
scipy CSR, and a dense feature matrix ``X``.  Node labels ``y`` are carried
along for the *downstream* evaluation only — none of the contrastive
pre-training code reads them.

The class is deliberately immutable-ish: augmentation operators return new
``Graph`` objects rather than mutating in place, which keeps the view
generator honest (the original graph survives every experiment).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp


class GraphConstructionError(ValueError):
    """Structured rejection of an invalid edge list.

    Carries the offending pairs so callers (delta replay, validation
    tooling) can report or skip them precisely instead of parsing the
    message.  ``self_loops`` holds ``(u, u)`` pairs, ``duplicates`` holds
    canonicalized ``(u, v)`` pairs (``u < v``) that appeared more than once
    — including a reversed ``(v, u)`` restatement of an earlier edge, which
    would otherwise be silently collapsed by symmetrization while a
    *doubled* entry would poison degree normalization on mutated graphs.
    """

    def __init__(
        self,
        message: str,
        *,
        self_loops: Sequence[Tuple[int, int]] = (),
        duplicates: Sequence[Tuple[int, int]] = (),
    ) -> None:
        super().__init__(message)
        self.self_loops = [tuple(int(x) for x in e) for e in self_loops]
        self.duplicates = [tuple(int(x) for x in e) for e in duplicates]


class Graph:
    """An undirected attributed graph.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` scipy sparse matrix.  It is symmetrized, binarized, and
        stripped of self-loops on construction so every algorithm can rely
        on those invariants.
    features:
        ``(n, d)`` dense feature matrix.
    labels:
        Optional ``(n,)`` integer class labels (downstream tasks only).
    name:
        Human-readable dataset name for logs and benchmark tables.
    """

    def __init__(
        self,
        adjacency: sp.spmatrix,
        features: np.ndarray,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        adjacency = sp.csr_matrix(adjacency)
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ValueError(f"adjacency must be square; got {adjacency.shape}")
        n = adjacency.shape[0]
        if adjacency.nnz and not np.isfinite(adjacency.data).all():
            raise ValueError(
                f"adjacency of {name!r} contains non-finite entries"
            )
        try:
            features = np.asarray(features, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"features of {name!r} must be numeric "
                f"(got dtype {np.asarray(features).dtype}): {exc}"
            ) from exc
        if features.ndim != 2 or features.shape[0] != n:
            raise ValueError(
                f"features must be (n={n}, d); got {features.shape}"
            )
        if not np.isfinite(features).all():
            bad = int(features.shape[0] - np.isfinite(features).all(axis=1).sum())
            raise ValueError(
                f"features of {name!r} contain NaN/Inf in {bad} row(s); "
                "propagation would silently poison every embedding — clean "
                "or impute the features first"
            )
        if labels is not None:
            labels = np.asarray(labels)
            if labels.shape != (n,):
                raise ValueError(f"labels must be ({n},); got {labels.shape}")
            if not np.issubdtype(labels.dtype, np.integer):
                raise ValueError(
                    f"labels of {name!r} must be integers; got dtype "
                    f"{labels.dtype}"
                )
            if labels.size and int(labels.min()) < 0:
                raise ValueError(
                    f"labels of {name!r} contain negative class indices "
                    f"(min {int(labels.min())})"
                )

        # Enforce invariants: symmetric, binary, no self-loops.
        adjacency = adjacency.maximum(adjacency.T)
        adjacency.setdiag(0)
        adjacency.eliminate_zeros()
        adjacency.data = np.ones_like(adjacency.data)

        self.adjacency: sp.csr_matrix = adjacency.tocsr()
        self.features = features
        self.labels = labels
        self.name = name
        self._degrees: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edge_list(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        features: Optional[np.ndarray] = None,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> "Graph":
        """Build a graph from (u, v) pairs; features default to identity rows.

        Self-loops and duplicate edges (including ``(v, u)`` restatements of
        an earlier ``(u, v)``) are rejected with a structured
        :class:`GraphConstructionError` — the constructor would silently
        canonicalize them away, hiding bugs in the edge source.
        """
        edges = np.asarray(list(edges), dtype=np.int64)
        if edges.size == 0:
            adjacency = sp.csr_matrix((num_nodes, num_nodes))
        else:
            if edges.min() < 0 or edges.max() >= num_nodes:
                raise ValueError("edge endpoint out of range")
            loops = edges[edges[:, 0] == edges[:, 1]]
            if loops.size:
                raise GraphConstructionError(
                    f"edge list of {name!r} contains {loops.shape[0]} "
                    f"self-loop(s), e.g. {tuple(loops[0])}",
                    self_loops=loops[:8].tolist(),
                )
            canon = np.sort(edges, axis=1)
            uniq, counts = np.unique(canon, axis=0, return_counts=True)
            if (counts > 1).any():
                dups = uniq[counts > 1]
                raise GraphConstructionError(
                    f"edge list of {name!r} contains {dups.shape[0]} "
                    f"duplicate undirected edge(s), e.g. {tuple(dups[0])}",
                    duplicates=dups[:8].tolist(),
                )
            rows = np.concatenate([edges[:, 0], edges[:, 1]])
            cols = np.concatenate([edges[:, 1], edges[:, 0]])
            data = np.ones(rows.shape[0])
            adjacency = sp.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))
        if features is None:
            features = np.eye(num_nodes)
        return cls(adjacency, features, labels=labels, name=name)

    @classmethod
    def from_canonical_csr(
        cls,
        indptr: np.ndarray,
        indices: np.ndarray,
        features: np.ndarray,
        labels: Optional[np.ndarray] = None,
        name: str = "graph",
        validate: bool = False,
    ) -> "Graph":
        """Wrap already-canonical CSR arrays without re-canonicalizing.

        The caller guarantees the arrays describe a symmetric binary
        adjacency with no self-loops and sorted indices per row (the
        invariants ``__init__`` enforces).  This is the fast path for
        incremental mutation (``repro.stream.MutableGraph``), where the
        arrays are maintained canonical by construction and a
        ``maximum(A, A.T)`` round-trip per apply would dominate.  Pass
        ``validate=True`` to pay for a full invariant check.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        n = indptr.shape[0] - 1
        adjacency = sp.csr_matrix(
            (np.ones(indices.shape[0], dtype=np.float64), indices, indptr),
            shape=(n, n),
        )
        adjacency.has_sorted_indices = True
        graph = cls.__new__(cls)
        graph.adjacency = adjacency
        graph.features = np.asarray(features, dtype=np.float64)
        if graph.features.ndim != 2 or graph.features.shape[0] != n:
            raise ValueError(
                f"features must be (n={n}, d); got {graph.features.shape}"
            )
        graph.labels = None if labels is None else np.asarray(labels)
        graph.name = name
        graph._degrees = None
        if validate:
            graph.validate()
        return graph

    def copy(self) -> "Graph":
        """Deep copy (fresh adjacency, features, labels)."""
        return Graph(self.adjacency.copy(), self.features.copy(),
                     None if self.labels is None else self.labels.copy(), self.name)

    def with_adjacency(self, adjacency: sp.spmatrix) -> "Graph":
        """New graph sharing features/labels but with a different structure."""
        return Graph(adjacency, self.features, self.labels, self.name)

    def with_features(self, features: np.ndarray) -> "Graph":
        """New graph sharing structure/labels but with different features."""
        return Graph(self.adjacency, features, self.labels, self.name)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.adjacency.nnz // 2)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        if self.labels is None:
            raise ValueError(f"graph {self.name!r} has no labels")
        return int(self.labels.max()) + 1

    @property
    def degrees(self) -> np.ndarray:
        """Node degrees as a float array (cached)."""
        if self._degrees is None:
            self._degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()
        return self._degrees

    @property
    def average_degree(self) -> float:
        return float(self.degrees.mean()) if self.num_nodes else 0.0

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> np.ndarray:
        """1-hop neighbors of ``node`` (sorted, CSR order)."""
        start, stop = self.adjacency.indptr[node], self.adjacency.indptr[node + 1]
        return self.adjacency.indices[start:stop]

    def two_hop_neighbors(self, node: int) -> np.ndarray:
        """Nodes at distance exactly 1 or 2 from ``node`` (excluding itself).

        This is the candidate set ``N_u^1 ∪ N_u^2`` of Alg. 3.
        """
        one_hop = self.neighbors(node)
        if one_hop.size == 0:
            return one_hop
        seen = set(one_hop.tolist())
        seen.add(node)
        result = list(one_hop)
        for u in one_hop:
            for w in self.neighbors(u):
                if w not in seen:
                    seen.add(w)
                    result.append(w)
        return np.asarray(sorted(result), dtype=np.int64)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge (u, v) exists."""
        return bool(self.adjacency[u, v])

    def edge_array(self) -> np.ndarray:
        """Undirected edges as an ``(m, 2)`` array with ``u < v`` per row."""
        coo = sp.triu(self.adjacency, k=1).tocoo()
        return np.stack([coo.row, coo.col], axis=1)

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Sequence[int], name: Optional[str] = None) -> Tuple["Graph", np.ndarray]:
        """Subgraph induced on ``nodes``; returns (graph, original-id map).

        The returned mapping array gives, for each new node index, its id in
        the parent graph.
        """
        nodes = np.asarray(sorted(set(int(v) for v in nodes)), dtype=np.int64)
        sub_adj = self.adjacency[nodes][:, nodes]
        sub_x = self.features[nodes]
        sub_y = None if self.labels is None else self.labels[nodes]
        sub = Graph(sub_adj, sub_x, sub_y, name or f"{self.name}[sub]")
        return sub, nodes

    def ego_nodes(self, center: int, hops: int) -> np.ndarray:
        """All nodes within ``hops`` of ``center`` (including ``center``)."""
        frontier = {int(center)}
        seen = {int(center)}
        for _ in range(hops):
            next_frontier = set()
            for v in frontier:
                for u in self.neighbors(v):
                    if int(u) not in seen:
                        seen.add(int(u))
                        next_frontier.add(int(u))
            frontier = next_frontier
            if not frontier:
                break
        return np.asarray(sorted(seen), dtype=np.int64)

    def ego_subgraph(self, center: int, hops: int) -> Tuple["Graph", int]:
        """``L``-hop local subgraph ``G_v`` and the center's index inside it."""
        nodes = self.ego_nodes(center, hops)
        sub, mapping = self.induced_subgraph(nodes, name=f"{self.name}[ego:{center}]")
        local_center = int(np.searchsorted(mapping, center))
        return sub, local_center

    # ------------------------------------------------------------------
    # Interop / debugging
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a networkx graph (features/labels as node attributes)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self.edge_array()))
        return g

    def validate(self) -> None:
        """Raise if any structural invariant is violated (used in tests)."""
        adj = self.adjacency
        if (adj != adj.T).nnz != 0:
            raise AssertionError("adjacency is not symmetric")
        if adj.diagonal().sum() != 0:
            raise AssertionError("adjacency has self loops")
        if adj.nnz and not np.all(adj.data == 1.0):
            raise AssertionError("adjacency is not binary")
        for row in range(self.num_nodes):
            seg = adj.indices[adj.indptr[row]:adj.indptr[row + 1]]
            if seg.size > 1 and np.any(np.diff(seg) <= 0):
                raise AssertionError(f"row {row} indices not strictly sorted")
        if self.features.shape[0] != self.num_nodes:
            raise AssertionError("feature row count mismatch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Graph(name={self.name!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges}, features={self.num_features})"
        )
