"""Synthetic graph generators.

The paper evaluates on public attributed graphs (Cora, Citeseer, Photo,
Computers, CS, ogbn-Arxiv, ogbn-Products).  This environment has no network
access, so :mod:`repro.graphs.datasets` replaces each one with a graph drawn
from the generators here: a degree-corrected stochastic block model for the
structure plus a class-conditioned sparse binary feature model.

Why this preserves the paper's behaviour
----------------------------------------
Every mechanism in E2GCL depends only on statistics these generators
control:

* *coreset redundancy* — nodes of the same class share feature topics and
  neighborhoods, so ``A_n^L X`` rows cluster by class exactly as on citation
  graphs;
* *edge/feature importance* — degree heterogeneity (power-law-ish weights)
  gives non-trivial centrality scores, and class-correlated feature topics
  give non-trivial per-dimension importance;
* *homophily* — the SBM in/out ratio reproduces the "neighbors share labels"
  property GNNs exploit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .graph import Graph


@dataclass
class FeatureModel:
    """Class-conditioned sparse binary features (bag-of-words style).

    Each class owns ``topic_dims`` preferred dimensions.  A node of that
    class switches each preferred dimension on with probability ``p_on`` and
    every other dimension on with probability ``p_noise`` — mirroring how
    papers of one area share vocabulary in a citation network.
    """

    num_features: int
    topic_dims: int = 8
    p_on: float = 0.2
    p_noise: float = 0.05


def _class_topic_slices(num_classes: int, model: FeatureModel) -> Sequence[np.ndarray]:
    """Assign each class a block of preferred feature dimensions."""
    dims = np.arange(model.num_features)
    per_class = max(1, min(model.topic_dims, model.num_features // max(num_classes, 1)))
    slices = []
    for c in range(num_classes):
        start = (c * per_class) % max(model.num_features - per_class + 1, 1)
        slices.append(dims[start:start + per_class])
    return slices


def sample_features(
    labels: np.ndarray,
    model: FeatureModel,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw binary features for every node given its class label."""
    n = labels.shape[0]
    num_classes = int(labels.max()) + 1 if n else 0
    x = (rng.random((n, model.num_features)) < model.p_noise).astype(np.float64)
    topics = _class_topic_slices(num_classes, model)
    for c in range(num_classes):
        members = np.flatnonzero(labels == c)
        if members.size == 0:
            continue
        on = rng.random((members.size, topics[c].size)) < model.p_on
        x[np.ix_(members, topics[c])] = np.maximum(x[np.ix_(members, topics[c])], on)
    # Guarantee no all-zero feature rows (they break similarity scores).
    empty = np.flatnonzero(x.sum(axis=1) == 0)
    for v in empty:
        x[v, rng.integers(model.num_features)] = 1.0
    return x


def degree_corrected_sbm(
    num_nodes: int,
    num_classes: int,
    avg_degree: float,
    homophily: float,
    rng: np.random.Generator,
    power: float = 1.6,
    class_probs: Optional[np.ndarray] = None,
    classes_per_block: int = 1,
    block_homophily: float = 0.0,
) -> tuple:
    """Sample (edges, labels) from a degree-corrected stochastic block model.

    Parameters
    ----------
    num_nodes, num_classes:
        Graph size and label count.
    avg_degree:
        Target mean degree; edge count is ``num_nodes * avg_degree / 2``.
    homophily:
        Fraction of edges whose endpoints share a class (0.5 = no structure,
        citation graphs sit around 0.8).
    power:
        Pareto exponent of the per-node degree propensity (degree
        heterogeneity; larger = more uniform).
    class_probs:
        Optional class prior (defaults to uniform).
    classes_per_block, block_homophily:
        Coarse community structure: classes are grouped into blocks of
        ``classes_per_block`` and, beyond the same-class edges, a
        ``block_homophily`` fraction of edges connects *different* classes
        of the same block.  This models co-purchase graphs (Photo/
        Computers) where product categories share communities but differ
        in features — structure alone cannot fully separate the labels.
    """
    if class_probs is None:
        class_probs = np.full(num_classes, 1.0 / num_classes)
    if classes_per_block < 1:
        raise ValueError("classes_per_block must be >= 1")
    if homophily + block_homophily > 1.0:
        raise ValueError("homophily + block_homophily must be <= 1")
    labels = rng.choice(num_classes, size=num_nodes, p=class_probs)
    blocks = labels // classes_per_block
    num_blocks = int(blocks.max()) + 1 if num_nodes else 0
    theta = rng.pareto(power, size=num_nodes) + 1.0  # degree propensities

    members = [np.flatnonzero(labels == c) for c in range(num_classes)]
    member_weights = []
    for c in range(num_classes):
        w = theta[members[c]]
        member_weights.append(w / w.sum() if w.size else w)
    block_members = []
    block_weights = []
    for b in range(num_blocks):
        mem = np.flatnonzero((blocks == b) & (labels != -1))
        block_members.append(mem)
        w = theta[mem]
        block_weights.append(w / w.sum() if w.size else w)
    all_weights = theta / theta.sum()

    target_edges = int(num_nodes * avg_degree / 2)
    edges = set()
    attempts = 0
    max_attempts = target_edges * 30
    while len(edges) < target_edges and attempts < max_attempts:
        attempts += 1
        u = int(rng.choice(num_nodes, p=all_weights))
        roll = rng.random()
        if roll < homophily and members[labels[u]].size > 1:
            c = labels[u]
            v = int(rng.choice(members[c], p=member_weights[c]))
        elif roll < homophily + block_homophily and block_members[blocks[u]].size > 1:
            b = blocks[u]
            v = int(rng.choice(block_members[b], p=block_weights[b]))
        else:
            v = int(rng.choice(num_nodes, p=all_weights))
        if u == v:
            continue
        edges.add((min(u, v), max(u, v)))

    edge_array = np.asarray(sorted(edges), dtype=np.int64)
    return edge_array, labels


def attributed_graph(
    num_nodes: int,
    num_classes: int,
    num_features: int,
    avg_degree: float,
    homophily: float,
    seed: int,
    name: str = "synthetic",
    feature_model: Optional[FeatureModel] = None,
    power: float = 1.6,
    classes_per_block: int = 1,
    block_homophily: float = 0.0,
) -> Graph:
    """Full attributed benchmark analogue: DC-SBM structure + topic features."""
    rng = np.random.default_rng(seed)
    edges, labels = degree_corrected_sbm(
        num_nodes, num_classes, avg_degree, homophily, rng, power=power,
        classes_per_block=classes_per_block, block_homophily=block_homophily,
    )
    model = feature_model or FeatureModel(num_features=num_features)
    features = sample_features(labels, model, rng)
    graph = Graph.from_edge_list(num_nodes, edges, features=features, labels=labels, name=name)
    return _ensure_no_isolates(graph, labels, rng)


def _ensure_no_isolates(graph: Graph, labels: np.ndarray, rng: np.random.Generator) -> Graph:
    """Attach every isolated node to a random same-class node.

    Isolated nodes are legal for the algorithms (tests cover them) but the
    benchmark analogues should look like real citation graphs, which are
    dominated by one large component.
    """
    isolates = np.flatnonzero(graph.degrees == 0)
    if isolates.size == 0:
        return graph
    adj = graph.adjacency.tolil()
    for v in isolates:
        same = np.flatnonzero(labels == labels[v])
        candidates = same[same != v]
        target = int(rng.choice(candidates)) if candidates.size else int((v + 1) % graph.num_nodes)
        adj[v, target] = 1
        adj[target, v] = 1
    return Graph(adj.tocsr(), graph.features, graph.labels, graph.name)


def chord_ring_graph(
    num_nodes: int,
    chords_per_node: float,
    seed: int,
    num_features: int = 16,
    num_classes: int = 8,
    name: Optional[str] = None,
    feature_dir: Optional[str] = None,
) -> Graph:
    """Connected ring + random chords, built fully vectorized in ``O(m)``.

    The scale-tier workhorse: :func:`degree_corrected_sbm` draws edges one
    rejection-sampled pair at a time (fine at 10^4 nodes, hopeless at
    10^6), while this generator materializes the whole edge list with a
    handful of array ops — a ring ``(i, i+1)`` guarantees connectivity and
    no isolates, and ``num_nodes * chords_per_node / 2`` uniform chords
    add small-world shortcuts and degree variance.  Labels are contiguous
    arcs of the ring (``num_classes`` blocks) so downstream probes have
    signal; features are gaussians with a per-class mean shift.

    With ``feature_dir`` set, features are written to
    ``<feature_dir>/features.npy`` and the graph holds a read-only memmap
    — the out-of-core regime the :mod:`repro.scale` feature store targets
    (the ``Graph`` constructor keeps float64 memmaps as views, never
    copying the matrix into RAM).
    """
    if num_nodes < 3:
        raise ValueError("chord_ring_graph needs at least 3 nodes")
    rng = np.random.default_rng(seed)
    ring = np.arange(num_nodes, dtype=np.int64)
    ring_edges = np.stack([ring, (ring + 1) % num_nodes], axis=1)
    num_chords = int(num_nodes * chords_per_node / 2)
    chords = rng.integers(0, num_nodes, size=(num_chords, 2), dtype=np.int64)
    chords = chords[chords[:, 0] != chords[:, 1]]
    edges = np.concatenate([ring_edges, chords])
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    adjacency = sp.csr_matrix(
        (np.ones(rows.shape[0]), (rows, cols)),
        shape=(num_nodes, num_nodes))
    adjacency.data = np.ones_like(adjacency.data)  # collapse duplicates
    labels = (ring * num_classes // num_nodes).astype(np.int64)
    shift = rng.normal(scale=0.5, size=(num_classes, num_features))
    features = rng.normal(size=(num_nodes, num_features))
    features += shift[labels]
    if feature_dir is not None:
        from pathlib import Path

        path = Path(feature_dir) / "features.npy"
        path.parent.mkdir(parents=True, exist_ok=True)
        np.save(path, features)
        features = np.load(path, mmap_mode="r")
    return Graph(adjacency, features, labels,
                 name=name or f"chord-ring-{num_nodes}")


def random_graph(num_nodes: int, edge_prob: float, seed: int, num_features: int = 8) -> Graph:
    """Erdős–Rényi graph with gaussian features; used by unit tests."""
    rng = np.random.default_rng(seed)
    upper = rng.random((num_nodes, num_nodes)) < edge_prob
    upper = np.triu(upper, k=1)
    adj = sp.csr_matrix(upper.astype(float))
    features = rng.normal(size=(num_nodes, num_features))
    labels = rng.integers(0, 2, size=num_nodes)
    return Graph(adj, features, labels, name=f"er-{num_nodes}")
