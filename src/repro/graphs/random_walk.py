"""Random walks over graphs: uniform (DeepWalk) and biased (Node2Vec).

The traditional unsupervised baselines in Tab. IV learn embeddings from
walk corpora via skip-gram; the walk machinery lives here so both baselines
share it.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from .graph import Graph


def uniform_random_walks(
    graph: Graph,
    walks_per_node: int,
    walk_length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """DeepWalk corpus: ``walks_per_node`` uniform walks from every node.

    Returns an ``(num_walks, walk_length)`` int array.  Walks stopped early
    at dead ends are padded by repeating the last node (harmless for
    skip-gram since self-pairs are skipped downstream).
    """
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    walks = np.empty((graph.num_nodes * walks_per_node, walk_length), dtype=np.int64)
    row = 0
    for _ in range(walks_per_node):
        for start in range(graph.num_nodes):
            current = start
            walks[row, 0] = current
            for step in range(1, walk_length):
                neigh = graph.neighbors(current)
                if neigh.size == 0:
                    walks[row, step:] = current
                    break
                current = int(neigh[rng.integers(neigh.size)])
                walks[row, step] = current
            row += 1
    return walks


def node2vec_walks(
    graph: Graph,
    walks_per_node: int,
    walk_length: int,
    rng: np.random.Generator,
    p: float = 1.0,
    q: float = 1.0,
) -> np.ndarray:
    """Node2Vec second-order walks with return parameter ``p`` and in-out ``q``.

    Transition weight from ``t -> v -> x``: ``1/p`` to return to ``t``,
    ``1`` when ``x`` is adjacent to ``t``, and ``1/q`` otherwise.
    """
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    neighbor_sets = [set(graph.neighbors(v).tolist()) for v in range(graph.num_nodes)]
    walks = np.empty((graph.num_nodes * walks_per_node, walk_length), dtype=np.int64)
    row = 0
    for _ in range(walks_per_node):
        for start in range(graph.num_nodes):
            walk = [start]
            while len(walk) < walk_length:
                current = walk[-1]
                neigh = graph.neighbors(current)
                if neigh.size == 0:
                    break
                if len(walk) == 1:
                    nxt = int(neigh[rng.integers(neigh.size)])
                else:
                    prev = walk[-2]
                    weights = np.empty(neigh.size)
                    prev_neighbors = neighbor_sets[prev]
                    for i, x in enumerate(neigh):
                        if x == prev:
                            weights[i] = 1.0 / p
                        elif int(x) in prev_neighbors:
                            weights[i] = 1.0
                        else:
                            weights[i] = 1.0 / q
                    weights /= weights.sum()
                    nxt = int(neigh[rng.choice(neigh.size, p=weights)])
                walk.append(nxt)
            while len(walk) < walk_length:
                walk.append(walk[-1])
            walks[row] = walk
            row += 1
    return walks


def skip_gram_pairs(walks: np.ndarray, window: int) -> Iterator[Tuple[int, int]]:
    """(center, context) pairs within ``window`` of each other, self-pairs skipped."""
    if window < 1:
        raise ValueError("window must be >= 1")
    for walk in walks:
        length = walk.shape[0]
        for i in range(length):
            lo = max(0, i - window)
            hi = min(length, i + window + 1)
            for j in range(lo, hi):
                if i != j and walk[i] != walk[j]:
                    yield int(walk[i]), int(walk[j])
