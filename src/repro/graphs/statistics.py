"""Graph statistics used to audit the synthetic dataset analogues.

The substitution argument of DESIGN.md §4 rests on the analogues matching
the originals on a handful of statistics — these functions compute them so
tests (and users) can check the claim mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .graph import Graph


def edge_homophily(graph: Graph) -> float:
    """Fraction of edges whose endpoints share a label."""
    if graph.labels is None:
        raise ValueError("homophily needs labels")
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    return float((graph.labels[edges[:, 0]] == graph.labels[edges[:, 1]]).mean())


def feature_sparsity(graph: Graph) -> float:
    """Fraction of zero entries in the feature matrix."""
    return float((graph.features == 0).mean())


def degree_gini(graph: Graph) -> float:
    """Gini coefficient of the degree distribution (0 = regular,
    → 1 = extremely heterogeneous)."""
    degrees = np.sort(graph.degrees)
    n = degrees.size
    if n == 0 or degrees.sum() == 0:
        return 0.0
    index = np.arange(1, n + 1)
    return float((2 * (index * degrees).sum() - (n + 1) * degrees.sum())
                 / (n * degrees.sum()))


def class_balance(graph: Graph) -> np.ndarray:
    """Per-class node fraction."""
    if graph.labels is None:
        raise ValueError("class balance needs labels")
    counts = np.bincount(graph.labels, minlength=graph.num_classes)
    return counts / counts.sum()


def connected_component_sizes(graph: Graph) -> np.ndarray:
    """Sizes of connected components, largest first (BFS, pure python)."""
    n = graph.num_nodes
    seen = np.zeros(n, dtype=bool)
    sizes = []
    for start in range(n):
        if seen[start]:
            continue
        queue = [start]
        seen[start] = True
        size = 0
        while queue:
            node = queue.pop()
            size += 1
            for neighbor in graph.neighbors(node):
                if not seen[neighbor]:
                    seen[neighbor] = True
                    queue.append(int(neighbor))
        sizes.append(size)
    return np.asarray(sorted(sizes, reverse=True))


@dataclass
class GraphSummary:
    """One-line-per-statistic audit of a graph."""

    name: str
    num_nodes: int
    num_edges: int
    avg_degree: float
    homophily: Optional[float]
    feature_sparsity: float
    degree_gini: float
    largest_component_fraction: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "avg_degree": self.avg_degree,
            "homophily": self.homophily if self.homophily is not None else float("nan"),
            "feature_sparsity": self.feature_sparsity,
            "degree_gini": self.degree_gini,
            "largest_component_fraction": self.largest_component_fraction,
        }

    def __str__(self) -> str:  # pragma: no cover - formatting
        hom = f"{self.homophily:.2f}" if self.homophily is not None else "n/a"
        return (f"{self.name}: n={self.num_nodes} m={self.num_edges} "
                f"deg={self.avg_degree:.2f} hom={hom} "
                f"sparsity={self.feature_sparsity:.2f} gini={self.degree_gini:.2f} "
                f"lcc={self.largest_component_fraction:.2f}")


def summarize_graph(graph: Graph) -> GraphSummary:
    """Compute the full audit for one graph."""
    components = connected_component_sizes(graph)
    return GraphSummary(
        name=graph.name,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        avg_degree=graph.average_degree,
        homophily=edge_homophily(graph) if graph.labels is not None else None,
        feature_sparsity=feature_sparsity(graph),
        degree_gini=degree_gini(graph),
        largest_component_fraction=(
            float(components[0] / graph.num_nodes) if graph.num_nodes else 0.0
        ),
    )
