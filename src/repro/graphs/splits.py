"""Train/validation/test splits for nodes, edges, and whole graphs.

Implements the paper's evaluation splits:

* node classification — random 10%/10%/80% node splits, re-drawn per trial
  (Sec. V-A2); a stratified option keeps every class represented in training;
* link prediction — random 70%/10%/20% edge splits with matched negative
  (non-edge) samples, and a *training graph* that contains only training
  edges so no test information leaks into pre-training (Sec. V-E1);
* graph classification — random 70%/10%/20% splits over a list of graphs
  (Sec. V-E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .adjacency import adjacency_from_edges
from .graph import Graph


@dataclass
class NodeSplit:
    """Index arrays into ``0..n-1``; disjoint and covering."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray


def split_nodes(
    num_nodes: int,
    rng: np.random.Generator,
    train_frac: float = 0.1,
    val_frac: float = 0.1,
    labels: Optional[np.ndarray] = None,
    stratified: bool = True,
) -> NodeSplit:
    """Random node split; stratified by label when labels are given.

    Stratification guarantees at least one training node per class whenever
    a class has ≥ 1 member, which the linear decoder needs to fit at all on
    the smallest test graphs.
    """
    if not 0 < train_frac + val_frac < 1:
        raise ValueError("train_frac + val_frac must be in (0, 1)")
    if labels is None or not stratified:
        order = rng.permutation(num_nodes)
        n_train = max(1, int(round(train_frac * num_nodes)))
        n_val = max(1, int(round(val_frac * num_nodes)))
        return NodeSplit(
            train=np.sort(order[:n_train]),
            val=np.sort(order[n_train:n_train + n_val]),
            test=np.sort(order[n_train + n_val:]),
        )

    labels = np.asarray(labels)
    train_parts: List[np.ndarray] = []
    val_parts: List[np.ndarray] = []
    test_parts: List[np.ndarray] = []
    for c in np.unique(labels):
        members = rng.permutation(np.flatnonzero(labels == c))
        n_train = max(1, int(round(train_frac * members.size)))
        n_val = max(1, int(round(val_frac * members.size))) if members.size > 2 else 0
        train_parts.append(members[:n_train])
        val_parts.append(members[n_train:n_train + n_val])
        test_parts.append(members[n_train + n_val:])
    return NodeSplit(
        train=np.sort(np.concatenate(train_parts)),
        val=np.sort(np.concatenate(val_parts)) if val_parts else np.array([], dtype=np.int64),
        test=np.sort(np.concatenate(test_parts)),
    )


@dataclass
class EdgeSplit:
    """Link-prediction split.

    ``train_graph`` contains only training edges (leakage-free pre-training);
    ``*_pos``/``*_neg`` are ``(m, 2)`` arrays of positive and sampled
    negative node pairs.
    """

    train_graph: Graph
    train_pos: np.ndarray
    val_pos: np.ndarray
    test_pos: np.ndarray
    train_neg: np.ndarray
    val_neg: np.ndarray
    test_neg: np.ndarray


def sample_negative_edges(graph: Graph, count: int, rng: np.random.Generator) -> np.ndarray:
    """Sample ``count`` node pairs that are not edges (and not self-pairs)."""
    n = graph.num_nodes
    existing = {tuple(e) for e in graph.edge_array()}
    negatives = set()
    max_attempts = count * 50 + 100
    attempts = 0
    while len(negatives) < count and attempts < max_attempts:
        attempts += 1
        u = int(rng.integers(n))
        v = int(rng.integers(n))
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in existing or pair in negatives:
            continue
        negatives.add(pair)
    return np.asarray(sorted(negatives), dtype=np.int64).reshape(-1, 2)


def split_edges(
    graph: Graph,
    rng: np.random.Generator,
    train_frac: float = 0.7,
    val_frac: float = 0.1,
) -> EdgeSplit:
    """70/10/20 edge split with equal-size negative samples per bucket."""
    edges = graph.edge_array()
    m = edges.shape[0]
    if m < 5:
        raise ValueError("graph too small for an edge split")
    order = rng.permutation(m)
    n_train = int(round(train_frac * m))
    n_val = int(round(val_frac * m))
    train_pos = edges[order[:n_train]]
    val_pos = edges[order[n_train:n_train + n_val]]
    test_pos = edges[order[n_train + n_val:]]

    train_adj = adjacency_from_edges(graph.num_nodes, train_pos)
    train_graph = Graph(train_adj, graph.features, graph.labels, name=f"{graph.name}[train-edges]")

    negatives = sample_negative_edges(graph, m, rng)
    neg_order = rng.permutation(negatives.shape[0])
    negatives = negatives[neg_order]
    n_vneg = min(n_val, negatives.shape[0])
    n_tneg = min(test_pos.shape[0], max(negatives.shape[0] - n_train - n_vneg, 0))
    train_neg = negatives[:n_train]
    val_neg = negatives[n_train:n_train + n_vneg]
    test_neg = negatives[n_train + n_vneg:n_train + n_vneg + n_tneg]

    return EdgeSplit(
        train_graph=train_graph,
        train_pos=train_pos,
        val_pos=val_pos,
        test_pos=test_pos,
        train_neg=train_neg,
        val_neg=val_neg,
        test_neg=test_neg,
    )


@dataclass
class GraphSplit:
    """Index arrays into a list of graphs (graph-classification tasks)."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray


def split_graphs(
    num_graphs: int,
    rng: np.random.Generator,
    train_frac: float = 0.7,
    val_frac: float = 0.1,
) -> GraphSplit:
    """Random 70/10/20 split over graph indices."""
    order = rng.permutation(num_graphs)
    n_train = max(1, int(round(train_frac * num_graphs)))
    n_val = max(1, int(round(val_frac * num_graphs)))
    return GraphSplit(
        train=np.sort(order[:n_train]),
        val=np.sort(order[n_train:n_train + n_val]),
        test=np.sort(order[n_train + n_val:]),
    )
