"""Node centrality measures.

The E2GCL scores (Sec. IV-C) use log-degree centrality
``φ_c(u) = log(D_u + 1)``; PageRank and eigenvector centrality are provided
because GCA — one of the reproduced baselines — defines its adaptive
augmentation with them as alternatives.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def degree_centrality(graph: Graph) -> np.ndarray:
    """``φ_c(u) = log(D_u + 1)`` — the paper's influence score."""
    return np.log(graph.degrees + 1.0)


def pagerank_centrality(
    graph: Graph,
    damping: float = 0.85,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> np.ndarray:
    """Power-iteration PageRank on the undirected graph."""
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0)
    degrees = graph.degrees
    with np.errstate(divide="ignore"):
        inv_deg = np.where(degrees > 0, 1.0 / degrees, 0.0)
    transition = (sp.diags(inv_deg) @ graph.adjacency).T.tocsr()
    rank = np.full(n, 1.0 / n)
    dangling = degrees == 0
    for _ in range(max_iter):
        dangling_mass = rank[dangling].sum() / n
        new_rank = damping * (transition @ rank + dangling_mass) + (1.0 - damping) / n
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return rank


def eigenvector_centrality(graph: Graph, tol: float = 1e-8, max_iter: int = 500) -> np.ndarray:
    """Power-iteration eigenvector centrality (falls back to degrees on
    graphs where the iteration cannot converge, e.g. bipartite components)."""
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0)
    vec = np.full(n, 1.0 / np.sqrt(n))
    adj = graph.adjacency
    for _ in range(max_iter):
        new_vec = adj @ vec
        norm = np.linalg.norm(new_vec)
        if norm == 0:
            return graph.degrees / max(graph.degrees.max(), 1.0)
        new_vec /= norm
        if np.abs(new_vec - vec).max() < tol:
            return np.abs(new_vec)
        vec = new_vec
    return np.abs(vec)


CENTRALITY_FUNCTIONS = {
    "degree": degree_centrality,
    "pagerank": pagerank_centrality,
    "eigenvector": eigenvector_centrality,
}


def centrality(graph: Graph, method: str = "degree") -> np.ndarray:
    """Dispatch by name; used by the GCA baseline's configuration."""
    try:
        fn = CENTRALITY_FUNCTIONS[method]
    except KeyError:
        raise ValueError(
            f"unknown centrality {method!r}; available: {sorted(CENTRALITY_FUNCTIONS)}"
        ) from None
    return fn(graph)
