"""Graph substrate: data structures, generators, datasets, and graph ops."""

from .adjacency import (
    add_self_loops,
    adjacency_from_edge_mask,
    adjacency_from_edges,
    normalized_adjacency,
    propagated_features,
)
from .batch import disjoint_union, split_union_embeddings
from .centrality import (
    centrality,
    degree_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)
from .datasets import (
    DatasetSpec,
    UnknownDatasetError,
    dataset_names,
    get_spec,
    load_dataset,
)
from .generators import (
    FeatureModel,
    attributed_graph,
    chord_ring_graph,
    degree_corrected_sbm,
    random_graph,
)
from .graph import Graph, GraphConstructionError
from .ppr import ppr_diffusion_graph, ppr_matrix, topk_sparsify
from .random_walk import node2vec_walks, skip_gram_pairs, uniform_random_walks
from .statistics import (
    GraphSummary,
    class_balance,
    connected_component_sizes,
    degree_gini,
    edge_homophily,
    feature_sparsity,
    summarize_graph,
)
from .splits import (
    EdgeSplit,
    GraphSplit,
    NodeSplit,
    sample_negative_edges,
    split_edges,
    split_graphs,
    split_nodes,
)
from .tu_datasets import load_tu_dataset, tu_dataset_names

__all__ = [
    "Graph",
    "GraphConstructionError",
    "disjoint_union",
    "split_union_embeddings",
    "normalized_adjacency",
    "add_self_loops",
    "propagated_features",
    "adjacency_from_edge_mask",
    "adjacency_from_edges",
    "degree_centrality",
    "pagerank_centrality",
    "eigenvector_centrality",
    "centrality",
    "DatasetSpec",
    "UnknownDatasetError",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "FeatureModel",
    "attributed_graph",
    "chord_ring_graph",
    "degree_corrected_sbm",
    "random_graph",
    "ppr_matrix",
    "ppr_diffusion_graph",
    "topk_sparsify",
    "uniform_random_walks",
    "node2vec_walks",
    "skip_gram_pairs",
    "NodeSplit",
    "EdgeSplit",
    "GraphSplit",
    "split_nodes",
    "split_edges",
    "split_graphs",
    "sample_negative_edges",
    "load_tu_dataset",
    "edge_homophily",
    "feature_sparsity",
    "degree_gini",
    "class_balance",
    "connected_component_sizes",
    "GraphSummary",
    "summarize_graph",
    "tu_dataset_names",
]
