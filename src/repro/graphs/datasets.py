"""Registry of synthetic analogues for the paper's benchmark datasets.

Tab. III of the paper lists seven node-classification datasets.  Each entry
below matches the original on class count and homophily and scales node
count / feature dimension down to CPU-friendly sizes (the two OGB graphs are
scaled hardest; see DESIGN.md §4 for the substitution argument).

``load_dataset(name, seed=..., scale=...)`` is the single entry point used
by every example and benchmark.  Generation is deterministic in
``(name, seed, scale)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .generators import FeatureModel, attributed_graph
from .graph import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """Generation recipe for one benchmark analogue.

    ``paper_nodes``/``paper_features`` record the original statistics from
    Tab. III so the scaling is auditable.
    """

    name: str
    num_nodes: int
    num_classes: int
    num_features: int
    avg_degree: float
    homophily: float
    paper_nodes: int
    paper_features: int
    degree_power: float = 1.6
    topic_dims: int = 8
    p_on: float = 0.2
    p_noise: float = 0.05
    classes_per_block: int = 1
    block_homophily: float = 0.0


# Node counts are chosen so the *relative* sizes match the paper
# (Cora < Citeseer < Photo < Computers < CS << Arxiv << Products) while the
# whole Tab. IV benchmark suite still runs in minutes on CPU.
# Difficulty knobs (topic_dims, p_on, p_noise, homophily) are set so the
# *relative* linear-eval accuracies track Tab. IV/V: CS easiest, then
# Photo/Cora/Computers/Citeseer, with the two OGB analogues much harder
# (paper: Arxiv ~45%, Products ~27%).
_SPECS: Dict[str, DatasetSpec] = {
    "cora": DatasetSpec("cora", 700, 7, 180, 3.9, 0.81, 2708, 1433),
    "citeseer": DatasetSpec("citeseer", 660, 6, 220, 2.7, 0.74, 3327, 3703,
                            topic_dims=8, p_on=0.24, p_noise=0.04),
    # Photo/Computers: co-purchase graphs — product categories share coarse
    # communities (classes_per_block=2) and features disambiguate within a
    # community, so structure-only methods trail feature-aware GCL as in
    # Tab. IV.
    "photo": DatasetSpec("photo", 900, 8, 128, 15.0, 0.50, 7650, 745,
                         degree_power=1.4, topic_dims=6, p_on=0.30, p_noise=0.02,
                         classes_per_block=2, block_homophily=0.30),
    "computers": DatasetSpec("computers", 1100, 10, 128, 17.0, 0.45, 13752, 767,
                             degree_power=1.4, topic_dims=5, p_on=0.30, p_noise=0.02,
                             classes_per_block=2, block_homophily=0.35),
    "cs": DatasetSpec("cs", 1200, 15, 256, 8.9, 0.81, 18333, 6805,
                      topic_dims=9, p_on=0.24),
    "arxiv": DatasetSpec("arxiv", 4000, 20, 96, 13.8, 0.62, 169343, 128,
                         topic_dims=3, p_on=0.12, p_noise=0.08),
    "products": DatasetSpec("products", 8000, 24, 100, 30.0, 0.66, 1569960, 200,
                            degree_power=1.3, topic_dims=2, p_on=0.1, p_noise=0.1),
}


class UnknownDatasetError(KeyError, ValueError):
    """Raised for dataset names not in the registry.

    Subclasses both ``KeyError`` (the registry is a mapping) and
    ``ValueError`` (the name is bad user input), so callers can catch
    whichever reads naturally.
    """

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0] if self.args else ""


def dataset_names() -> list:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_SPECS)


def get_spec(name: str) -> DatasetSpec:
    """Return the generation recipe for a dataset (case-insensitive)."""
    if not isinstance(name, str):
        raise UnknownDatasetError(
            f"dataset name must be a string, not {type(name).__name__}"
        )
    key = name.lower()
    if key not in _SPECS:
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        )
    return _SPECS[key]


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> Graph:
    """Generate the synthetic analogue of a paper dataset.

    Parameters
    ----------
    name:
        One of :func:`dataset_names` (case-insensitive).
    seed:
        Seed for the structure and feature draw.
    scale:
        Multiplier on node count (``0 < scale``).  Tests use ``scale < 1``
        for speed; ``scale > 1`` stresses the large-graph benchmarks.
    """
    spec = get_spec(name)
    if scale <= 0:
        raise ValueError("scale must be positive")
    num_nodes = max(spec.num_classes * 4, int(round(spec.num_nodes * scale)))
    return attributed_graph(
        num_nodes=num_nodes,
        num_classes=spec.num_classes,
        num_features=spec.num_features,
        avg_degree=spec.avg_degree,
        homophily=spec.homophily,
        seed=seed + _stable_hash(spec.name),
        name=spec.name,
        feature_model=FeatureModel(
            num_features=spec.num_features,
            topic_dims=spec.topic_dims,
            p_on=spec.p_on,
            p_noise=spec.p_noise,
        ),
        power=spec.degree_power,
        classes_per_block=spec.classes_per_block,
        block_homophily=spec.block_homophily,
    )


def _stable_hash(text: str) -> int:
    """Deterministic small hash (python's ``hash`` is salted per process)."""
    value = 0
    for ch in text:
        value = (value * 31 + ord(ch)) % 100003
    return value
