"""Synthetic analogues of the TU graph-classification datasets.

Tab. IX evaluates graph classification on NCI1, PTC_MR, and PROTEINS —
small-molecule / protein graph collections where the class correlates with
structural motifs.  The generator here draws per-class graphs whose motif
mix (rings vs. trees vs. dense communities) and size distribution depend on
the label, with degree-histogram features — the same signal a SUM-readout
GCN exploits on the real data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph


@dataclass(frozen=True)
class TUDatasetSpec:
    """Recipe for one synthetic graph-classification collection."""

    name: str
    num_graphs: int
    num_classes: int
    min_nodes: int
    max_nodes: int
    feature_dim: int


_TU_SPECS = {
    # NCI1: ~4k molecules, 2 classes; we keep 2 classes, fewer graphs.
    "nci1": TUDatasetSpec("nci1", 200, 2, 10, 30, 8),
    # PTC_MR: ~350 molecules, 2 classes.
    "ptc_mr": TUDatasetSpec("ptc_mr", 160, 2, 8, 24, 8),
    # PROTEINS: ~1.1k graphs, 2 classes, larger graphs.
    "proteins": TUDatasetSpec("proteins", 180, 2, 12, 40, 8),
}


def tu_dataset_names() -> list:
    """Names accepted by :func:`load_tu_dataset`."""
    return sorted(_TU_SPECS)


def _ring_graph(n: int, rng: np.random.Generator, extra_chords: int) -> List[Tuple[int, int]]:
    """Cycle plus random chords — the 'ring-rich' motif class."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    for _ in range(extra_chords):
        u, v = rng.integers(n), rng.integers(n)
        if u != v:
            edges.append((min(u, v), max(u, v)))
    return edges


def _tree_graph(n: int, rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Random recursive tree — the 'branchy' motif class."""
    return [(int(rng.integers(i)), i) for i in range(1, n)]


def _community_graph(n: int, rng: np.random.Generator) -> List[Tuple[int, int]]:
    """Two dense cliquish halves plus a bridge — the 'globular' motif class."""
    half = n // 2
    edges = []
    for block in (range(half), range(half, n)):
        block = list(block)
        for i_idx, u in enumerate(block):
            for v in block[i_idx + 1:]:
                if rng.random() < 0.45:
                    edges.append((u, v))
    edges.append((0, half))
    return edges


def _degree_histogram_features(adjacency: sp.csr_matrix, dim: int) -> np.ndarray:
    """One-hot (capped) degree features — the standard choice when TU graphs
    lack node attributes."""
    degrees = np.asarray(adjacency.sum(axis=1)).ravel().astype(int)
    capped = np.minimum(degrees, dim - 1)
    features = np.zeros((adjacency.shape[0], dim))
    features[np.arange(adjacency.shape[0]), capped] = 1.0
    return features


def _sample_graph(label: int, spec: TUDatasetSpec, rng: np.random.Generator) -> Graph:
    n = int(rng.integers(spec.min_nodes, spec.max_nodes + 1))
    # Class 0 graphs are ring/tree dominated; class 1 graphs are denser and
    # more globular. Mixture proportions differ per class so the decision
    # boundary is learnable but not trivial.
    roll = rng.random()
    if label == 0:
        if roll < 0.6:
            edges = _ring_graph(n, rng, extra_chords=max(1, n // 8))
        elif roll < 0.9:
            edges = _tree_graph(n, rng)
        else:
            edges = _community_graph(n, rng)
    else:
        if roll < 0.6:
            edges = _community_graph(n, rng)
        elif roll < 0.9:
            edges = _ring_graph(n, rng, extra_chords=max(2, n // 2))
        else:
            edges = _tree_graph(n, rng)
    rows = np.array([e[0] for e in edges] + [e[1] for e in edges])
    cols = np.array([e[1] for e in edges] + [e[0] for e in edges])
    adjacency = sp.csr_matrix((np.ones(rows.size), (rows, cols)), shape=(n, n))
    features = _degree_histogram_features(adjacency, spec.feature_dim)
    labels = np.full(n, label)  # node labels unused; carry the graph label
    return Graph(adjacency, features, labels, name=f"{spec.name}-g")


def load_tu_dataset(name: str, seed: int = 0) -> Tuple[List[Graph], np.ndarray]:
    """Generate (graphs, graph_labels) for one TU analogue."""
    key = name.lower()
    if key not in _TU_SPECS:
        raise KeyError(f"unknown TU dataset {name!r}; available: {tu_dataset_names()}")
    spec = _TU_SPECS[key]
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, spec.num_classes, size=spec.num_graphs)
    graphs = [_sample_graph(int(lbl), spec, rng) for lbl in labels]
    return graphs, labels
