"""Disjoint unions of graphs.

Graph-classification pre-training treats a collection of graphs as one
block-diagonal graph (the standard mini-batching trick): node indices are
offset per graph and no cross-graph edges exist, so a GCN forward over the
union equals per-graph forwards.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def disjoint_union(graphs: Sequence[Graph], name: str = "union") -> Tuple[Graph, np.ndarray]:
    """Block-diagonal union.

    Returns ``(union_graph, offsets)`` where ``offsets[i]`` is the index of
    graph ``i``'s first node in the union (``offsets`` has length
    ``len(graphs) + 1`` so ``offsets[i]:offsets[i+1]`` slices graph ``i``).
    """
    if not graphs:
        raise ValueError("cannot union zero graphs")
    dims = {g.num_features for g in graphs}
    if len(dims) != 1:
        raise ValueError(f"feature dimensions disagree: {sorted(dims)}")

    adjacency = sp.block_diag([g.adjacency for g in graphs], format="csr")
    features = np.concatenate([g.features for g in graphs], axis=0)
    labels = None
    if all(g.labels is not None for g in graphs):
        labels = np.concatenate([g.labels for g in graphs])
    offsets = np.concatenate([[0], np.cumsum([g.num_nodes for g in graphs])])
    return Graph(adjacency, features, labels, name=name), offsets


def split_union_embeddings(embeddings: np.ndarray, offsets: np.ndarray) -> List[np.ndarray]:
    """Slice union-level node embeddings back into per-graph blocks."""
    if embeddings.shape[0] != offsets[-1]:
        raise ValueError(
            f"embeddings have {embeddings.shape[0]} rows but offsets expect {offsets[-1]}"
        )
    return [embeddings[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)]
