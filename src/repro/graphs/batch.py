"""Disjoint unions of graphs.

Graph-classification pre-training treats a collection of graphs as one
block-diagonal graph (the standard mini-batching trick): node indices are
offset per graph and no cross-graph edges exist, so a GCN forward over the
union equals per-graph forwards.  The serving microbatcher reuses the same
trick for mixed ego-subgraph batches, which is why the edge cases here —
empty member graphs, zero-row blocks, degenerate offsets — are load-bearing
and pinned by regression tests.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def disjoint_union(graphs: Sequence[Graph], name: str = "union") -> Tuple[Graph, np.ndarray]:
    """Block-diagonal union.

    Returns ``(union_graph, offsets)`` where ``offsets[i]`` is the index of
    graph ``i``'s first node in the union (``offsets`` has length
    ``len(graphs) + 1`` so ``offsets[i]:offsets[i+1]`` slices graph ``i``).

    Empty member graphs (zero nodes) are legal: they contribute an empty
    block and an empty slice, so round-tripping through
    :func:`split_union_embeddings` preserves positions.
    """
    if not graphs:
        raise ValueError("cannot union zero graphs")
    dims = {g.num_features for g in graphs}
    if len(dims) != 1:
        raise ValueError(f"feature dimensions disagree: {sorted(dims)}")

    # Zero-node blocks historically tripped block_diag shape inference in
    # some scipy releases; build the all-empty union explicitly and assert
    # the mixed case so drift fails loudly instead of mis-assigning rows.
    total = sum(g.num_nodes for g in graphs)
    if total == 0:
        adjacency = sp.csr_matrix((0, 0))
    else:
        adjacency = sp.block_diag([g.adjacency for g in graphs], format="csr")
        if adjacency.shape != (total, total):
            raise AssertionError(
                f"union adjacency is {adjacency.shape}, expected {(total, total)}"
            )
    features = np.concatenate([g.features for g in graphs], axis=0)
    labels = None
    if all(g.labels is not None for g in graphs):
        labels = np.concatenate([g.labels for g in graphs])
    offsets = np.concatenate(
        [[0], np.cumsum([g.num_nodes for g in graphs])]
    ).astype(np.int64)
    return Graph(adjacency, features, labels, name=name), offsets


def split_union_embeddings(embeddings: np.ndarray, offsets: np.ndarray) -> List[np.ndarray]:
    """Slice union-level node embeddings back into per-graph blocks.

    ``offsets`` must be the monotone array :func:`disjoint_union` returned
    (length ``num_graphs + 1``, starting at 0); a malformed one — negative
    gaps would silently mis-assign rows across graphs — is rejected.
    """
    offsets = np.asarray(offsets)
    if offsets.ndim != 1 or offsets.shape[0] < 2:
        raise ValueError(
            f"offsets must be 1-D with at least 2 entries, got shape {offsets.shape}"
        )
    if offsets[0] != 0 or np.any(np.diff(offsets) < 0):
        raise ValueError(
            "offsets must start at 0 and be non-decreasing "
            f"(got {offsets.tolist()})"
        )
    if embeddings.shape[0] != offsets[-1]:
        raise ValueError(
            f"embeddings have {embeddings.shape[0]} rows but offsets expect {offsets[-1]}"
        )
    return [embeddings[offsets[i]:offsets[i + 1]] for i in range(len(offsets) - 1)]
