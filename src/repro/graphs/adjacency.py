"""Adjacency normalization and propagated-feature computation.

Implements the GCN normalization ``A_n = D̃^{-1/2} (A + I) D̃^{-1/2}``
(Kipf & Welling) plus the random-walk variant, and the paper's central
pre-processing step ``R = A_n^L X`` (Theorem 1 / Alg. 2 line 1) computed by
``L`` successive sparse-dense products — never materializing ``A_n^L``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .graph import Graph


def add_self_loops(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Return ``A + I`` as CSR (idempotent on the diagonal).

    Stays in CSR throughout: adds ``1 − diag(A)`` along the diagonal so
    existing self-loops are not double-counted, avoiding the LIL round-trip
    (which is a Python-level loop over rows on large graphs).
    """
    out = sp.csr_matrix(adjacency)
    fill = 1.0 - out.diagonal()
    if np.any(fill):
        out = (out + sp.diags(fill, format="csr")).tocsr()
        out.eliminate_zeros()
    return out


def normalized_adjacency(
    adjacency: sp.spmatrix,
    method: str = "symmetric",
    self_loops: bool = True,
) -> sp.csr_matrix:
    """Normalize an adjacency matrix.

    Parameters
    ----------
    adjacency:
        Sparse ``(n, n)`` matrix.
    method:
        ``"symmetric"`` for ``D^{-1/2} A D^{-1/2}`` (GCN) or
        ``"row"`` for ``D^{-1} A`` (random walk).
    self_loops:
        Add ``I`` before normalizing (the GCN renormalization trick).
        Isolated nodes then normalize to a self-loop weight of 1 instead of
        producing divisions by zero.
    """
    adj = add_self_loops(adjacency) if self_loops else sp.csr_matrix(adjacency)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    if method == "symmetric":
        with np.errstate(divide="ignore"):
            inv_sqrt = np.where(degrees > 0, degrees ** -0.5, 0.0)
        d_mat = sp.diags(inv_sqrt)
        return (d_mat @ adj @ d_mat).tocsr()
    if method == "row":
        with np.errstate(divide="ignore"):
            inv = np.where(degrees > 0, 1.0 / degrees, 0.0)
        return (sp.diags(inv) @ adj).tocsr()
    raise ValueError(f"unknown normalization method {method!r}")


def propagated_features(graph: Graph, hops: int, method: str = "symmetric") -> np.ndarray:
    """Compute ``R = A_n^L X`` — the raw aggregated information of Theorem 1.

    Done with ``hops`` sparse-dense multiplications, i.e.
    ``O(D̄^L |V| d_x)`` as the paper's complexity analysis states.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    a_n = normalized_adjacency(graph.adjacency, method=method)
    r = graph.features
    for _ in range(hops):
        r = a_n @ r
    return np.asarray(r)


def adjacency_from_edge_mask(graph: Graph, keep_mask: np.ndarray) -> sp.csr_matrix:
    """Adjacency containing only the undirected edges where ``keep_mask`` is True.

    ``keep_mask`` indexes :meth:`Graph.edge_array` order.
    """
    edges = graph.edge_array()
    keep_mask = np.asarray(keep_mask, dtype=bool)
    if keep_mask.shape[0] != edges.shape[0]:
        raise ValueError("mask length must equal number of undirected edges")
    kept = edges[keep_mask]
    n = graph.num_nodes
    if kept.size == 0:
        return sp.csr_matrix((n, n))
    rows = np.concatenate([kept[:, 0], kept[:, 1]])
    cols = np.concatenate([kept[:, 1], kept[:, 0]])
    return sp.csr_matrix((np.ones(rows.shape[0]), (rows, cols)), shape=(n, n))


def adjacency_from_edges(num_nodes: int, edges: np.ndarray) -> sp.csr_matrix:
    """Symmetric binary adjacency from an ``(m, 2)`` undirected edge array."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return sp.csr_matrix((num_nodes, num_nodes))
    rows = np.concatenate([edges[:, 0], edges[:, 1]])
    cols = np.concatenate([edges[:, 1], edges[:, 0]])
    adj = sp.csr_matrix((np.ones(rows.shape[0]), (rows, cols)), shape=(num_nodes, num_nodes))
    adj.data = np.ones_like(adj.data)  # collapse duplicates
    return adj
