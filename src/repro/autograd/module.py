"""Lightweight module system: parameters, module trees, state dicts.

Mirrors the shape of ``torch.nn.Module`` closely enough that the GCN /
MLP / baseline code reads like the original paper implementations, while
staying a few hundred lines of plain Python.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a :class:`Module`."""

    def __init__(self, data, name: str = "") -> None:
        # Tensor.__init__ coerces to the configured default dtype, so
        # parameters follow set_default_dtype like every other tensor.
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for models: tracks parameters and sub-modules by attribute.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` walks the resulting tree.  A ``training``
    flag gates dropout and other train-only behaviour.
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its descendants (stable order)."""
        params: List[Parameter] = list(self._parameters.values())
        for module in self._modules.values():
            params.extend(module.parameters())
        return params

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield (dotted-path, parameter) pairs over the module tree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def zero_grad(self) -> None:
        """Clear accumulated gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode on this module and all descendants."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to inference mode (disables dropout etc.)."""
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters from a :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {param.data.shape} vs {state[name].shape}")
            param.data = state[name].copy()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self.parameters())

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        """Compute the module's output; subclasses override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Chain modules; each one must be callable with a single tensor."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for i, module in enumerate(modules):
            setattr(self, f"layer_{i}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x
