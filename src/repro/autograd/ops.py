"""Differentiable operations for the :class:`~repro.autograd.tensor.Tensor` type.

Every function here takes tensors (or array-likes, which are promoted to
constant tensors), computes the forward value eagerly with numpy, and — when
any input requires gradients — records a backward closure that scatters the
output gradient back into the inputs.

The operation set is exactly what the reproduced models need: elementwise
arithmetic, dense and sparse matmul, activations, softmax/log-softmax,
reductions, row indexing/gathering, concatenation, row normalization, and
dropout.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, ensure_tensor

ArrayOrTensor = Union[Tensor, np.ndarray, float, int]


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward_fn,
) -> Tensor:
    requires = any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad)
        if b.requires_grad:
            b._accumulate_grad(grad)

    return _make(out_data, (a, b), backward)


def sub(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad)
        if b.requires_grad:
            b._accumulate_grad(-grad)

    return _make(out_data, (a, b), backward)


def mul(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * b.data)
        if b.requires_grad:
            b._accumulate_grad(grad * a.data)

    return _make(out_data, (a, b), backward)


def div(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad / b.data)
        if b.requires_grad:
            b._accumulate_grad(-grad * a.data / (b.data ** 2))

    return _make(out_data, (a, b), backward)


def neg(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(-grad)

    return _make(-a.data, (a,), backward)


def power(a: ArrayOrTensor, exponent: float) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * exponent * a.data ** (exponent - 1))

    return _make(out_data, (a,), backward)


def exp(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * out_data)

    return _make(out_data, (a,), backward)


def log(a: ArrayOrTensor, eps: float = 0.0) -> Tensor:
    """Natural log; pass ``eps`` > 0 to clamp away from zero for stability."""
    a = ensure_tensor(a)
    safe = a.data + eps if eps else a.data
    out_data = np.log(safe)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad / safe)

    return _make(out_data, (a,), backward)


def sqrt(a: ArrayOrTensor) -> Tensor:
    return power(a, 0.5)


def abs(a: ArrayOrTensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = ensure_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * np.sign(a.data))

    return _make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * mask)

    return _make(out_data, (a,), backward)


def leaky_relu(a: ArrayOrTensor, negative_slope: float = 0.01) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * np.where(mask, 1.0, negative_slope))

    return _make(out_data, (a,), backward)


def sigmoid(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    # Numerically stable logistic.
    out_data = np.where(
        a.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(a.data, -500, 500))),
        np.exp(np.clip(a.data, -500, 500)) / (1.0 + np.exp(np.clip(a.data, -500, 500))),
    )

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * out_data * (1.0 - out_data))

    return _make(out_data, (a,), backward)


def tanh(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * (1.0 - out_data ** 2))

    return _make(out_data, (a,), backward)


def elu(a: ArrayOrTensor, alpha: float = 1.0) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    expm1 = alpha * np.expm1(np.minimum(a.data, 0.0))
    out_data = np.where(mask, a.data, expm1)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * np.where(mask, 1.0, expm1 + alpha))

    return _make(out_data, (a,), backward)


def softmax(a: ArrayOrTensor, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a._accumulate_grad(out_data * (grad - dot))

    return _make(out_data, (a,), backward)


def log_softmax(a: ArrayOrTensor, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))

    return _make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad @ b.data.T)
        if b.requires_grad:
            b._accumulate_grad(a.data.T @ grad)

    return _make(out_data, (a, b), backward)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse-matrix x dense-tensor product; the sparse side is a constant.

    Used for GCN propagation ``A_n @ H`` where ``A_n`` is the normalized
    adjacency.  The gradient w.r.t. ``dense`` is ``A_n.T @ grad``.
    """
    dense = ensure_tensor(dense)
    csr = matrix.tocsr()
    out_data = csr @ dense.data
    csr_t = csr.T.tocsr()

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate_grad(csr_t @ grad)

    return _make(np.asarray(out_data), (dense,), backward)


def transpose(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad.T)

    return _make(a.data.T, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum(a: ArrayOrTensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(out_data, (a,), backward)


def mean(a: ArrayOrTensor, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    denom = a.data.size if axis is None else a.data.shape[axis]

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad / denom
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Shape / gather operations
# ----------------------------------------------------------------------
def reshape(a: ArrayOrTensor, shape: Tuple[int, ...]) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad.reshape(a.data.shape))

    return _make(out_data, (a,), backward)


def index(a: ArrayOrTensor, idx) -> Tensor:
    """Basic / fancy indexing with gradient scatter-add back into ``a``."""
    a = ensure_tensor(a)
    out_data = a.data[idx]

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, idx, grad)
            a._accumulate_grad(full)

    return _make(out_data, (a,), backward)


def gather_rows(a: ArrayOrTensor, row_indices: np.ndarray) -> Tensor:
    """Select rows of a 2-D tensor; duplicate indices accumulate gradients."""
    return index(a, np.asarray(row_indices))


def concat(tensors: Sequence[ArrayOrTensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate_grad(grad[tuple(slicer)])

    return _make(out_data, tuple(tensors), backward)


def stack_rows(tensors: Sequence[ArrayOrTensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor along a new leading axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=0)

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate_grad(grad[i])

    return _make(out_data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# Normalization / regularization
# ----------------------------------------------------------------------
def l2_normalize_rows(a: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Normalize each row of a 2-D tensor to unit euclidean norm."""
    a = ensure_tensor(a)
    norms = np.linalg.norm(a.data, axis=1, keepdims=True)
    norms = np.maximum(norms, eps)
    out_data = a.data / norms

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=1, keepdims=True)
            a._accumulate_grad((grad - out_data * dot) / norms)

    return _make(out_data, (a,), backward)


def dropout(a: ArrayOrTensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    a = ensure_tensor(a)
    if not training or rate <= 0.0:
        return a
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1); got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(a.data.shape) < keep) / keep
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * mask)

    return _make(out_data, (a,), backward)


def row_norms(a: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Euclidean norm of each row, returned as a 1-D tensor."""
    a = ensure_tensor(a)
    norms = np.sqrt((a.data ** 2).sum(axis=1) + eps)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(a.data * (grad / norms)[:, None])

    return _make(norms, (a,), backward)
