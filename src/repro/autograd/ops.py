"""Differentiable operations for the :class:`~repro.autograd.tensor.Tensor` type.

Every function here takes tensors (or array-likes, which are promoted to
constant tensors), computes the forward value eagerly with numpy, and — when
any input requires gradients — records a backward closure that scatters the
output gradient back into the inputs.

The operation set is exactly what the reproduced models need: elementwise
arithmetic, dense and sparse matmul, activations, softmax/log-softmax,
reductions, row indexing/gathering, concatenation, row normalization, and
dropout — plus the fused hot-composition kernels (``spmm_bias_act``,
``linear_act``, ``normalize_cosine_sim``/``normalize_cosine_rowwise``)
that collapse the graph-convolution, dense-layer, and contrastive-
similarity chains into one op each.  Every fused kernel computes the same
floats in the same order as its unfused composition, so adopting one is
bit-identical; the win is eliminated intermediate tensors, copies, and
graph bookkeeping (see docs/PERFORMANCE.md).

Backward closures donate freshly computed gradient arrays to
``Tensor._accumulate_grad(..., donate=True)`` so first-touch accumulation
takes ownership instead of copying, and — with the
:mod:`repro.autograd.arena` enabled — intermediate gradient buffers are
pooled across steps.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from . import arena as _arena
from .tensor import Tensor, ensure_tensor

ArrayOrTensor = Union[Tensor, np.ndarray, float, int]

#: Attribute under which a sparse matrix caches its CSR transpose (the
#: structure ``spmm``'s backward multiplies by).  Stored on the matrix
#: object itself so the cache's lifetime is exactly the matrix's — no
#: id()-keyed registry that could alias a freed matrix's reused address.
_TRANSPOSE_ATTR = "_repro_csr_transpose"


def _csr_transpose(csr: sp.csr_matrix) -> sp.csr_matrix:
    """The cached CSR transpose of ``csr`` (derived once per matrix).

    Graph adjacencies are constants that feed thousands of backward calls
    per run; re-deriving ``csr.T.tocsr()`` (a full structure conversion)
    on every one of them dominated ``spmm``'s backward cost.  Callers must
    treat cached matrices as immutable — every adjacency in this codebase
    is built once and never mutated in place.
    """
    cached = getattr(csr, _TRANSPOSE_ATTR, None)
    if cached is None:
        cached = csr.T.tocsr()
        try:
            setattr(csr, _TRANSPOSE_ATTR, cached)
        except AttributeError:  # sparse classes with __slots__: skip caching
            pass
    return cached


def _make(
    data: np.ndarray,
    parents: Sequence[Tensor],
    backward_fn,
) -> Tensor:
    requires = any(p.requires_grad for p in parents)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)


def _mul_into(parent: Tensor, x, y) -> np.ndarray:
    """``x * y`` destined for ``parent``'s gradient.

    With the arena active the product is written straight into a pooled
    buffer (``out=``), so steady-state backward passes recycle the same
    arrays instead of allocating fresh ones.  Only intermediate parents
    whose gradient needs no un-broadcast reduction qualify — leaf
    (parameter) gradients outlive the pass and must never hold pooled
    memory.  Values are bit-identical either way (same ufunc).
    """
    pool = _arena.current()
    if pool is not None and parent._backward_fn is not None:
        shape = np.broadcast_shapes(np.shape(x), np.shape(y))
        if shape == parent.data.shape:
            return np.multiply(x, y, out=pool.acquire(shape, parent.data.dtype))
    return x * y


def _matmul_into(parent: Tensor, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """``x @ y`` destined for ``parent``'s gradient; pooled like :func:`_mul_into`."""
    pool = _arena.current()
    if (
        pool is not None
        and parent._backward_fn is not None
        and x.ndim == 2
        and y.ndim == 2
        and (x.shape[0], y.shape[1]) == parent.data.shape
        and x.dtype == y.dtype == parent.data.dtype
    ):
        out = pool.acquire(parent.data.shape, parent.data.dtype)
        return np.matmul(x, y, out=out)
    return x @ y


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------
def add(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data + b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad)
        if b.requires_grad:
            b._accumulate_grad(grad)

    return _make(out_data, (a, b), backward)


def sub(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data - b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad)
        if b.requires_grad:
            b._accumulate_grad(-grad, donate=True)

    return _make(out_data, (a, b), backward)


def mul(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data * b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_mul_into(a, grad, b.data), donate=True)
        if b.requires_grad:
            b._accumulate_grad(_mul_into(b, grad, a.data), donate=True)

    return _make(out_data, (a, b), backward)


def div(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data / b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad / b.data, donate=True)
        if b.requires_grad:
            b._accumulate_grad(-grad * a.data / (b.data ** 2), donate=True)

    return _make(out_data, (a, b), backward)


def neg(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(-grad, donate=True)

    return _make(-a.data, (a,), backward)


def power(a: ArrayOrTensor, exponent: float) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data ** exponent

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * exponent * a.data ** (exponent - 1), donate=True)

    return _make(out_data, (a,), backward)


def exp(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_mul_into(a, grad, out_data), donate=True)

    return _make(out_data, (a,), backward)


def log(a: ArrayOrTensor, eps: float = 0.0) -> Tensor:
    """Natural log; pass ``eps`` > 0 to clamp away from zero for stability."""
    a = ensure_tensor(a)
    safe = a.data + eps if eps else a.data
    out_data = np.log(safe)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad / safe, donate=True)

    return _make(out_data, (a,), backward)


def sqrt(a: ArrayOrTensor) -> Tensor:
    return power(a, 0.5)


def abs(a: ArrayOrTensor) -> Tensor:  # noqa: A001 - mirrors numpy naming
    a = ensure_tensor(a)
    out_data = np.abs(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad * np.sign(a.data), donate=True)

    return _make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Activations
# ----------------------------------------------------------------------
def relu(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_mul_into(a, grad, mask), donate=True)

    return _make(out_data, (a,), backward)


def leaky_relu(a: ArrayOrTensor, negative_slope: float = 0.01) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    out_data = np.where(mask, a.data, negative_slope * a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(
                _mul_into(a, grad, np.where(mask, 1.0, negative_slope)), donate=True
            )

    return _make(out_data, (a,), backward)


def sigmoid(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    # Numerically stable logistic.
    out_data = np.where(
        a.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(a.data, -500, 500))),
        np.exp(np.clip(a.data, -500, 500)) / (1.0 + np.exp(np.clip(a.data, -500, 500))),
    )

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(
                _mul_into(a, grad * out_data, 1.0 - out_data), donate=True
            )

    return _make(out_data, (a,), backward)


def tanh(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_mul_into(a, grad, 1.0 - out_data ** 2), donate=True)

    return _make(out_data, (a,), backward)


def elu(a: ArrayOrTensor, alpha: float = 1.0) -> Tensor:
    a = ensure_tensor(a)
    mask = a.data > 0
    expm1 = alpha * np.expm1(np.minimum(a.data, 0.0))
    out_data = np.where(mask, a.data, expm1)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(
                _mul_into(a, grad, np.where(mask, 1.0, expm1 + alpha)), donate=True
            )

    return _make(out_data, (a,), backward)


def softmax(a: ArrayOrTensor, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    out_data = exps / exps.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a._accumulate_grad(_mul_into(a, out_data, grad - dot), donate=True)

    return _make(out_data, (a,), backward)


def log_softmax(a: ArrayOrTensor, axis: int = -1) -> Tensor:
    a = ensure_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True), donate=True)

    return _make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------
def matmul(a: ArrayOrTensor, b: ArrayOrTensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out_data = a.data @ b.data

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_matmul_into(a, grad, b.data.T), donate=True)
        if b.requires_grad:
            b._accumulate_grad(_matmul_into(b, a.data.T, grad), donate=True)

    return _make(out_data, (a, b), backward)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Sparse-matrix x dense-tensor product; the sparse side is a constant.

    Used for GCN propagation ``A_n @ H`` where ``A_n`` is the normalized
    adjacency.  The gradient w.r.t. ``dense`` is ``A_n.T @ grad``.
    """
    dense = ensure_tensor(dense)
    csr = matrix.tocsr()
    out_data = csr @ dense.data

    def backward(grad: np.ndarray) -> None:
        if dense.requires_grad:
            dense._accumulate_grad(_csr_transpose(csr) @ grad, donate=True)

    return _make(np.asarray(out_data), (dense,), backward)


def transpose(a: ArrayOrTensor) -> Tensor:
    a = ensure_tensor(a)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad.T)

    return _make(a.data.T, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def sum(a: ArrayOrTensor, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    a = ensure_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(out_data, (a,), backward)


def mean(a: ArrayOrTensor, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    denom = a.data.size if axis is None else a.data.shape[axis]

    def backward(grad: np.ndarray) -> None:
        if not a.requires_grad:
            return
        g = grad / denom
        if axis is not None and not keepdims:
            g = np.expand_dims(g, axis=axis)
        a._accumulate_grad(np.broadcast_to(g, a.data.shape))

    return _make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Shape / gather operations
# ----------------------------------------------------------------------
def reshape(a: ArrayOrTensor, shape: Tuple[int, ...]) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(grad.reshape(a.data.shape))

    return _make(out_data, (a,), backward)


def index(a: ArrayOrTensor, idx) -> Tensor:
    """Basic / fancy indexing with gradient scatter-add back into ``a``."""
    a = ensure_tensor(a)
    out_data = a.data[idx]

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            pool = _arena.current()
            if pool is not None:
                full = pool.acquire(a.data.shape, a.data.dtype, zero=True)
            else:
                full = np.zeros_like(a.data)
            np.add.at(full, idx, grad)
            a._accumulate_grad(full, donate=True)

    return _make(out_data, (a,), backward)


def gather_rows(a: ArrayOrTensor, row_indices: np.ndarray) -> Tensor:
    """Select rows of a 2-D tensor; duplicate indices accumulate gradients."""
    return index(a, np.asarray(row_indices))


def concat(tensors: Sequence[ArrayOrTensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                tensor._accumulate_grad(grad[tuple(slicer)])

    return _make(out_data, tuple(tensors), backward)


def stack_rows(tensors: Sequence[ArrayOrTensor]) -> Tensor:
    """Stack 1-D tensors into a 2-D tensor along a new leading axis."""
    tensors = [ensure_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=0)

    def backward(grad: np.ndarray) -> None:
        for i, tensor in enumerate(tensors):
            if tensor.requires_grad:
                tensor._accumulate_grad(grad[i])

    return _make(out_data, tuple(tensors), backward)


# ----------------------------------------------------------------------
# Normalization / regularization
# ----------------------------------------------------------------------
def l2_normalize_rows(a: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Normalize each row of a 2-D tensor to unit euclidean norm."""
    a = ensure_tensor(a)
    norms = np.linalg.norm(a.data, axis=1, keepdims=True)
    norms = np.maximum(norms, eps)
    out_data = a.data / norms

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=1, keepdims=True)
            a._accumulate_grad((grad - out_data * dot) / norms, donate=True)

    return _make(out_data, (a,), backward)


def dropout(a: ArrayOrTensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or rate == 0."""
    a = ensure_tensor(a)
    if not training or rate <= 0.0:
        return a
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1); got {rate}")
    keep = 1.0 - rate
    mask = (rng.random(a.data.shape) < keep) / keep
    out_data = a.data * mask

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(_mul_into(a, grad, mask), donate=True)

    return _make(out_data, (a,), backward)


def row_norms(a: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Euclidean norm of each row, returned as a 1-D tensor."""
    a = ensure_tensor(a)
    norms = np.sqrt((a.data ** 2).sum(axis=1) + eps)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate_grad(a.data * (grad / norms)[:, None], donate=True)

    return _make(norms, (a,), backward)


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
# Each fused op replaces a hot multi-op chain with a single graph node.
# The arithmetic — expression by expression, in the same order — matches
# the unfused composition exactly, so results are bit-identical; the
# saving is the intermediate Tensors, their gradient buffers, and the
# per-op closure dispatch the chain used to pay for.

_FUSED_ACTIVATIONS = (None, "relu", "leaky_relu", "elu", "tanh", "sigmoid")


def _activation_forward(pre: np.ndarray, activation, negative_slope: float, alpha: float):
    """Apply ``activation`` to ``pre``; returns ``(out, ctx)``.

    **Takes ownership of ``pre``**: the caller passes a freshly allocated
    product it will never read again, so the activation is applied in
    place (same ufunc, ``out=pre``) instead of allocating a new array —
    this is where the fused kernels beat the unfused chains.  ``ctx``
    carries exactly what :func:`_activation_backward` needs.  The
    expressions match the standalone activation ops above ufunc-for-ufunc
    so a fused chain reproduces their floats bit-for-bit.
    """
    if activation is None:
        return pre, None
    if activation == "relu":
        mask = pre > 0
        np.multiply(pre, mask, out=pre)
        return pre, ("relu", mask)
    if activation == "leaky_relu":
        mask = pre > 0
        out = negative_slope * pre
        np.copyto(out, pre, where=mask)
        return out, ("leaky_relu", mask)
    if activation == "elu":
        mask = pre > 0
        expm1 = np.minimum(pre, 0.0)
        np.expm1(expm1, out=expm1)
        np.multiply(expm1, alpha, out=expm1)
        return np.where(mask, pre, expm1), ("elu", mask, expm1)
    if activation == "tanh":
        out = np.tanh(pre, out=pre)
        return out, ("tanh", out)
    if activation == "sigmoid":
        out = np.where(
            pre >= 0,
            1.0 / (1.0 + np.exp(-np.clip(pre, -500, 500))),
            np.exp(np.clip(pre, -500, 500)) / (1.0 + np.exp(np.clip(pre, -500, 500))),
        )
        return out, ("sigmoid", out)
    raise ValueError(
        f"unsupported fused activation {activation!r}; pick one of {_FUSED_ACTIVATIONS}"
    )


def _activation_backward(grad: np.ndarray, ctx, negative_slope: float, alpha: float) -> np.ndarray:
    """Gradient through the activation recorded by :func:`_activation_forward`."""
    if ctx is None:
        return grad
    kind = ctx[0]
    if kind == "relu":
        return grad * ctx[1]
    if kind == "leaky_relu":
        return grad * np.where(ctx[1], 1.0, negative_slope)
    if kind == "elu":
        return grad * np.where(ctx[1], 1.0, ctx[2] + alpha)
    if kind == "tanh":
        return grad * (1.0 - ctx[1] ** 2)
    return grad * ctx[1] * (1.0 - ctx[1])  # sigmoid


def spmm_bias_act(
    matrix: sp.spmatrix,
    dense: ArrayOrTensor,
    bias: Optional[ArrayOrTensor] = None,
    activation: Optional[str] = None,
    negative_slope: float = 0.2,
    alpha: float = 1.0,
) -> Tensor:
    """Fused ``activation(spmm(matrix, dense) + bias)`` — the GCN propagate kernel.

    One graph node instead of three (``spmm``/``add``/activation): a full
    GCN layer's propagation allocates one output array and one gradient
    buffer per parent rather than materializing two intermediate tensors
    and their gradients per layer per step.  Bit-identical to the unfused
    chain.  ``bias`` broadcasts like :func:`add`; ``activation`` is one of
    ``None``/``relu``/``leaky_relu``/``elu``/``tanh``/``sigmoid``.
    """
    dense = ensure_tensor(dense)
    bias_t = ensure_tensor(bias) if bias is not None else None
    csr = matrix.tocsr()
    pre = np.asarray(csr @ dense.data)
    if bias_t is not None:
        # ``pre`` is a fresh product; adding in place (same ufunc as
        # ``pre + bias``) skips the intermediate the unfused chain allocates.
        np.add(pre, bias_t.data, out=pre)
    out_data, ctx = _activation_forward(pre, activation, negative_slope, alpha)

    parents = (dense,) if bias_t is None else (dense, bias_t)

    def backward(grad: np.ndarray) -> None:
        g = _activation_backward(grad, ctx, negative_slope, alpha)
        if bias_t is not None and bias_t.requires_grad:
            bias_t._accumulate_grad(g)
        if dense.requires_grad:
            dense._accumulate_grad(_csr_transpose(csr) @ g, donate=True)

    return _make(out_data, parents, backward)


def linear_act(
    x: ArrayOrTensor,
    weight: ArrayOrTensor,
    bias: Optional[ArrayOrTensor] = None,
    activation: Optional[str] = None,
    negative_slope: float = 0.2,
    alpha: float = 1.0,
) -> Tensor:
    """Fused ``activation(x @ weight + bias)`` — the dense-layer kernel.

    Collapses the ``matmul``/``add``/activation chain every MLP and
    projection-head layer issues into a single node.  Bit-identical to
    the unfused composition.
    """
    x = ensure_tensor(x)
    weight = ensure_tensor(weight)
    bias_t = ensure_tensor(bias) if bias is not None else None
    pre = x.data @ weight.data
    if bias_t is not None:
        np.add(pre, bias_t.data, out=pre)
    out_data, ctx = _activation_forward(pre, activation, negative_slope, alpha)

    parents = (x, weight) if bias_t is None else (x, weight, bias_t)

    def backward(grad: np.ndarray) -> None:
        g = _activation_backward(grad, ctx, negative_slope, alpha)
        if bias_t is not None and bias_t.requires_grad:
            bias_t._accumulate_grad(g)
        if x.requires_grad:
            x._accumulate_grad(_matmul_into(x, g, weight.data.T), donate=True)
        if weight.requires_grad:
            weight._accumulate_grad(_matmul_into(weight, x.data.T, g), donate=True)

    return _make(out_data, parents, backward)


def normalize_cosine_sim(a: ArrayOrTensor, b: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Fused row-normalize + pairwise cosine similarity ``a_n @ b_n.T``.

    Replaces ``matmul(l2_normalize_rows(a), transpose(l2_normalize_rows(b)))``
    — the kernel under every contrastive similarity matrix — with one node,
    skipping two normalized intermediates and their ``(n, d)`` gradient
    buffers.  Bit-identical to the unfused chain.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    a_norms = np.maximum(np.linalg.norm(a.data, axis=1, keepdims=True), eps)
    a_n = a.data / a_norms
    b_norms = np.maximum(np.linalg.norm(b.data, axis=1, keepdims=True), eps)
    b_n = b.data / b_norms
    out_data = a_n @ b_n.T

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            g_an = grad @ b_n
            dot = (g_an * a_n).sum(axis=1, keepdims=True)
            a._accumulate_grad((g_an - a_n * dot) / a_norms, donate=True)
        if b.requires_grad:
            # The C-contiguous copy mirrors the unfused transpose
            # backward's accumulation, keeping the row reduction below
            # bit-identical to the chained version.
            g_bn = (a_n.T @ grad).T.copy()
            dot = (g_bn * b_n).sum(axis=1, keepdims=True)
            b._accumulate_grad((g_bn - b_n * dot) / b_norms, donate=True)

    return _make(out_data, (a, b), backward)


def normalize_cosine_sim_gather(
    a: ArrayOrTensor,
    b: ArrayOrTensor,
    cols: np.ndarray,
    eps: float = 1e-12,
) -> Tensor:
    """Fused row-normalize + rows-vs-sampled-columns cosine similarity.

    ``out[i, j] = cos(a[i], b[cols[i, j]])`` for an ``(m, k)`` integer
    index matrix ``cols`` — the O(n·k) kernel under every *subsampled*
    contrastive objective.  Equivalent to gathering ``k`` rows of the full
    ``normalize_cosine_sim(a, b)`` matrix per anchor without ever
    materializing the O(n²) similarities: forward work and every gradient
    buffer are O(m·k·d).  Duplicate column indices accumulate gradients,
    matching :func:`gather_rows` semantics.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    cols = np.asarray(cols)
    if cols.ndim != 2 or cols.shape[0] != a.data.shape[0]:
        raise ValueError("cols must be (num_rows_of_a, k)")
    a_norms = np.maximum(np.linalg.norm(a.data, axis=1, keepdims=True), eps)
    a_n = a.data / a_norms
    b_norms = np.maximum(np.linalg.norm(b.data, axis=1, keepdims=True), eps)
    b_n = b.data / b_norms
    gathered = b_n[cols]                             # (m, k, d)
    out_data = np.einsum("md,mkd->mk", a_n, gathered)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            g_an = np.einsum("mk,mkd->md", grad, gathered)
            dot = (g_an * a_n).sum(axis=1, keepdims=True)
            a._accumulate_grad((g_an - a_n * dot) / a_norms, donate=True)
        if b.requires_grad:
            pool = _arena.current()
            if pool is not None and b._backward_fn is not None:
                g_bn = pool.acquire(b.data.shape, b.data.dtype, zero=True)
            else:
                g_bn = np.zeros_like(b.data)
            contrib = grad[:, :, None] * a_n[:, None, :]          # (m, k, d)
            np.add.at(g_bn, cols.reshape(-1), contrib.reshape(-1, a_n.shape[1]))
            dot = (g_bn * b_n).sum(axis=1, keepdims=True)
            # Finish in place so the (possibly pooled) scatter buffer is the
            # array donated to the accumulator — same ufuncs, same floats.
            np.subtract(g_bn, b_n * dot, out=g_bn)
            np.divide(g_bn, b_norms, out=g_bn)
            b._accumulate_grad(g_bn, donate=True)

    return _make(out_data, (a, b), backward)


def normalize_cosine_rowwise(a: ArrayOrTensor, b: ArrayOrTensor, eps: float = 1e-12) -> Tensor:
    """Fused row-normalize + per-row cosine similarity (1-D output).

    Replaces ``sum(mul(l2_normalize_rows(a), l2_normalize_rows(b)), axis=1)``
    — the BGRL bootstrap-loss kernel — with one node.  Bit-identical to
    the unfused chain.
    """
    a, b = ensure_tensor(a), ensure_tensor(b)
    a_norms = np.maximum(np.linalg.norm(a.data, axis=1, keepdims=True), eps)
    a_n = a.data / a_norms
    b_norms = np.maximum(np.linalg.norm(b.data, axis=1, keepdims=True), eps)
    b_n = b.data / b_norms
    out_data = (a_n * b_n).sum(axis=1)

    def backward(grad: np.ndarray) -> None:
        g = np.expand_dims(grad, axis=1)
        if a.requires_grad:
            g_an = g * b_n
            dot = (g_an * a_n).sum(axis=1, keepdims=True)
            a._accumulate_grad((g_an - a_n * dot) / a_norms, donate=True)
        if b.requires_grad:
            g_bn = g * a_n
            dot = (g_bn * b_n).sum(axis=1, keepdims=True)
            b._accumulate_grad((g_bn - b_n * dot) / b_norms, donate=True)

    return _make(out_data, (a, b), backward)
