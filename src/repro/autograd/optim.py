"""Optimizers: SGD (with momentum), Adam, AdamW, and LR schedulers.

The paper (and every baseline it compares) trains with Adam; SGD is kept for
the linear-evaluation decoders and tests.  Weight decay is implemented both
as L2-in-the-gradient (classic, ``SGD``/``Adam``) and decoupled (``AdamW``).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .module import Parameter


def global_grad_norm(parameters: Iterable[Parameter]) -> Optional[float]:
    """Global l2 norm over every parameter gradient, or None when no
    parameter has a gradient.

    The norm is NaN/Inf whenever any gradient entry is non-finite, which
    is exactly what health guards check — one scalar summarizes the
    numerical state of the whole backward pass.
    """
    total = 0.0
    seen = False
    for param in parameters:
        if param.grad is not None:
            total += float(np.sum(np.square(param.grad)))
            seen = True
    return float(np.sqrt(total)) if seen else None


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive; got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def grad_norm(self) -> Optional[float]:
        """Global l2 norm of the current gradients (see
        :func:`global_grad_norm`)."""
        return global_grad_norm(self.parameters)

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing: slot buffers (momentum/Adam moments) keyed generically
    # so the training engine can snapshot any optimizer uniformly — lists of
    # arrays map one-to-one onto the parameter list, scalars ride along.
    def state_dict(self) -> dict:
        """Internal state to checkpoint (beyond the parameters themselves)."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output; base optimizer has no state."""
        if state:
            raise ValueError(f"unexpected optimizer state keys: {sorted(state)}")

    def _check_slots(self, arrays, label: str) -> List[np.ndarray]:
        """Validate per-parameter slot arrays against the parameter list.

        Slots are cast to each parameter's own dtype so restoring a
        checkpoint into a float32 run keeps the whole update float32.
        """
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"optimizer state mismatch: {len(arrays)} {label} buffers for "
                f"{len(self.parameters)} parameters"
            )
        arrays = [
            np.asarray(a, dtype=p.data.dtype) for a, p in zip(arrays, self.parameters)
        ]
        for array, param in zip(arrays, self.parameters):
            if array.shape != param.data.shape:
                raise ValueError(
                    f"optimizer {label} shape {array.shape} does not match "
                    f"parameter shape {param.data.shape}"
                )
        return arrays


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, vel in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            param.data -= self.lr * grad

    def state_dict(self) -> dict:
        """Velocity buffers (one per parameter)."""
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        """Restore velocity buffers saved by :meth:`state_dict`."""
        self._velocity = self._check_slots(state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba) with optional classic L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        """First/second moment buffers plus the shared step counter."""
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore moments and step counter saved by :meth:`state_dict`."""
        self._m = self._check_slots(state["m"], "m")
        self._v = self._check_slots(state["v"], "v")
        self._t = int(state["t"])


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            if decay:
                for param in self.parameters:
                    if param.grad is not None:
                        param.data -= self.lr * decay * param.data
            super().step()
        finally:
            self.weight_decay = decay


class ExponentialLR:
    """Multiply the optimizer's learning rate by ``gamma`` each epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float) -> None:
        self.optimizer = optimizer
        self.gamma = gamma

    def step(self) -> None:
        self.optimizer.lr *= self.gamma


class CosineAnnealingLR:
    """Cosine schedule from the initial LR down to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self._t = 0

    def step(self) -> None:
        self._t = min(self._t + 1, self.t_max)
        cos = 0.5 * (1.0 + np.cos(np.pi * self._t / self.t_max))
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos
