"""Finite-difference gradient verification for the autograd engine.

:func:`gradcheck` compares every analytic gradient produced by a function's
backward pass against central finite differences of its forward pass.  The
function's (possibly non-scalar) output is reduced to a scalar through a
fixed random cotangent, so a single check exercises the full output
Jacobian structure instead of just ``sum(output)``:

    loss(x) = sum(f(x) * c),   c ~ U(-1, 1) fixed per check

For ``float64`` inputs, central differences with ``eps = 1e-6`` carry
roughly ``1e-10`` of combined truncation + roundoff error, so the default
``1e-4`` tolerance detects any genuinely wrong backward formula while
staying robust to conditioning.

Requirements on ``fn``: deterministic (stochastic ops must rebuild their
generator from a fixed seed on every call, so the same mask is drawn) and
differentiable on a neighborhood of the supplied points (keep inputs away
from kinks such as ``relu``'s origin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

from . import arena as _arena
from . import ops
from .tensor import Tensor, default_dtype


@dataclass
class GradcheckResult:
    """Outcome of one :func:`gradcheck` call.

    Attributes
    ----------
    passed:
        True when every gradient entry matched within tolerance.
    max_abs_error:
        Largest ``|analytic - numeric|`` over all inputs and elements.
    failures:
        Human-readable description of each mismatching entry (empty when
        ``passed``).
    """

    passed: bool
    max_abs_error: float
    failures: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.passed


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-4,
    cotangent_seed: int = 0,
    raise_on_failure: bool = True,
) -> GradcheckResult:
    """Verify ``fn``'s backward pass against central finite differences.

    Parameters
    ----------
    fn:
        Maps one :class:`Tensor` per entry of ``inputs`` to an output
        tensor (any shape).  Constant arguments (labels, sparse matrices,
        hyperparameters) should be closed over.
    inputs:
        Float arrays; each becomes a ``requires_grad`` leaf tensor.
    eps:
        Central-difference step.
    atol / rtol:
        Entry ``(a, n)`` fails when ``|a - n| > atol + rtol * |n|``.
    cotangent_seed:
        Seed for the fixed random cotangent that scalarizes the output.
    raise_on_failure:
        Raise :class:`AssertionError` listing the mismatches (default)
        instead of returning a failed result.
    """
    # Finite differences need float64 headroom regardless of the process
    # default precision, and pooled gradient buffers would let the check
    # pass without exercising the allocate-per-grad path it documents.
    with default_dtype(np.float64), _arena.active_arena(arena=_NO_POOL):
        return _gradcheck_f64(
            fn, inputs, eps, atol, rtol, cotangent_seed, raise_on_failure
        )


class _NullArena(_arena.GradArena):
    """An arena that never pools, used to mask any ambient arena."""

    def release(self, buffer) -> None:  # noqa: D102 - drop everything
        return


_NO_POOL = _NullArena()


def _gradcheck_f64(
    fn: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float,
    atol: float,
    rtol: float,
    cotangent_seed: int,
    raise_on_failure: bool,
) -> GradcheckResult:
    arrays = [np.asarray(x, dtype=np.float64) for x in inputs]

    leaves = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*leaves)
    cotangent = np.random.default_rng(cotangent_seed).uniform(
        -1.0, 1.0, size=np.shape(out.data)
    )

    def scalar_loss(*tensors: Tensor) -> Tensor:
        return ops.sum(ops.mul(fn(*tensors), cotangent))

    loss = scalar_loss(*leaves)
    loss.backward()
    analytic = [
        np.zeros_like(a) if leaf.grad is None else np.array(leaf.grad, dtype=np.float64)
        for a, leaf in zip(arrays, leaves)
    ]

    def loss_value(perturbed: List[np.ndarray]) -> float:
        value = scalar_loss(*[Tensor(p) for p in perturbed])
        return float(value.data)

    failures: List[str] = []
    max_abs_error = 0.0
    for which, base in enumerate(arrays):
        numeric = np.zeros_like(base)
        flat = numeric.reshape(-1)
        for i in range(base.size):
            plus = [a.copy() for a in arrays]
            minus = [a.copy() for a in arrays]
            plus[which].reshape(-1)[i] += eps
            minus[which].reshape(-1)[i] -= eps
            flat[i] = (loss_value(plus) - loss_value(minus)) / (2.0 * eps)
        diff = np.abs(analytic[which] - numeric)
        max_abs_error = max(max_abs_error, float(diff.max(initial=0.0)))
        bad = diff > atol + rtol * np.abs(numeric)
        for idx in np.argwhere(bad):
            key = tuple(int(v) for v in idx)
            failures.append(
                f"input {which} at {key}: analytic "
                f"{analytic[which][key]:.8g} vs numeric {numeric[key]:.8g}"
            )

    result = GradcheckResult(
        passed=not failures, max_abs_error=max_abs_error, failures=failures
    )
    if raise_on_failure and not result.passed:
        shown = "\n  ".join(failures[:10])
        more = f"\n  ... and {len(failures) - 10} more" if len(failures) > 10 else ""
        raise AssertionError(
            f"gradcheck failed ({len(failures)} mismatching entries, "
            f"max abs error {max_abs_error:.3g}):\n  {shown}{more}"
        )
    return result
