"""Gradient buffer arena: pooled, shape/dtype-keyed arrays for backward.

Every backward pass in this engine used to allocate a fresh array per
gradient buffer (the first ``_accumulate_grad`` copies, the scatter
targets of ``index``, every intermediate's ``grad``).  On a full-graph
GCN step that is dozens of ``(n, d)`` allocations, and the allocator —
not arithmetic — shows up in the per-step profile.  The arena removes
them:

* :meth:`GradArena.acquire` hands out a buffer of exactly the requested
  shape/dtype, reusing one released earlier in the run when available;
* :meth:`GradArena.release` returns a buffer to the pool (bounded per
  shape/dtype key, so the pool size plateaus instead of growing with the
  graph's width);
* :meth:`Tensor.backward` releases every *intermediate* tensor's gradient
  right after its backward closure has consumed it, so the same few
  buffers cycle through the whole backward pass.  Leaf gradients
  (``Parameter.grad``) are never pooled — the optimizer and health guards
  read them between steps, so they must stay exclusively owned.

The arena is process-global but explicitly scoped: nothing is pooled
until :func:`enable` (or the :func:`active_arena` context manager) turns
it on.  The training engine enables it for the duration of a run; library
code and tests that inspect intermediate gradients run with it off and
see the historical allocate-per-grad behaviour.

Numerics are unaffected: a pooled buffer is always fully overwritten
(``np.copyto``) before it becomes a gradient, so enabling the arena is
bit-identical to running without it.

Pool statistics (hits, misses, released, dropped, pooled bytes) are
exported through :func:`repro.perf.set_gauge` under ``arena.*`` and can
be emitted as a ``repro.obs`` event by the engine.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

_Key = Tuple[Tuple[int, ...], str]


class GradArena:
    """A bounded pool of reusable gradient arrays, keyed by (shape, dtype).

    Parameters
    ----------
    max_per_key:
        Upper bound on pooled buffers per (shape, dtype) key.  Releases
        beyond the bound drop the array (counted in ``dropped``), which
        is what keeps the pool's footprint flat over arbitrarily many
        steps.
    """

    def __init__(self, max_per_key: int = 8) -> None:
        if max_per_key < 1:
            raise ValueError("max_per_key must be >= 1")
        self.max_per_key = max_per_key
        self._pool: Dict[_Key, List[np.ndarray]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.released = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(shape: Tuple[int, ...], dtype) -> _Key:
        return (tuple(shape), np.dtype(dtype).str)

    def acquire(self, shape: Tuple[int, ...], dtype, zero: bool = False) -> np.ndarray:
        """A buffer of exactly ``shape``/``dtype``; zero-filled when asked.

        The caller owns the returned array until it releases it (directly
        or via the backward pass's automatic release of intermediate
        gradients).  Contents are undefined unless ``zero`` is True.
        """
        key = self._key(shape, dtype)
        with self._lock:
            stack = self._pool.get(key)
            buffer = stack.pop() if stack else None
            if buffer is not None:
                self.hits += 1
            else:
                self.misses += 1
        if buffer is None:
            return np.zeros(shape, dtype=dtype) if zero else np.empty(shape, dtype=dtype)
        if zero:
            buffer.fill(0.0)
        return buffer

    def release(self, buffer: Optional[np.ndarray]) -> None:
        """Return ``buffer`` to the pool (dropped when the key is full).

        Only exclusively-owned, base-less arrays are poolable; views and
        None are ignored so callers can release unconditionally.
        """
        if buffer is None or buffer.base is not None or not buffer.flags.writeable:
            return
        key = self._key(buffer.shape, buffer.dtype.str)
        with self._lock:
            stack = self._pool.setdefault(key, [])
            if len(stack) < self.max_per_key:
                stack.append(buffer)
                self.released += 1
            else:
                self.dropped += 1

    # ------------------------------------------------------------------
    def pooled_buffers(self) -> int:
        """Number of arrays currently sitting in the pool."""
        with self._lock:
            return sum(len(stack) for stack in self._pool.values())

    def pooled_bytes(self) -> int:
        """Total bytes of the arrays currently pooled."""
        with self._lock:
            return sum(b.nbytes for stack in self._pool.values() for b in stack)

    def stats(self) -> Dict[str, int]:
        """Snapshot of the pool counters (JSON-serializable)."""
        with self._lock:
            pooled = sum(len(stack) for stack in self._pool.values())
            pooled_bytes = sum(b.nbytes for stack in self._pool.values() for b in stack)
        return {
            "hits": self.hits,
            "misses": self.misses,
            "released": self.released,
            "dropped": self.dropped,
            "pooled_buffers": pooled,
            "pooled_bytes": pooled_bytes,
        }

    def clear(self) -> None:
        """Drop every pooled buffer (counters survive)."""
        with self._lock:
            self._pool.clear()


# ----------------------------------------------------------------------
# Process-global activation
# ----------------------------------------------------------------------
_active: Optional[GradArena] = None


def enable(max_per_key: int = 8) -> GradArena:
    """Activate a fresh process-global arena and return it."""
    global _active
    _active = GradArena(max_per_key=max_per_key)
    return _active


def disable() -> None:
    """Deactivate pooling; subsequent backward passes allocate per-grad."""
    global _active
    _active = None


def is_enabled() -> bool:
    """Whether a gradient arena is currently active."""
    return _active is not None


def current() -> Optional[GradArena]:
    """The active arena, or None when pooling is off."""
    return _active


@contextmanager
def active_arena(max_per_key: int = 8, arena: Optional[GradArena] = None) -> Iterator[GradArena]:
    """Scoped activation: restores the previously active arena on exit.

    Pass an existing :class:`GradArena` to re-enter it (the training
    engine shares one arena across a whole run, including nested eval
    probes); otherwise a fresh arena is created for the scope.
    """
    global _active
    previous = _active
    _active = arena if arena is not None else GradArena(max_per_key=max_per_key)
    try:
        yield _active
    finally:
        _active = previous


def publish_stats(arena: Optional[GradArena] = None) -> Dict[str, int]:
    """Push the arena's counters into :mod:`repro.perf` gauges.

    Gauges land under ``arena.<counter>`` so benchmark and trace tooling
    can read pool behaviour next to the wall-clock counters.  Returns the
    stats that were published (empty when no arena is active).
    """
    from ..perf import set_gauge

    target = arena if arena is not None else _active
    if target is None:
        return {}
    stats = target.stats()
    for name, value in stats.items():
        set_gauge(f"arena.{name}", value)
    return stats
