"""Weight initializers.

The paper's encoders are Glorot-initialized GCNs (the Kipf & Welling
default); uniform/normal variants are provided for the other baselines.
Every initializer takes an explicit ``np.random.Generator`` so experiments
are reproducible end to end.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def glorot_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = shape[0], shape[-1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He uniform, appropriate for ReLU layers."""
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape)


def uniform(shape, rng: np.random.Generator, low: float = -0.05, high: float = 0.05) -> np.ndarray:
    return rng.uniform(low, high, size=shape)
