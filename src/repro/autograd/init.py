"""Weight initializers.

The paper's encoders are Glorot-initialized GCNs (the Kipf & Welling
default); uniform/normal variants are provided for the other baselines.
Every initializer takes an explicit ``np.random.Generator`` so experiments
are reproducible end to end.

Weights are drawn in float64 — so the random stream is identical whatever
the configured precision — and then cast to the process default dtype
(:func:`repro.autograd.tensor.get_default_dtype`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .tensor import get_default_dtype


def _cast(array: np.ndarray) -> np.ndarray:
    return array.astype(get_default_dtype(), copy=False)


def glorot_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = shape[0], shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-limit, limit, size=shape))


def glorot_normal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    fan_in, fan_out = shape[0], shape[-1]
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _cast(rng.normal(0.0, std, size=shape))


def he_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He uniform, appropriate for ReLU layers."""
    fan_in = shape[0]
    limit = np.sqrt(6.0 / fan_in)
    return _cast(rng.uniform(-limit, limit, size=shape))


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def uniform(shape, rng: np.random.Generator, low: float = -0.05, high: float = 0.05) -> np.ndarray:
    return _cast(rng.uniform(low, high, size=shape))
