"""Loss functions and distance helpers built from the primitive ops.

These are the training objectives shared across the reproduction:
cross-entropy for decoders, BCE for link predictors and DGI discriminators,
MSE, cosine losses for BGRL, and euclidean / cosine pairwise distances used
by the contrastive objectives.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import ops
from .tensor import Tensor, ensure_tensor


def mse_loss(pred: Tensor, target) -> Tensor:
    """Mean squared error over all elements."""
    target = ensure_tensor(target)
    diff = ops.sub(pred, target)
    return ops.mean(ops.mul(diff, diff))


def cross_entropy(logits: Tensor, labels: np.ndarray, weights: Optional[np.ndarray] = None) -> Tensor:
    """Softmax cross-entropy with integer class labels.

    Parameters
    ----------
    logits:
        ``(n, num_classes)`` unnormalized scores.
    labels:
        ``(n,)`` integer class indices.
    weights:
        Optional per-example weights (e.g. coreset λ); normalized by their sum.
    """
    labels = np.asarray(labels)
    n = logits.shape[0]
    if labels.shape[0] != n:
        raise ValueError(f"labels ({labels.shape[0]}) and logits ({n}) disagree")
    log_probs = ops.log_softmax(logits, axis=-1)
    picked = ops.index(log_probs, (np.arange(n), labels))
    if weights is None:
        return ops.neg(ops.mean(picked))
    weights = np.asarray(weights, dtype=np.float64)
    weights = weights / weights.sum()
    return ops.neg(ops.sum(ops.mul(picked, weights)))


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically stable BCE on raw logits: mean over all elements."""
    targets = ensure_tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    neg_abs = ops.neg(ops.abs(logits))
    softplus = ops.log(ops.add(1.0, ops.exp(neg_abs)))
    relu_part = ops.relu(logits)
    loss = ops.add(ops.sub(relu_part, ops.mul(logits, targets)), softplus)
    return ops.mean(loss)


def l2_regularization(parameters, coefficient: float) -> Tensor:
    """Sum of squared parameter entries, scaled: classic ridge penalty."""
    total = None
    for param in parameters:
        term = ops.sum(ops.mul(param, param))
        total = term if total is None else ops.add(total, term)
    if total is None:
        raise ValueError("no parameters to regularize")
    return ops.mul(total, coefficient)


def pairwise_sq_euclidean(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs squared euclidean distances between rows of ``a`` and ``b``.

    Returns an ``(n_a, n_b)`` tensor; differentiable in both inputs.
    """
    a_sq = ops.sum(ops.mul(a, a), axis=1, keepdims=True)          # (n_a, 1)
    b_sq = ops.sum(ops.mul(b, b), axis=1, keepdims=True)          # (n_b, 1)
    cross = ops.matmul(a, ops.transpose(b))                        # (n_a, n_b)
    return ops.add(ops.sub(a_sq, ops.mul(cross, 2.0)), ops.transpose(b_sq))


def rowwise_sq_euclidean(a: Tensor, b: Tensor) -> Tensor:
    """Squared euclidean distance between corresponding rows of ``a`` and ``b``."""
    diff = ops.sub(a, b)
    return ops.sum(ops.mul(diff, diff), axis=1)


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity between rows of ``a`` and rows of ``b``.

    Runs as the fused normalize-and-multiply kernel (bit-identical to the
    ``l2_normalize_rows``/``matmul``/``transpose`` chain it replaces).
    """
    return ops.normalize_cosine_sim(a, b)


def rowwise_cosine_similarity(a: Tensor, b: Tensor) -> Tensor:
    """Cosine similarity between corresponding rows of ``a`` and ``b``.

    Fused: one graph node instead of the normalize/mul/sum chain.
    """
    return ops.normalize_cosine_rowwise(a, b)


def bootstrap_cosine_loss(online: Tensor, target: Tensor) -> Tensor:
    """BGRL/BYOL loss: ``2 - 2 * mean(cosine(online_i, target_i))``."""
    sim = rowwise_cosine_similarity(online, target)
    return ops.sub(2.0, ops.mul(ops.mean(sim), 2.0))
