"""Reverse-mode autodiff engine (the reproduction's PyTorch substitute).

Public surface::

    from repro.autograd import Tensor, Parameter, Module, ops, functional
    from repro.autograd.optim import Adam, SGD
"""

from . import arena, functional, init, ops
from .arena import GradArena, active_arena
from .gradcheck import GradcheckResult, gradcheck
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, AdamW, CosineAnnealingLR, ExponentialLR, global_grad_norm
from .tensor import (
    Tensor,
    default_dtype,
    ensure_tensor,
    get_default_dtype,
    set_default_dtype,
)

__all__ = [
    "Tensor",
    "ensure_tensor",
    "arena",
    "GradArena",
    "active_arena",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "gradcheck",
    "GradcheckResult",
    "Parameter",
    "Module",
    "Sequential",
    "SGD",
    "Adam",
    "AdamW",
    "ExponentialLR",
    "CosineAnnealingLR",
    "global_grad_norm",
    "ops",
    "functional",
    "init",
]
