"""Reverse-mode autodiff engine (the reproduction's PyTorch substitute).

Public surface::

    from repro.autograd import Tensor, Parameter, Module, ops, functional
    from repro.autograd.optim import Adam, SGD
"""

from . import functional, init, ops
from .gradcheck import GradcheckResult, gradcheck
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, AdamW, CosineAnnealingLR, ExponentialLR, global_grad_norm
from .tensor import Tensor, ensure_tensor

__all__ = [
    "Tensor",
    "ensure_tensor",
    "gradcheck",
    "GradcheckResult",
    "Parameter",
    "Module",
    "Sequential",
    "SGD",
    "Adam",
    "AdamW",
    "ExponentialLR",
    "CosineAnnealingLR",
    "global_grad_norm",
    "ops",
    "functional",
    "init",
]
