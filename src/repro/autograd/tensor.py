"""Reverse-mode automatic differentiation over numpy arrays.

This module is the computational substrate for the whole reproduction: the
paper trains GCN encoders with gradient descent through PyTorch, and this
``Tensor`` class provides the equivalent capability on top of numpy.

Design notes
------------
* A :class:`Tensor` wraps an ``np.ndarray`` (``data``) and, when it is the
  result of an operation, remembers its parents and a ``_backward`` closure
  that scatters its output gradient into the parents' ``grad`` buffers.
* ``Tensor.backward()`` performs a topological sort of the recorded graph and
  runs the closures in reverse order.  Gradients accumulate (+=), matching
  the semantics of every mainstream framework.
* Broadcasting is fully supported for elementwise arithmetic; gradients are
  "un-broadcast" (summed over broadcast axes) before accumulation.
* Sparse matrices (scipy CSR) participate as *constants* through
  :func:`repro.autograd.ops.spmm`; graph structure never requires gradients
  in any model of the paper.

The engine is intentionally eager and minimal: there is no graph retention
across backward calls, no higher-order gradients, and no in-place op
tracking, none of which are needed by the models reproduced here.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import arena as _arena

ArrayLike = Union[np.ndarray, float, int, Sequence]

#: Process-wide dtype every tensor is coerced to.  float64 is the historical
#: (and test-locked) default; float32 halves memory traffic end-to-end and is
#: selected per run via :func:`set_default_dtype` / :func:`default_dtype`.
_DEFAULT_DTYPE = np.dtype(np.float64)

_SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> None:
    """Set the process-wide tensor dtype (``float32`` or ``float64``).

    Everything downstream follows: tensor coercion, parameter
    initialization, optimizer slot buffers, and (through them) checkpoint
    and serving artifacts.  Training at float32 halves the memory traffic
    of every kernel; see docs/PERFORMANCE.md for the accuracy tolerances
    measured against float64.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported default dtype {dtype!r}; pick float32 or float64"
        )
    _DEFAULT_DTYPE = resolved


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are coerced to (float64 unless configured)."""
    return _DEFAULT_DTYPE


@contextmanager
def default_dtype(dtype) -> Iterator[np.dtype]:
    """Scoped :func:`set_default_dtype`; restores the previous dtype on exit."""
    previous = _DEFAULT_DTYPE
    set_default_dtype(dtype)
    try:
        yield _DEFAULT_DTYPE
    finally:
        set_default_dtype(previous)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    """Coerce ``value`` to a float numpy array without copying when possible.

    ``dtype=None`` (the usual case) resolves to the configured default
    dtype, so one :func:`set_default_dtype` call re-types every tensor the
    process creates from then on.
    """
    if dtype is None:
        dtype = _DEFAULT_DTYPE
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``, undoing numpy broadcasting.

    When an operand of shape ``shape`` was broadcast up to ``grad.shape``
    during the forward pass, the chain rule requires summing the incoming
    gradient over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Array (or scalar / nested sequence) holding the tensor's value.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    parents:
        Tensors this one was computed from (internal, set by operations).
    backward_fn:
        Closure that receives this tensor's output gradient and accumulates
        into the parents (internal, set by operations).
    name:
        Optional debugging label.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Iterable["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        from . import ops

        return ops.transpose(self)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the autodiff graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _accumulate_grad(self, grad: np.ndarray, donate: bool = False) -> None:
        """Add ``grad`` into :attr:`grad` (allocating it on first touch).

        ``donate=True`` promises the caller computed ``grad`` as a fresh
        temporary it will never touch again, letting the first
        accumulation take ownership instead of copying — the zero-copy
        path every fused kernel and hot backward closure uses.
        """
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            if donate and grad.base is None and grad.flags.writeable:
                self.grad = grad
                return
            pool = _arena.current()
            if pool is not None and self._backward_fn is not None:
                buffer = pool.acquire(grad.shape, grad.dtype)
                np.copyto(buffer, grad)
                self.grad = buffer
            else:
                self.grad = grad.copy()
        else:
            self.grad += grad
            if donate:
                # The donated temporary was consumed by the in-place add;
                # hand it to the pool instead of dropping it on the floor.
                pool = _arena.current()
                if pool is not None:
                    pool.release(grad)

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor.
            Defaults to ``1`` which is only valid for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor; got shape {self.shape}"
                )
            # The seed is freshly built, so the root can take ownership
            # outright (donate) instead of round-tripping the arena — the
            # root's grad outlives the pass, so pooling it would leak one
            # buffer per step.
            seed = np.ones_like(self.data)
        else:
            # Private copy (first-touch accumulation always copied anyway)
            # so the root can own it without aliasing the caller's array.
            seed = np.array(grad, dtype=self.data.dtype)

        order = self._topological_order()
        self._accumulate_grad(seed, donate=True)
        pool = _arena.current()
        for node in reversed(order):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)
                # Reverse topological order guarantees every consumer of
                # this node has already contributed to its grad, and the
                # closure above was its only reader — the buffer can go
                # straight back to the pool.  The root keeps its grad
                # (callers inspect ``loss.grad`` after ``backward``).
                if pool is not None and node is not self:
                    pool.release(node.grad)
                    node.grad = None

    def _topological_order(self) -> List["Tensor"]:
        """Iterative post-order DFS (avoids recursion limits on deep graphs)."""
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Operator overloads (delegated to the functional ops module)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(other, self)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __pow__(self, exponent: float):
        from . import ops

        return ops.power(self, exponent)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops

        return ops.index(self, index)

    # Convenience reductions / shapes -----------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)


def ensure_tensor(value: Union[Tensor, ArrayLike]) -> Tensor:
    """Wrap plain arrays/scalars in a constant (non-grad) :class:`Tensor`."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def no_grad_tensor(data: ArrayLike) -> Tensor:
    """Explicit constructor for constants; mirrors ``torch.tensor`` defaults."""
    return Tensor(data, requires_grad=False)
