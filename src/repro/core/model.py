"""The :class:`E2GCL` facade — the library's primary public entry point.

Quickstart::

    from repro import E2GCL, load_dataset

    graph = load_dataset("cora", seed=0)
    model = E2GCL().fit(graph)
    embeddings = model.embed()            # (n, d) node representations
    result = model.evaluate(seed=0)       # linear-eval node classification
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graphs import Graph
from .config import E2GCLConfig
from .node_selector import CoresetResult
from .trainer import E2GCLTrainer, TrainResult


class E2GCL:
    """Efficient and Expressive Graph Contrastive Learning.

    Wraps the selector + generator + trainer pipeline behind a
    scikit-learn-style ``fit`` / ``embed`` interface.

    Parameters
    ----------
    config:
        Optional :class:`E2GCLConfig`; keyword overrides may be passed
        directly (``E2GCL(epochs=100, node_ratio=0.25)``).
    """

    def __init__(self, config: Optional[E2GCLConfig] = None, **overrides) -> None:
        base = config or E2GCLConfig()
        self.config = base.with_overrides(**overrides) if overrides else base
        self.trainer: Optional[E2GCLTrainer] = None
        self.result: Optional[TrainResult] = None
        self._graph: Optional[Graph] = None

    # ------------------------------------------------------------------
    def fit(self, graph: Graph, callback=None) -> "E2GCL":
        """Pre-train the encoder on ``graph`` (no labels consumed)."""
        self._graph = graph
        self.trainer = E2GCLTrainer(graph, self.config)
        self.result = self.trainer.train(callback=callback)
        return self

    def _require_fitted(self) -> TrainResult:
        if self.result is None:
            raise RuntimeError("call fit() (or load a checkpoint) before using the model")
        return self.result

    def embed(self, graph: Optional[Graph] = None) -> np.ndarray:
        """Node representations from the frozen pre-trained encoder.

        ``graph`` defaults to the graph passed to :meth:`fit`; models
        restored from a checkpoint must pass one explicitly.
        """
        result = self._require_fitted()
        target = graph if graph is not None else self._graph
        if target is None:
            raise ValueError("no graph available; pass one to embed()")
        return result.encoder.embed(target)

    @property
    def coreset(self) -> Optional[CoresetResult]:
        """The selected representative nodes (``None`` when disabled)."""
        self._require_fitted()
        return self.result.coreset

    @property
    def selection_seconds(self) -> float:
        """Tab. V's ST — wall-clock cost of Alg. 2."""
        self._require_fitted()
        return self.result.selection_seconds

    @property
    def training_seconds(self) -> float:
        """Tab. V's TT — total pre-training wall clock."""
        self._require_fitted()
        return self.result.total_seconds

    # ------------------------------------------------------------------
    def evaluate(self, seed: int = 0, trials: int = 1):
        """Node-classification linear evaluation on the training graph.

        Convenience wrapper around
        :func:`repro.eval.node_classification.evaluate_embeddings`.
        """
        from ..eval.node_classification import evaluate_embeddings

        self._require_fitted()
        return evaluate_embeddings(self._graph, self.embed(), seed=seed, trials=trials)
