"""Edge and feature importance scores (Sec. IV-C1 / IV-C2).

Edge score between a target node ``v`` and a candidate ``u``::

    w^e_{v,u} = β · exp(φ_c(u) + Sim(v, u))          if u ∈ N_v
              = (1−β) · exp(−φ_c(u) + Sim(v, u))     otherwise

with ``φ_c(u) = log(D_u + 1)`` and ``Sim(v,u) = c − ||x_v − x_u||`` where
``c`` is the max feature distance over existing edges.  Keeping an existing
edge to an influential, similar neighbor scores high; adding a new edge to
an influential node scores low (it would distort the locality pattern).

Feature score: global dimension importance ``w_i^f = Σ_v φ_c(v)·|x_v[i]|``
combined with the owner's centrality, ``w^f_{x_v[i]} = w_i^f · φ_c(v)``.
Eq. 16 then perturbs low-score entries with probability
``p = η · (w_max − w) / (w_max − w_mean)``.

Note on normalization: the paper normalizes per feature dimension, but with
the factorized score ``w_i^f · φ_c(v)`` a per-dimension max/mean cancels
``w_i^f`` entirely, leaving a probability that ignores dimension importance
(contradicting the E2GCL\\F ablation).  Following the GCA lineage the paper
builds on, the default normalizes over the full score matrix so both the
node's centrality *and* the dimension's importance modulate the probability;
``normalization="per_dimension"`` gives the literal reading.

All scores depend only on degrees and raw features (the paper's *Remarks*),
so everything here is computed once per graph and reused across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np
import scipy.sparse as sp

from ..graphs import Graph, centrality as graph_centrality, degree_centrality


@dataclass
class EdgeScoreTable:
    """Per-node candidate neighbor lists with sampling probabilities.

    For each node ``u``, ``candidates[u]`` is its ``N_u^1 ∪ N_u^2`` candidate
    set (Alg. 3 line 6) and ``probabilities[u]`` the normalized edge scores
    ``P(u1 | u, V_u^N)`` used for neighbor sampling.  ``base_degree[u]`` is
    ``|N_u|``, the quantity τ multiplies.
    """

    candidates: List[np.ndarray]
    probabilities: List[np.ndarray]
    base_degree: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.base_degree.shape[0]


def similarity_offset(graph: Graph) -> float:
    """``c = max_{(v,u) ∈ E} ||x_v − x_u||`` (0 for edgeless graphs)."""
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    diffs = graph.features[edges[:, 0]] - graph.features[edges[:, 1]]
    return float(np.sqrt((diffs ** 2).sum(axis=1)).max())


def _candidate_sets(graph: Graph, max_candidates: Optional[int], rng: np.random.Generator):
    """``N_u^1 ∪ N_u^2`` for every node via one sparse square ``A + A²``."""
    adj = graph.adjacency
    reach = (adj + adj @ adj).tolil()
    reach.setdiag(0)
    reach = reach.tocsr()
    candidate_lists = []
    for u in range(graph.num_nodes):
        cands = reach.indices[reach.indptr[u]:reach.indptr[u + 1]]
        if max_candidates is not None and cands.size > max_candidates:
            cands = rng.choice(cands, size=max_candidates, replace=False)
            cands.sort()
        candidate_lists.append(cands.astype(np.int64))
    return candidate_lists


def _node_influence(graph: Graph, method: str) -> np.ndarray:
    """φ_c under the chosen centrality (Sec. IV-C defaults to log-degree;
    PageRank/eigenvector variants follow the GCA lineage).  Non-degree
    centralities are log-scaled onto a comparable range."""
    if method == "degree":
        return degree_centrality(graph)
    values = graph_centrality(graph, method)
    return np.log1p(values / max(values.mean(), 1e-12))


def compute_edge_scores(
    graph: Graph,
    beta: float = 0.7,
    uniform: bool = False,
    max_candidates: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    centrality_method: str = "degree",
) -> EdgeScoreTable:
    """Precompute the edge-score sampling table for Alg. 3.

    Parameters
    ----------
    beta:
        Mass on existing edges vs. new (2-hop) edges.  β > 0.5 means views
        mostly keep real neighbors and occasionally add 2-hop shortcuts.
    uniform:
        Ablation switch (E2GCL\\S): all candidates equally likely, but the
        existing/new split still honors β so edge *counts* stay comparable.
    max_candidates:
        Cap per-node candidate sets (memory guard on dense graphs).
    centrality_method:
        ``"degree"`` (the paper's φ_c), ``"pagerank"``, or ``"eigenvector"``.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    centrality = _node_influence(graph, centrality_method)
    c_offset = similarity_offset(graph)
    feat = graph.features
    feat_sq = (feat ** 2).sum(axis=1)
    candidate_lists = _candidate_sets(graph, max_candidates, rng)

    neighbor_sets = [set(graph.neighbors(u).tolist()) for u in range(graph.num_nodes)]
    candidates: List[np.ndarray] = []
    probabilities: List[np.ndarray] = []
    for u in range(graph.num_nodes):
        cands = candidate_lists[u]
        if cands.size == 0:
            candidates.append(cands)
            probabilities.append(np.zeros(0))
            continue
        if uniform:
            is_neighbor = np.fromiter(
                (int(c) in neighbor_sets[u] for c in cands), dtype=bool, count=cands.size
            )
            scores = np.where(is_neighbor, beta, 1.0 - beta)
        else:
            dist_sq = feat_sq[cands] + feat_sq[u] - 2.0 * (feat[cands] @ feat[u])
            np.maximum(dist_sq, 0.0, out=dist_sq)
            sim = c_offset - np.sqrt(dist_sq)
            is_neighbor = np.fromiter(
                (int(c) in neighbor_sets[u] for c in cands), dtype=bool, count=cands.size
            )
            phi = centrality[cands]
            # exp() is shift-invariant under the final normalization, so
            # subtract the max exponent for numerical safety.
            exponent = np.where(is_neighbor, phi + sim, -phi + sim)
            exponent -= exponent.max()
            scores = np.where(is_neighbor, beta, 1.0 - beta) * np.exp(exponent)
        total = scores.sum()
        probs = scores / total if total > 0 else np.full(cands.size, 1.0 / cands.size)
        candidates.append(cands)
        probabilities.append(probs)

    return EdgeScoreTable(
        candidates=candidates,
        probabilities=probabilities,
        base_degree=graph.degrees.copy(),
    )


@dataclass
class FeatureScoreTable:
    """Feature-perturbation probabilities for Eq. 16.

    ``perturb_probability(eta)`` returns the ``(n, d)`` matrix of Bernoulli
    parameters ``p_{x_u[i]}``; the score matrix itself is kept for tests and
    diagnostics.
    """

    scores: np.ndarray            # (n, d) — w^f_{x_v[i]}
    dimension_scores: np.ndarray  # (d,)  — w_i^f
    normalized: np.ndarray        # (n, d) in [0, 1]; higher = perturb more

    def perturb_probability(self, eta: float) -> np.ndarray:
        """``p = η · normalized`` clipped to [0, 1]."""
        if eta < 0:
            raise ValueError("eta must be non-negative")
        return np.clip(eta * self.normalized, 0.0, 1.0)


def compute_feature_scores(
    graph: Graph,
    normalization: str = "global",
    uniform: bool = False,
    centrality_method: str = "degree",
) -> FeatureScoreTable:
    """Compute ``w^f`` and the Eq. 16 normalization.

    ``uniform=True`` is the E2GCL\\F ablation: every entry is perturbed with
    the same probability η.
    """
    n, d = graph.features.shape
    if uniform:
        flat = np.ones((n, d))
        return FeatureScoreTable(
            scores=flat, dimension_scores=np.ones(d), normalized=flat
        )
    centrality = _node_influence(graph, centrality_method)
    dimension_scores = centrality @ np.abs(graph.features)  # w_i^f, shape (d,)
    scores = np.outer(centrality, dimension_scores)          # w^f_{x_v[i]}

    if normalization == "global":
        w_max = scores.max()
        w_mean = scores.mean()
        span = max(w_max - w_mean, 1e-12)
        normalized = np.clip((w_max - scores) / span, 0.0, 1.0)
    elif normalization == "per_dimension":
        w_max = scores.max(axis=0, keepdims=True)
        w_mean = scores.mean(axis=0, keepdims=True)
        span = np.maximum(w_max - w_mean, 1e-12)
        normalized = np.clip((w_max - scores) / span, 0.0, 1.0)
    else:
        raise ValueError(f"unknown normalization {normalization!r}")
    return FeatureScoreTable(
        scores=scores, dimension_scores=dimension_scores, normalized=normalized
    )
