"""Edge and feature importance scores (Sec. IV-C1 / IV-C2).

Edge score between a target node ``v`` and a candidate ``u``::

    w^e_{v,u} = β · exp(φ_c(u) + Sim(v, u))          if u ∈ N_v
              = (1−β) · exp(−φ_c(u) + Sim(v, u))     otherwise

with ``φ_c(u) = log(D_u + 1)`` and ``Sim(v,u) = c − ||x_v − x_u||`` where
``c`` is the max feature distance over existing edges.  Keeping an existing
edge to an influential, similar neighbor scores high; adding a new edge to
an influential node scores low (it would distort the locality pattern).

Feature score: global dimension importance ``w_i^f = Σ_v φ_c(v)·|x_v[i]|``
combined with the owner's centrality, ``w^f_{x_v[i]} = w_i^f · φ_c(v)``.
Eq. 16 then perturbs low-score entries with probability
``p = η · (w_max − w) / (w_max − w_mean)``.

Note on normalization: the paper normalizes per feature dimension, but with
the factorized score ``w_i^f · φ_c(v)`` a per-dimension max/mean cancels
``w_i^f`` entirely, leaving a probability that ignores dimension importance
(contradicting the E2GCL\\F ablation).  Following the GCA lineage the paper
builds on, the default normalizes over the full score matrix so both the
node's centrality *and* the dimension's importance modulate the probability;
``normalization="per_dimension"`` gives the literal reading.

All scores depend only on degrees and raw features (the paper's *Remarks*),
so everything here is computed once per graph and reused across epochs.

Storage: :class:`EdgeScoreTable` keeps the per-node candidate sets in one
flat CSR layout (``indptr``/``indices``/``probs``) instead of ragged
``List[np.ndarray]`` columns, so downstream consumers (the batched view
sampler above all) operate on whole arrays with zero per-node Python
dispatch.  The old list-of-arrays API survives as thin zero-copy views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..graphs import Graph, centrality as graph_centrality, degree_centrality
from ..perf import profiled


class _SegmentedView:
    """Read-only list-of-arrays facade over a flat CSR pair.

    ``view[u]`` returns the ``u``-th segment as a zero-copy slice, so code
    written against the old ragged ``List[np.ndarray]`` layout keeps
    working unchanged.
    """

    __slots__ = ("_indptr", "_data")

    def __init__(self, indptr: np.ndarray, data: np.ndarray) -> None:
        self._indptr = indptr
        self._data = data

    def __len__(self) -> int:
        return self._indptr.shape[0] - 1

    def __getitem__(self, u: int) -> np.ndarray:
        return self._data[self._indptr[u]:self._indptr[u + 1]]

    def __iter__(self):
        for u in range(len(self)):
            yield self[u]


@dataclass
class EdgeScoreTable:
    """Per-node candidate neighbor sets with sampling probabilities, CSR-flat.

    For each node ``u``, ``indices[indptr[u]:indptr[u+1]]`` is its sorted
    ``N_u^1 ∪ N_u^2`` candidate set (Alg. 3 line 6) and the matching slice of
    ``probs`` the normalized edge scores ``P(u1 | u, V_u^N)`` used for
    neighbor sampling.  ``base_degree[u]`` is ``|N_u|``, the quantity τ
    multiplies.  ``counts`` caches the per-node segment lengths.

    ``candidates`` / ``probabilities`` expose the historical list-like API as
    zero-copy views into the flat arrays.
    """

    indptr: np.ndarray      # (n + 1,) int64 segment boundaries
    indices: np.ndarray     # (total,) int64 flat candidate ids
    probs: np.ndarray       # (total,) float64 flat sampling probabilities
    base_degree: np.ndarray  # (n,) float64
    counts: np.ndarray = field(init=False)  # (n,) int64 segment sizes

    def __post_init__(self) -> None:
        self.counts = np.diff(self.indptr)

    @property
    def num_nodes(self) -> int:
        return self.base_degree.shape[0]

    @property
    def num_entries(self) -> int:
        return int(self.indices.shape[0])

    @property
    def candidates(self) -> _SegmentedView:
        return _SegmentedView(self.indptr, self.indices)

    @property
    def probabilities(self) -> _SegmentedView:
        return _SegmentedView(self.indptr, self.probs)

    def segment_ids(self) -> np.ndarray:
        """``(total,)`` source-node id of every flat entry."""
        return np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.counts)


def similarity_offset(graph: Graph) -> float:
    """``c = max_{(v,u) ∈ E} ||x_v − x_u||`` (0 for edgeless graphs)."""
    edges = graph.edge_array()
    if edges.shape[0] == 0:
        return 0.0
    diffs = graph.features[edges[:, 0]] - graph.features[edges[:, 1]]
    return float(np.sqrt((diffs ** 2).sum(axis=1)).max())


def _candidate_sets(graph: Graph, max_candidates: Optional[int], rng: np.random.Generator):
    """``N_u^1 ∪ N_u^2`` for every node via one sparse square ``A + A²``.

    Fully CSR: the diagonal is dropped by a coordinate mask (no ``.tolil()``
    round-trip, no explicit zeros left behind) and the optional per-node cap
    is applied with one random-key ``lexsort`` instead of a Python loop of
    ``rng.choice`` calls.

    Returns ``(indptr, flat_candidates, is_neighbor)`` where ``is_neighbor``
    flags the candidates that are existing 1-hop edges — recovered for free
    from the reach-matrix values, replacing per-node Python set probes.
    """
    adj = graph.adjacency
    two_hop = (adj @ adj).tocsr()
    two_hop.data = np.ones_like(two_hop.data)
    # Values encode provenance: 2 → 1-hop only, 1 → 2-hop only, 3 → both.
    reach = (adj * 2.0 + two_hop).tocsr()
    reach.sum_duplicates()

    coo = reach.tocoo()
    keep = coo.row != coo.col
    rows = coo.row[keep].astype(np.int64)
    cols = coo.col[keep].astype(np.int64)
    vals = coo.data[keep]

    n = graph.num_nodes
    counts = np.bincount(rows, minlength=n)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    if max_candidates is not None and counts.max(initial=0) > max_candidates:
        # Uniform without-replacement subsample per overfull row: shuffle
        # each row with random keys, keep the first ``max_candidates``
        # positions, then restore ascending (row, col) order.
        keys = rng.random(rows.size)
        order = np.lexsort((keys, rows))
        rank = np.arange(rows.size) - np.repeat(indptr[:-1], counts)
        selected = np.sort(order[rank < max_candidates])
        rows, cols, vals = rows[selected], cols[selected], vals[selected]
        counts = np.bincount(rows, minlength=n)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    return indptr, cols, vals >= 2.0


def _node_influence(graph: Graph, method: str) -> np.ndarray:
    """φ_c under the chosen centrality (Sec. IV-C defaults to log-degree;
    PageRank/eigenvector variants follow the GCA lineage).  Non-degree
    centralities are log-scaled onto a comparable range."""
    if method == "degree":
        return degree_centrality(graph)
    values = graph_centrality(graph, method)
    return np.log1p(values / max(values.mean(), 1e-12))


def _segmented_max(values: np.ndarray, indptr: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment max of a flat CSR-aligned array (empty segments → 0).

    ``np.maximum.reduceat`` over the starts of the *non-empty* segments is
    exact here because empty segments contribute no flat entries, so
    consecutive non-empty starts bound precisely one segment each.
    """
    n = counts.shape[0]
    out = np.zeros(n)
    nonempty = counts > 0
    if nonempty.any():
        out[nonempty] = np.maximum.reduceat(values, indptr[:-1][nonempty])
    return out


def _segmented_sum(values: np.ndarray, indptr: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Per-segment sum of a flat CSR-aligned array (empty segments → 0)."""
    n = counts.shape[0]
    out = np.zeros(n)
    nonempty = counts > 0
    if nonempty.any():
        out[nonempty] = np.add.reduceat(values, indptr[:-1][nonempty])
    return out


_CROSS_CHUNK_ELEMENTS = 8_000_000  # flat-entry × feature-dim budget per pass


def _pairwise_similarity(
    graph: Graph, sources: np.ndarray, targets: np.ndarray, c_offset: float
) -> np.ndarray:
    """``Sim(v, u) = c − ||x_v − x_u||`` for flat (source, target) pairs,
    chunked so the gathered feature blocks stay inside a fixed budget."""
    feat = graph.features
    feat_sq = (feat ** 2).sum(axis=1)
    total = sources.shape[0]
    cross = np.empty(total)
    chunk = max(1, _CROSS_CHUNK_ELEMENTS // max(feat.shape[1], 1))
    for start in range(0, total, chunk):
        stop = min(start + chunk, total)
        cross[start:stop] = np.einsum(
            "ij,ij->i", feat[sources[start:stop]], feat[targets[start:stop]]
        )
    dist_sq = feat_sq[sources] + feat_sq[targets] - 2.0 * cross
    np.maximum(dist_sq, 0.0, out=dist_sq)
    return c_offset - np.sqrt(dist_sq)


@profiled("scores.compute_edge_scores")
def compute_edge_scores(
    graph: Graph,
    beta: float = 0.7,
    uniform: bool = False,
    max_candidates: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    centrality_method: str = "degree",
) -> EdgeScoreTable:
    """Precompute the edge-score sampling table for Alg. 3.

    One segmented pass over the flat candidate array: similarity, centrality,
    the β-split, and per-node normalization are all whole-array expressions
    (``reduceat`` for the per-node max/sum), with no per-node Python work.

    Parameters
    ----------
    beta:
        Mass on existing edges vs. new (2-hop) edges.  β > 0.5 means views
        mostly keep real neighbors and occasionally add 2-hop shortcuts.
    uniform:
        Ablation switch (E2GCL\\S): all candidates equally likely, but the
        existing/new split still honors β so edge *counts* stay comparable.
    max_candidates:
        Cap per-node candidate sets (memory guard on dense graphs).
    centrality_method:
        ``"degree"`` (the paper's φ_c), ``"pagerank"``, or ``"eigenvector"``.
    """
    if not 0.0 < beta < 1.0:
        raise ValueError("beta must be in (0, 1)")
    rng = rng or np.random.default_rng(0)
    indptr, flat_candidates, is_neighbor = _candidate_sets(graph, max_candidates, rng)
    counts = np.diff(indptr)
    sources = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), counts)

    if uniform:
        scores = np.where(is_neighbor, beta, 1.0 - beta)
    else:
        centrality = _node_influence(graph, centrality_method)
        sim = _pairwise_similarity(graph, sources, flat_candidates, similarity_offset(graph))
        phi = centrality[flat_candidates]
        # exp() is shift-invariant under the final normalization, so subtract
        # each node's max exponent for numerical safety.
        exponent = np.where(is_neighbor, phi + sim, -phi + sim)
        exponent -= _segmented_max(exponent, indptr, counts)[sources]
        scores = np.where(is_neighbor, beta, 1.0 - beta) * np.exp(exponent)

    totals = _segmented_sum(scores, indptr, counts)
    safe_totals = np.where(totals > 0, totals, 1.0)[sources]
    probs = np.where(
        totals[sources] > 0,
        scores / safe_totals,
        1.0 / np.maximum(counts, 1)[sources],
    )
    return EdgeScoreTable(
        indptr=indptr,
        indices=flat_candidates.astype(np.int64),
        probs=probs,
        base_degree=graph.degrees.copy(),
    )


@dataclass
class FeatureScoreTable:
    """Feature-perturbation probabilities for Eq. 16.

    ``perturb_probability(eta)`` returns the ``(n, d)`` matrix of Bernoulli
    parameters ``p_{x_u[i]}``; the score matrix itself is kept for tests and
    diagnostics.
    """

    scores: np.ndarray            # (n, d) — w^f_{x_v[i]}
    dimension_scores: np.ndarray  # (d,)  — w_i^f
    normalized: np.ndarray        # (n, d) in [0, 1]; higher = perturb more

    def perturb_probability(self, eta: float) -> np.ndarray:
        """``p = η · normalized`` clipped to [0, 1]."""
        if eta < 0:
            raise ValueError("eta must be non-negative")
        return np.clip(eta * self.normalized, 0.0, 1.0)


@profiled("scores.compute_feature_scores")
def compute_feature_scores(
    graph: Graph,
    normalization: str = "global",
    uniform: bool = False,
    centrality_method: str = "degree",
) -> FeatureScoreTable:
    """Compute ``w^f`` and the Eq. 16 normalization.

    ``uniform=True`` is the E2GCL\\F ablation: every entry is perturbed with
    the same probability η.
    """
    n, d = graph.features.shape
    if uniform:
        flat = np.ones((n, d))
        return FeatureScoreTable(
            scores=flat, dimension_scores=np.ones(d), normalized=flat
        )
    centrality = _node_influence(graph, centrality_method)
    dimension_scores = centrality @ np.abs(graph.features)  # w_i^f, shape (d,)
    scores = np.outer(centrality, dimension_scores)          # w^f_{x_v[i]}

    if normalization == "global":
        w_max = scores.max()
        w_mean = scores.mean()
        span = max(w_max - w_mean, 1e-12)
        normalized = np.clip((w_max - scores) / span, 0.0, 1.0)
    elif normalization == "per_dimension":
        w_max = scores.max(axis=0, keepdims=True)
        w_mean = scores.mean(axis=0, keepdims=True)
        span = np.maximum(w_max - w_mean, 1e-12)
        normalized = np.clip((w_max - scores) / span, 0.0, 1.0)
    else:
        raise ValueError(f"unknown normalization {normalization!r}")
    return FeatureScoreTable(
        scores=scores, dimension_scores=dimension_scores, normalized=normalized
    )
