"""Save/load pre-trained E2GCL models (legacy facade format, v1).

A v1 checkpoint is a single ``.npz`` holding the encoder's parameter
arrays, the config (as JSON), and — when present — the coreset.  Loading
rebuilds the model without re-running selection or training, so downstream
tasks can reuse one expensive pre-training.

This format predates the engine and stays supported for published E2GCL
model files; new code should prefer the method-agnostic *v2* engine
checkpoints (:mod:`repro.engine.checkpoint`), which additionally capture
optimizer and RNG state so runs can be resumed bit-identically.  Both
formats share the JSON packing helpers.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Union

import numpy as np

from ..engine import atomic_savez, pack_json
from ..nn import GCN
from .config import E2GCLConfig
from .model import E2GCL
from .node_selector import CoresetResult
from .trainer import TrainResult

_FORMAT_VERSION = 1


def save_model(model: E2GCL, path: Union[str, Path]) -> Path:
    """Serialize a fitted :class:`E2GCL` to ``path`` (``.npz``)."""
    if model.result is None:
        raise RuntimeError("cannot save an unfitted model; call fit() first")
    path = Path(path)
    payload = {
        f"param/{name}": array
        for name, array in model.result.encoder.state_dict().items()
    }
    payload["meta/config"] = pack_json(dataclasses.asdict(model.config))
    payload["meta/version"] = np.array([_FORMAT_VERSION])
    payload["meta/in_features"] = np.array([model.result.encoder.layers[0].weight.shape[0]])
    coreset = model.result.coreset
    if coreset is not None:
        payload["coreset/selected"] = coreset.selected
        payload["coreset/weights"] = coreset.weights
        payload["coreset/assignment"] = coreset.assignment
    # Crash-safe like the engine's v2 writer: a kill mid-save can never
    # leave a truncated file under the model's name.
    return atomic_savez(path, payload)


def load_model(path: Union[str, Path]) -> E2GCL:
    """Rebuild a fitted :class:`E2GCL` from a checkpoint.

    The returned model supports :meth:`E2GCL.embed` on any graph with the
    same feature dimension; ``fit`` history and timings are not preserved.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["meta/version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        config = E2GCLConfig(**json.loads(bytes(data["meta/config"]).decode()))
        in_features = int(data["meta/in_features"][0])
        state = {
            key[len("param/"):]: data[key]
            for key in data.files if key.startswith("param/")
        }
        coreset = None
        if "coreset/selected" in data.files:
            coreset = CoresetResult(
                selected=data["coreset/selected"],
                weights=data["coreset/weights"],
                representativity=float("nan"),
                gains=[],
                selection_seconds=0.0,
                assignment=data["coreset/assignment"],
            )

    encoder = GCN(
        in_features=in_features,
        hidden_features=config.hidden_dim,
        out_features=config.embedding_dim,
        num_layers=config.num_layers,
        seed=config.seed,
    )
    encoder.load_state_dict(state)

    model = E2GCL(config)
    # Reassemble the minimal fitted state: the facade only needs the result
    # record (encoder + coreset); embed() must then receive an explicit graph.
    model.result = TrainResult(encoder=encoder, coreset=coreset)
    return model
