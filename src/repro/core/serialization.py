"""Model serialization: frozen encoder artifacts plus the legacy v1 format.

Two layers live here:

* :class:`EncoderArtifact` / :func:`export_encoder` — the *method-agnostic*
  frozen-encoder surface.  ``export_encoder`` accepts any v2 engine
  checkpoint (every registered method) or a legacy v1 E2GCL file and
  returns an artifact that can ``embed`` a graph: a rebuilt GCN for the
  parametric methods (dimensions are inferred from the checkpointed weight
  shapes, so no config is needed), or a transductive lookup table for the
  walk-based baselines.  Artifacts round-trip losslessly through
  :func:`save_artifact` / :func:`load_artifact` (crash-safe writes, SHA-256
  digest validated on load) — this is what ``repro.serve`` consumes.

* ``save_model`` / ``load_model`` — the legacy E2GCL-only facade format
  (v1: encoder parameters + config + coreset, no resume).  **Deprecated**:
  it predates the engine and only understands the E2GCL facade; new code
  should write v2 engine checkpoints (:mod:`repro.engine.checkpoint`) and
  rehydrate through :func:`export_encoder`, which reads both formats.  The
  v1 reader/writer stays as a shim for published E2GCL model files and
  warns on use.
"""

from __future__ import annotations

import dataclasses
import json
import re
import warnings
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..engine import (
    CheckpointCorruptError,
    atomic_savez,
    pack_json,
    payload_digest,
    read_checkpoint,
    unpack_json,
)
from ..graphs import Graph
from ..nn import GCN
from .config import E2GCLConfig
from .model import E2GCL
from .node_selector import CoresetResult
from .trainer import TrainResult

_FORMAT_VERSION = 1
_ARTIFACT_VERSION = 1

_CONV_WEIGHT = re.compile(r"^conv_(\d+)\.weight$")


# ----------------------------------------------------------------------
# Method-agnostic frozen-encoder artifacts
# ----------------------------------------------------------------------
@dataclass
class EncoderArtifact:
    """A frozen, inference-only model extracted from a checkpoint.

    Two kinds exist:

    * ``"gcn"`` — a parametric graph encoder.  Inductive: ``embed`` works
      on any graph with the matching feature dimension, including graphs
      the model never saw (this is what the serving stack's ego-subgraph
      path relies on).
    * ``"table"`` — a transductive node-embedding lookup (DeepWalk /
      Node2Vec).  ``embed`` only answers for the graph the table was fit
      on, identified by its node count.

    ``fingerprint`` is a SHA-256 digest over the artifact's arrays, so two
    artifacts with the same fingerprint embed identically.
    """

    kind: str
    step_class: str
    fingerprint: str
    encoder: Optional[GCN] = None
    table: Optional[np.ndarray] = None
    fitted_nodes: Optional[int] = None

    @property
    def inductive(self) -> bool:
        """Whether the artifact can embed nodes/graphs it was not fit on."""
        return self.kind == "gcn"

    @property
    def embedding_dim(self) -> int:
        if self.kind == "gcn":
            return self.encoder.layers[-1].weight.shape[1]
        return self.table.shape[1]

    @property
    def in_features(self) -> Optional[int]:
        """Expected feature dimension (``None`` for table artifacts)."""
        if self.kind == "gcn":
            return self.encoder.layers[0].weight.shape[0]
        return None

    @property
    def num_layers(self) -> Optional[int]:
        """Message-passing depth — the ego radius serving must extract."""
        if self.kind == "gcn":
            return self.encoder.num_layers
        return None

    # ------------------------------------------------------------------
    def embed(self, graph: Graph) -> np.ndarray:
        """Frozen node representations for ``graph``."""
        if self.kind == "gcn":
            if graph.num_features != self.in_features:
                raise ValueError(
                    f"artifact expects {self.in_features} features, "
                    f"graph {graph.name!r} has {graph.num_features}"
                )
            return self.encoder.embed(graph)
        if graph.num_nodes != self.fitted_nodes:
            raise ValueError(
                f"table artifact is transductive: fit on {self.fitted_nodes} "
                f"nodes, graph {graph.name!r} has {graph.num_nodes}"
            )
        return self.table

    @classmethod
    def from_encoder(cls, encoder: GCN, step_class: str = "adhoc") -> "EncoderArtifact":
        """Wrap a live GCN (tests / in-memory serving without a checkpoint)."""
        return cls(
            kind="gcn",
            step_class=step_class,
            fingerprint=payload_digest(encoder.state_dict()),
            encoder=encoder,
        )


def _gcn_from_state(state: Dict[str, np.ndarray]) -> GCN:
    """Rebuild a GCN purely from its ``state_dict`` arrays.

    Dimensions are inferred from the weight shapes (``conv_0.weight`` is
    ``(in, hidden)``, the last layer's weight gives the output dim), so a
    checkpoint needs no config to be rehydrated.
    """
    indices = sorted(
        int(m.group(1)) for key in state if (m := _CONV_WEIGHT.match(key))
    )
    if not indices or indices != list(range(len(indices))):
        raise ValueError(
            f"cannot rebuild a GCN: conv layers {indices} are not contiguous "
            f"from 0 (keys: {sorted(state)})"
        )
    num_layers = len(indices)
    first = state["conv_0.weight"]
    last = state[f"conv_{num_layers - 1}.weight"]
    out_features = last.shape[1]
    hidden = first.shape[1] if num_layers > 1 else out_features
    gcn = GCN(
        in_features=first.shape[0],
        hidden_features=hidden,
        out_features=out_features,
        num_layers=num_layers,
        seed=0,
    )
    gcn.load_state_dict(state)
    return gcn


def export_encoder(
    source: Union[str, Path, Tuple[dict, Dict[str, np.ndarray]]],
) -> EncoderArtifact:
    """Extract a frozen :class:`EncoderArtifact` from any checkpoint.

    ``source`` is a v2 engine checkpoint path (any registered method), a
    legacy v1 E2GCL facade file, or an already-loaded ``(meta, arrays)``
    pair from :func:`repro.engine.read_checkpoint`.  Dispatch rules:

    * arrays with an ``encoder.*`` component → ``"gcn"`` artifact (GRACE,
      GCA, MVGRL, BGRL, AFGRL, DGI, GAE/VGAE, GraphCL, ADGCL, E2GCL);
    * arrays with an ``embeddings`` table → ``"table"`` artifact
      (DeepWalk, Node2Vec; ``fitted_nodes`` comes from the step's scalars);
    * v1 files (``param/`` keys) → ``"gcn"`` via the stored config.

    Raises :class:`~repro.engine.CheckpointCorruptError` for unreadable or
    digest-invalid files and ``ValueError`` when no encoder-like component
    exists in the checkpoint.
    """
    if isinstance(source, tuple):
        meta, arrays = source
    else:
        path = Path(source)
        try:
            with np.load(path, allow_pickle=False) as data:
                files = set(data.files)
        except (OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
            raise CheckpointCorruptError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        if any(key.startswith("param/") for key in files) and "meta/engine" not in files:
            return _export_v1(path)
        meta, arrays = read_checkpoint(path)

    step_class = str(meta.get("step_class", "unknown"))
    encoder_state = {
        key[len("encoder."):]: np.asarray(value)
        for key, value in arrays.items()
        if key.startswith("encoder.")
    }
    if encoder_state:
        return EncoderArtifact(
            kind="gcn",
            step_class=step_class,
            fingerprint=payload_digest(encoder_state),
            encoder=_gcn_from_state(encoder_state),
        )
    if "embeddings" in arrays:
        table = np.asarray(arrays["embeddings"], dtype=np.float64)
        step_meta = meta.get("step", {}) or {}
        fitted = step_meta.get("fitted_nodes")
        return EncoderArtifact(
            kind="table",
            step_class=step_class,
            fingerprint=payload_digest({"embeddings": table}),
            table=table,
            fitted_nodes=int(fitted) if fitted is not None else table.shape[0],
        )
    raise ValueError(
        f"checkpoint written by step {step_class!r} has no exportable "
        f"encoder (state keys: {sorted(arrays)})"
    )


def _export_v1(path: Path) -> EncoderArtifact:
    """Legacy v1 facade file → GCN artifact (shim over :func:`load_model`)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        model = load_model(path)
    encoder = model.result.encoder
    return EncoderArtifact(
        kind="gcn",
        step_class="E2GCLTrainer",
        fingerprint=payload_digest(encoder.state_dict()),
        encoder=encoder,
    )


# ----------------------------------------------------------------------
# Artifact round-trip (what the serving stack persists)
# ----------------------------------------------------------------------
def save_artifact(artifact: EncoderArtifact, path: Union[str, Path]) -> Path:
    """Persist an artifact crash-safely (``.npz`` + SHA-256 digest)."""
    payload: Dict[str, np.ndarray] = {}
    if artifact.kind == "gcn":
        for key, value in artifact.encoder.state_dict().items():
            payload[f"param/{key}"] = value
    elif artifact.kind == "table":
        payload["table"] = np.asarray(artifact.table)
    else:
        raise ValueError(f"unknown artifact kind {artifact.kind!r}")
    payload["meta/artifact"] = pack_json({
        "version": _ARTIFACT_VERSION,
        "kind": artifact.kind,
        "step_class": artifact.step_class,
        "fingerprint": artifact.fingerprint,
        "fitted_nodes": artifact.fitted_nodes,
    })
    payload["meta/digest"] = np.frombuffer(
        payload_digest(payload).encode(), dtype=np.uint8
    )
    return atomic_savez(path, payload)


def load_artifact(path: Union[str, Path]) -> EncoderArtifact:
    """Inverse of :func:`save_artifact`; digest-validated.

    Raises :class:`~repro.engine.CheckpointCorruptError` on truncated or
    bit-flipped files so a half-written artifact can never serve garbage.
    """
    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            contents = {key: data[key] for key in data.files}
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        raise CheckpointCorruptError(f"cannot read artifact {path}: {exc}") from exc
    if "meta/digest" not in contents:
        raise CheckpointCorruptError(f"artifact {path} has no integrity digest")
    stored = bytes(contents["meta/digest"]).decode(errors="replace")
    actual = payload_digest({k: v for k, v in contents.items() if k != "meta/digest"})
    if stored != actual:
        raise CheckpointCorruptError(
            f"artifact {path} failed digest validation "
            f"(stored {stored[:12]}..., recomputed {actual[:12]}...)"
        )
    meta = unpack_json(contents["meta/artifact"])
    if int(meta["version"]) != _ARTIFACT_VERSION:
        raise ValueError(f"unsupported artifact version {meta['version']}")
    if meta["kind"] == "gcn":
        state = {
            key[len("param/"):]: value
            for key, value in contents.items()
            if key.startswith("param/")
        }
        return EncoderArtifact(
            kind="gcn",
            step_class=meta["step_class"],
            fingerprint=meta["fingerprint"],
            encoder=_gcn_from_state(state),
        )
    if meta["kind"] == "table":
        fitted = meta.get("fitted_nodes")
        return EncoderArtifact(
            kind="table",
            step_class=meta["step_class"],
            fingerprint=meta["fingerprint"],
            table=np.asarray(contents["table"], dtype=np.float64),
            fitted_nodes=int(fitted) if fitted is not None else None,
        )
    raise ValueError(f"unknown artifact kind {meta['kind']!r} in {path}")


# ----------------------------------------------------------------------
# Legacy v1 facade format (deprecated shim)
# ----------------------------------------------------------------------
def _warn_v1(api: str) -> None:
    warnings.warn(
        f"{api} uses the legacy E2GCL-only v1 format; write v2 engine "
        "checkpoints (repro.engine) and rehydrate with export_encoder "
        "instead — export_encoder still reads v1 files",
        DeprecationWarning,
        stacklevel=3,
    )


def save_model(model: E2GCL, path: Union[str, Path]) -> Path:
    """Serialize a fitted :class:`E2GCL` to ``path`` (``.npz``, v1).

    .. deprecated:: engine v2 checkpoints + :func:`export_encoder` replace
       this E2GCL-only path; kept as a shim for published model files.
    """
    _warn_v1("save_model")
    if model.result is None:
        raise RuntimeError("cannot save an unfitted model; call fit() first")
    path = Path(path)
    payload = {
        f"param/{name}": array
        for name, array in model.result.encoder.state_dict().items()
    }
    payload["meta/config"] = pack_json(dataclasses.asdict(model.config))
    payload["meta/version"] = np.array([_FORMAT_VERSION])
    payload["meta/in_features"] = np.array([model.result.encoder.layers[0].weight.shape[0]])
    coreset = model.result.coreset
    if coreset is not None:
        payload["coreset/selected"] = coreset.selected
        payload["coreset/weights"] = coreset.weights
        payload["coreset/assignment"] = coreset.assignment
    # Crash-safe like the engine's v2 writer: a kill mid-save can never
    # leave a truncated file under the model's name.
    return atomic_savez(path, payload)


def load_model(path: Union[str, Path]) -> E2GCL:
    """Rebuild a fitted :class:`E2GCL` from a v1 checkpoint.

    The returned model supports :meth:`E2GCL.embed` on any graph with the
    same feature dimension; ``fit`` history and timings are not preserved.

    .. deprecated:: prefer :func:`export_encoder`, which reads both the v1
       facade files and v2 engine checkpoints for every registered method.
    """
    _warn_v1("load_model")
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["meta/version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version {version}")
        config = E2GCLConfig(**json.loads(bytes(data["meta/config"]).decode()))
        in_features = int(data["meta/in_features"][0])
        state = {
            key[len("param/"):]: data[key]
            for key in data.files if key.startswith("param/")
        }
        coreset = None
        if "coreset/selected" in data.files:
            coreset = CoresetResult(
                selected=data["coreset/selected"],
                weights=data["coreset/weights"],
                representativity=float("nan"),
                gains=[],
                selection_seconds=0.0,
                assignment=data["coreset/assignment"],
            )

    encoder = GCN(
        in_features=in_features,
        hidden_features=config.hidden_dim,
        out_features=config.embedding_dim,
        num_layers=config.num_layers,
        seed=config.seed,
    )
    encoder.load_state_dict(state)

    model = E2GCL(config)
    # Reassemble the minimal fitted state: the facade only needs the result
    # record (encoder + coreset); embed() must then receive an explicit graph.
    model.result = TrainResult(encoder=encoder, coreset=coreset)
    return model
