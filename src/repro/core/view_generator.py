"""Alg. 3 — edge-aware and feature-aware positive view generation.

Two implementations with the same sampling semantics:

* :func:`generate_node_view` — the paper's per-node procedure, verbatim:
  starting from the anchor ``v``, sample ``τ·|N_u|`` neighbors for every
  frontier node ``u`` from its candidate set ``N_u^1 ∪ N_u^2`` with
  probability proportional to the edge score, hop by hop for ``L`` hops,
  then perturb features by Eq. 16.  Used for analysis, tests, and the
  faithful small-graph path.

* :func:`generate_global_view` — the batched variant used for training:
  every node's neighborhood is sampled once with the same per-node rule and
  the union forms one augmented graph, so a full-graph GCN forward computes
  all anchors' view representations in one shot.  An anchor's ``L``-hop ego
  network inside the global sample is distributed identically to the
  per-node construction (each ``u``'s outgoing sample uses the same
  distribution), which is what makes full-batch training equivalent.

Because two views are drawn independently (with their own τ̂/τ̃, η̂/η̃), the
pair is diverse; because sampling favors high-score edges and low-score
features, each view preserves the anchor's important locality — the two
requirements of Def. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..graphs import Graph, adjacency_from_edges
from ..perf import record
from .augmentations import perturb_features
from .scores import EdgeScoreTable, FeatureScoreTable


@dataclass
class NodeView:
    """A positive view ``Ĝ_v`` for one anchor node.

    Attributes
    ----------
    graph:
        The view as a standalone graph (re-indexed).
    center:
        The anchor's index inside ``graph``.
    node_ids:
        Original ids of the view's nodes (``node_ids[center] == anchor``).
    """

    graph: Graph
    center: int
    node_ids: np.ndarray


def _sample_count(tau: float, base_degree: float, num_candidates: int) -> int:
    """``τ·|N_u|`` rounded, clamped into [0, |candidates|]; at least one
    neighbor is kept when the node has any candidates and τ > 0, so views
    never strand the anchor."""
    if num_candidates == 0 or tau <= 0:
        return 0
    want = int(round(tau * base_degree))
    return int(np.clip(max(want, 1), 1, num_candidates))


def _sample_counts(tau: float, base_degree: np.ndarray, num_candidates: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_sample_count` over all nodes at once.

    Uses ``np.round`` (banker's rounding), matching Python's ``round`` in the
    scalar version, so both paths request identical counts everywhere.
    """
    if tau <= 0:
        return np.zeros(num_candidates.shape[0], dtype=np.int64)
    want = np.round(tau * base_degree).astype(np.int64)
    counts = np.clip(np.maximum(want, 1), 1, np.maximum(num_candidates, 1))
    counts[num_candidates == 0] = 0
    return counts


def _sample_neighbors(
    table: EdgeScoreTable, node: int, tau: float, rng: np.random.Generator
) -> np.ndarray:
    cands = table.candidates[node]
    count = _sample_count(tau, float(table.base_degree[node]), cands.size)
    if count == 0:
        return np.empty(0, dtype=np.int64)
    if count >= cands.size:
        return cands
    probs = table.probabilities[node]
    return rng.choice(cands, size=count, replace=False, p=probs)


def generate_node_view(
    graph: Graph,
    anchor: int,
    hops: int,
    tau: float,
    eta: float,
    edge_table: EdgeScoreTable,
    feature_table: FeatureScoreTable,
    rng: np.random.Generator,
    perturb_magnitude: float = 1.0,
) -> NodeView:
    """Run Alg. 3 (lines 3-16) for a single anchor node."""
    if not 0 <= anchor < graph.num_nodes:
        raise ValueError(f"anchor {anchor} out of range")
    if hops < 0:
        raise ValueError("hops must be non-negative")

    nodes = {int(anchor)}
    edges: List[Tuple[int, int]] = []
    frontier = [int(anchor)]
    for _ in range(hops):
        next_frontier: List[int] = []
        for u in frontier:
            sampled = _sample_neighbors(edge_table, u, tau, rng)
            for u1 in sampled:
                u1 = int(u1)
                edges.append((min(u, u1), max(u, u1)))
                if u1 not in nodes:
                    nodes.add(u1)
                    next_frontier.append(u1)
        frontier = next_frontier
        if not frontier:
            break

    node_ids = np.asarray(sorted(nodes), dtype=np.int64)
    local = {int(g): i for i, g in enumerate(node_ids)}
    local_edges = np.asarray(
        [(local[a], local[b]) for a, b in set(edges)], dtype=np.int64
    ).reshape(-1, 2)
    adjacency = adjacency_from_edges(node_ids.size, local_edges)
    features = graph.features[node_ids].copy()
    view = Graph(adjacency, features,
                 None if graph.labels is None else graph.labels[node_ids],
                 name=f"{graph.name}[view:{anchor}]")
    prob = feature_table.perturb_probability(eta)[node_ids]
    view = perturb_features(view, prob, rng, magnitude=perturb_magnitude)
    return NodeView(graph=view, center=local[int(anchor)], node_ids=node_ids)


def generate_node_view_pair(
    graph: Graph,
    anchor: int,
    hops: int,
    edge_table: EdgeScoreTable,
    feature_table: FeatureScoreTable,
    rng: np.random.Generator,
    tau_hat: float = 1.0,
    tau_tilde: float = 1.0,
    eta_hat: float = 0.4,
    eta_tilde: float = 0.4,
) -> Tuple[NodeView, NodeView]:
    """The diverse positive pair ``(Ĝ_v, G̃_v)`` of Def. 2."""
    hat = generate_node_view(graph, anchor, hops, tau_hat, eta_hat, edge_table, feature_table, rng)
    tilde = generate_node_view(graph, anchor, hops, tau_tilde, eta_tilde, edge_table, feature_table, rng)
    return hat, tilde


def _batched_weighted_sample(
    edge_table: EdgeScoreTable, tau: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample every node's neighbors in one vectorized pass.

    Weighted sampling without replacement via the exponential-race trick:
    draw ``key = Exp(1) / p`` for every candidate at once, then keep each
    node's ``m_u`` smallest keys.  Equivalent in distribution to sequential
    probability-proportional draws (:func:`_sequential_weighted_sample`),
    but with zero Python-level per-node work.

    The segmented top-``m_u`` is resolved by batching the contended segments
    into power-of-two size classes and running ``argpartition`` on one padded
    ``(rows, width)`` matrix per class, then masking per-row ranks against
    ``m_u``.  That keeps the kernel ``O(total)`` (a global sort over
    ``(segment, key)`` costs ``O(total log total)`` and loses to the padded
    partition by ~8x on dense-candidate graphs) while per-class overhead is
    ``O(log max_width)`` Python steps, independent of node count.

    Returns flat ``(sources, targets)`` arrays of sampled directed picks.
    """
    total = edge_table.num_entries
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    counts = edge_table.counts
    want = _sample_counts(tau, edge_table.base_degree, counts)
    if not want.any():
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)

    keys = rng.exponential(size=total) / np.maximum(edge_table.probs, 1e-300)
    indptr = edge_table.indptr
    picked_parts: List[np.ndarray] = []

    # Saturated segments take their whole candidate set — no race needed.
    full = want >= counts
    if full.any():
        picked_parts.append(np.flatnonzero(np.repeat(full, counts)))

    contended = np.flatnonzero((want > 0) & (want < counts))
    if contended.size:
        widths = counts[contended]
        classes = np.ceil(np.log2(widths)).astype(np.int64)  # widths >= 2 here
        for c in np.unique(classes):
            rows = contended[classes == c]
            width = 1 << int(c)
            base = indptr[rows][:, None]
            col = np.arange(width, dtype=np.int64)[None, :]
            padded = keys[np.minimum(base + col, total - 1)]
            padded[col >= counts[rows][:, None]] = np.inf
            # want < counts <= width, so k_max <= width - 1: the partition
            # index is always valid and pads never reach the kept block.
            k_max = int(want[rows].max())
            smallest = np.argpartition(padded, k_max - 1, axis=1)[:, :k_max]
            block = np.take_along_axis(padded, smallest, axis=1)
            by_key = np.take_along_axis(smallest, np.argsort(block, axis=1), axis=1)
            rank_ok = np.arange(k_max, dtype=np.int64)[None, :] < want[rows][:, None]
            picked_parts.append((base + by_key)[rank_ok])

    picked = np.concatenate(picked_parts)
    return edge_table.segment_ids()[picked], edge_table.indices[picked]


def _sequential_weighted_sample(
    edge_table: EdgeScoreTable, tau: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node reference sampler: sequential ``rng.choice(p=...)`` draws.

    Semantically the ground truth for :func:`_batched_weighted_sample` —
    the distribution-equivalence tests compare the two — and the baseline
    the micro-benchmarks measure speedups against.  Never used in training.
    """
    sources: List[np.ndarray] = []
    targets: List[np.ndarray] = []
    for u in range(edge_table.num_nodes):
        cands = edge_table.candidates[u]
        count = _sample_count(tau, float(edge_table.base_degree[u]), cands.size)
        if count == 0:
            continue
        if count >= cands.size:
            picked = cands
        else:
            picked = rng.choice(cands, size=count, replace=False, p=edge_table.probabilities[u])
        sources.append(np.full(picked.size, u, dtype=np.int64))
        targets.append(picked)
    if not sources:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    return np.concatenate(sources), np.concatenate(targets)


def generate_global_view(
    graph: Graph,
    tau: float,
    eta: float,
    edge_table: EdgeScoreTable,
    feature_table: FeatureScoreTable,
    rng: np.random.Generator,
    perturb_magnitude: float = 1.0,
) -> Graph:
    """Batched Alg. 3: one augmented graph whose ego networks are the views."""
    with record("view_generator.generate_global_view"):
        sources, targets = _batched_weighted_sample(edge_table, tau, rng)
        pairs = np.stack([np.minimum(sources, targets), np.maximum(sources, targets)], axis=1) \
            if sources.size else np.empty((0, 2), dtype=np.int64)
        adjacency = adjacency_from_edges(graph.num_nodes, pairs)
        view = Graph(adjacency, graph.features.copy(), graph.labels, name=f"{graph.name}[view]")
        prob = feature_table.perturb_probability(eta)
        return perturb_features(view, prob, rng, magnitude=perturb_magnitude)


def generate_global_view_pair(
    graph: Graph,
    edge_table: EdgeScoreTable,
    feature_table: FeatureScoreTable,
    rng: np.random.Generator,
    tau_hat: float = 1.0,
    tau_tilde: float = 1.0,
    eta_hat: float = 0.4,
    eta_tilde: float = 0.4,
) -> Tuple[Graph, Graph]:
    """Two independently sampled global views (training-time positive pair)."""
    hat = generate_global_view(graph, tau_hat, eta_hat, edge_table, feature_table, rng)
    tilde = generate_global_view(graph, tau_tilde, eta_tilde, edge_table, feature_table, rng)
    return hat, tilde
