"""The cluster-based coreset objective of Def. 1 (Eq. 13/14).

Given the propagated features ``R = A_n^L X`` and a KMeans partition
``C = {C_i}``, the representativity cost of a selected set ``V_s`` is::

    RS(V_s) = Σ_i Σ_{v ∈ C_i} min( min_{u1 ∈ C_{V_s,i}} ||R[v] − R[u1]||,
                                    min_{u2 ∈ V_s \\ C_i} (||c_i − R[u2]|| + d_i^max) )

(lower is better).  The greedy selector needs *marginal gains*
``ΔRS(v | V_s) = RS(V_s) − RS(V_s ∪ {v})`` for hundreds of candidates per
round, so this module maintains the objective incrementally:

* ``eff[v]`` — each node's current covering cost under ``V_s``;
* per-cluster sorted copies of ``eff`` with prefix sums, so the cross-cluster
  relaxation term of a candidate is evaluated in ``O(log |C_i|)`` per cluster
  instead of ``O(|C_i|)``.

A candidate's gain is then ``O(|C_j| + n_c log n)`` where ``j`` is its own
cluster — matching the complexity budget in the paper's Sec. III-C.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .kmeans import KMeansResult, kmeans


@dataclass
class ClusterModel:
    """Clustered view of the propagated-feature space.

    Attributes
    ----------
    r:
        ``(n, d)`` propagated features (``R``).
    assignments:
        ``(n,)`` cluster index per node.
    centers:
        ``(n_c, d)`` cluster centers.
    members:
        Per-cluster node-index arrays.
    d_max:
        ``d_i^max`` — max distance between a cluster's nodes and its center.
    center_distances:
        ``(n, n_c)`` distances from every node to every center (used for the
        cross-cluster relaxation and the unrepresented-cost cap).
    """

    r: np.ndarray
    assignments: np.ndarray
    centers: np.ndarray
    members: List[np.ndarray]
    d_max: np.ndarray
    center_distances: np.ndarray

    @property
    def num_clusters(self) -> int:
        return self.centers.shape[0]

    @property
    def num_nodes(self) -> int:
        return self.r.shape[0]


def build_cluster_model(
    r: np.ndarray,
    num_clusters: int,
    rng: Optional[np.random.Generator] = None,
    clustering: Optional[KMeansResult] = None,
) -> ClusterModel:
    """Cluster ``R`` (Alg. 2 line 2) and precompute the Def. 1 quantities."""
    r = np.asarray(r, dtype=np.float64)
    if clustering is None:
        clustering = kmeans(r, num_clusters, rng=rng)
    assignments = clustering.assignments
    centers = clustering.centers
    k = centers.shape[0]
    members = [np.flatnonzero(assignments == i) for i in range(k)]

    # ||R[v] - c_i|| for all v, i (chunked matmul keeps memory bounded).
    center_sq = (centers ** 2).sum(axis=1)
    node_sq = (r ** 2).sum(axis=1)
    cross = r @ centers.T
    dist_sq = node_sq[:, None] - 2.0 * cross + center_sq[None, :]
    np.maximum(dist_sq, 0.0, out=dist_sq)
    center_distances = np.sqrt(dist_sq)

    d_max = np.zeros(k)
    for i, mem in enumerate(members):
        if mem.size:
            d_max[i] = center_distances[mem, i].max()

    return ClusterModel(
        r=r,
        assignments=assignments,
        centers=centers,
        members=members,
        d_max=d_max,
        center_distances=center_distances,
    )


class _ClusterCostMatrix:
    """Per-cluster ``eff`` values in one padded matrix.

    Supports the *batched* query ``gains(t) = [Σ_{v ∈ C_i} max(0, eff[v] − t_i)]_i``
    — how much each cluster's covering cost would drop if relaxation
    threshold ``t_i`` became available to it — as a single vectorized
    ``O(n)`` expression.  (An earlier sorted-prefix-sum variant was
    ``O(log |C_i|)`` per cluster but paid a python-level call per cluster
    per candidate, which dominated selection time on larger graphs.)

    Each node's fixed slot ``(row, column) = (cluster, rank-in-cluster)`` is
    precomputed, so a greedy ``add`` scatters only the entries whose ``eff``
    actually dropped instead of refilling the whole padded matrix.
    """

    _PAD = -np.inf  # pads contribute max(0, -inf - t) = 0

    def __init__(self, eff: np.ndarray, members: List[np.ndarray]) -> None:
        self._members = members
        width = max((m.size for m in members), default=0)
        self._matrix = np.full((len(members), max(width, 1)), self._PAD)
        self._row = np.zeros(eff.shape[0], dtype=np.int64)
        self._col = np.zeros(eff.shape[0], dtype=np.int64)
        for i, mem in enumerate(members):
            self._row[mem] = i
            self._col[mem] = np.arange(mem.size)
        self.rebuild(eff)

    def rebuild(self, eff: np.ndarray) -> None:
        self._matrix.fill(self._PAD)
        for i, mem in enumerate(self._members):
            if mem.size:
                self._matrix[i, :mem.size] = eff[mem]

    def update(self, nodes: np.ndarray, values: np.ndarray) -> None:
        """Scatter new ``eff`` values for the given nodes into their slots."""
        self._matrix[self._row[nodes], self._col[nodes]] = values

    def gains(self, thresholds: np.ndarray) -> np.ndarray:
        """Per-cluster gain for a vector of thresholds (one per cluster)."""
        diff = self._matrix - thresholds[:, None]
        np.maximum(diff, 0.0, out=diff)
        return diff.sum(axis=1)


class RepresentativityObjective:
    """Incremental evaluator of ``RS(V_s)`` supporting greedy selection.

    Usage::

        obj = RepresentativityObjective(model)
        gain = obj.marginal_gain(v)     # ΔRS(v | V_s), does not mutate
        obj.add(v)                      # commit v into V_s
        obj.cost()                      # current RS(V_s)

    ``RS(∅)`` is made finite by capping every node's covering cost at a
    constant strictly larger than any achievable relaxed distance, so the
    first selection always has positive gain.
    """

    #: Default ceiling on the transient ``(chunk, n_c, width)`` gain tensor.
    DEFAULT_GAIN_BUDGET_BYTES = 256 * 2 ** 20

    def __init__(self, model: ClusterModel, gain_budget_bytes: Optional[int] = None) -> None:
        self.model = model
        # Cap: any selected node u gives cluster i at most
        # ||c_i - R[u]|| + d_i^max <= max center distance + max d_i, so this
        # constant dominates every reachable cost.
        self.unrepresented_cost = float(
            model.center_distances.max(initial=0.0) + model.d_max.max(initial=0.0) + 1.0
        )
        self.eff = np.full(model.num_nodes, self.unrepresented_cost)
        self.selected: List[int] = []
        self._costs = _ClusterCostMatrix(self.eff, model.members)
        self.gain_budget_bytes = int(
            gain_budget_bytes if gain_budget_bytes is not None
            else self.DEFAULT_GAIN_BUDGET_BYTES
        )
        if self.gain_budget_bytes <= 0:
            raise ValueError("gain_budget_bytes must be positive")

    # ------------------------------------------------------------------
    def cost(self) -> float:
        """Current value of the Def. 1 objective (plus the finite cap)."""
        return float(self.eff.sum())

    def _candidate_terms(self, candidate: int):
        """Intra-cluster distances and cross-cluster thresholds for a node."""
        model = self.model
        j = int(model.assignments[candidate])
        mem_j = model.members[j]
        diff = model.r[mem_j] - model.r[candidate]
        intra = np.sqrt((diff ** 2).sum(axis=1))
        cross = model.center_distances[candidate] + model.d_max  # per-cluster
        return j, mem_j, intra, cross

    def marginal_gain(self, candidate: int) -> float:
        """``RS(V_s) − RS(V_s ∪ {candidate})`` without mutating state."""
        j, mem_j, intra, cross = self._candidate_terms(candidate)
        gain = float(np.maximum(self.eff[mem_j] - intra, 0.0).sum())
        cross_gains = self._costs.gains(cross)
        gain += float(cross_gains.sum() - cross_gains[j])  # own cluster uses intra
        return gain

    def marginal_gains(self, candidates: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`marginal_gain` over a candidate batch.

        One greedy round of Alg. 2 evaluates ``n_s`` candidates; batching
        them turns per-candidate python overhead into three numpy passes
        (cross-cluster tensor, per-cluster intra distances, row reductions).
        The transient ``(chunk, n_c, width)`` tensor is bounded by
        ``gain_budget_bytes``: candidate batches larger than the budget are
        processed in slices, so selection never allocates gigabytes on
        large graphs regardless of ``n_s``.
        """
        candidates = np.asarray(candidates, dtype=np.int64)
        if candidates.size == 0:
            return np.zeros(0)
        per_candidate = max(self._costs._matrix.size * 8, 1)
        chunk = max(1, self.gain_budget_bytes // per_candidate)
        if candidates.size <= chunk:
            return self._marginal_gains_block(candidates)
        return np.concatenate([
            self._marginal_gains_block(candidates[start:start + chunk])
            for start in range(0, candidates.size, chunk)
        ])

    def _marginal_gains_block(self, candidates: np.ndarray) -> np.ndarray:
        model = self.model
        m = candidates.size

        # Cross-cluster term for every candidate at once: (m, n_c, width).
        thresholds = model.center_distances[candidates] + model.d_max[None, :]
        diff = self._costs._matrix[None, :, :] - thresholds[:, :, None]
        np.maximum(diff, 0.0, out=diff)
        per_cluster = diff.sum(axis=2)                       # (m, n_c)
        own = model.assignments[candidates]
        gains = per_cluster.sum(axis=1) - per_cluster[np.arange(m), own]

        # Intra term, grouped by the candidates' own clusters.
        for j in np.unique(own):
            in_j = np.flatnonzero(own == j)
            mem = model.members[j]
            if mem.size == 0:
                continue
            cand_r = model.r[candidates[in_j]]               # (c_j, d)
            d = (
                (cand_r ** 2).sum(axis=1)[:, None]
                - 2.0 * cand_r @ model.r[mem].T
                + (model.r[mem] ** 2).sum(axis=1)[None, :]
            )
            np.maximum(d, 0.0, out=d)
            np.sqrt(d, out=d)
            gains[in_j] += np.maximum(self.eff[mem][None, :] - d, 0.0).sum(axis=1)
        return gains

    def add(self, candidate: int) -> float:
        """Commit ``candidate`` into ``V_s``; returns the realized gain.

        ``eff`` only ever decreases, so the padded cost matrix is patched in
        place for exactly the nodes whose covering cost improved — ``O(n)``
        total instead of an ``O(n_c · width)`` rebuild per greedy round.
        """
        j, mem_j, intra, cross = self._candidate_terms(candidate)
        before = self.cost()
        thresholds = cross[self.model.assignments].copy()
        thresholds[mem_j] = np.inf  # own cluster uses the exact distances
        new_eff = np.minimum(self.eff, thresholds)
        new_eff[mem_j] = np.minimum(new_eff[mem_j], intra)
        changed = np.flatnonzero(new_eff < self.eff)
        self.eff = new_eff
        self._costs.update(changed, new_eff[changed])
        self.selected.append(int(candidate))
        return before - self.cost()


def representativity_cost(model: ClusterModel, selected) -> float:
    """Direct (non-incremental) evaluation of Eq. 14; used to cross-check the
    incremental implementation in tests.

    Nodes not covered by any term keep the same finite cap as
    :class:`RepresentativityObjective` so both evaluations agree exactly.
    """
    selected = np.asarray(sorted(set(int(v) for v in selected)), dtype=np.int64)
    cap = float(model.center_distances.max(initial=0.0) + model.d_max.max(initial=0.0) + 1.0)
    total = 0.0
    for i, mem in enumerate(model.members):
        if mem.size == 0:
            continue
        in_cluster = selected[model.assignments[selected] == i]
        out_cluster = selected[model.assignments[selected] != i]
        if out_cluster.size:
            relax = float((model.center_distances[out_cluster, i] + model.d_max[i]).min())
        else:
            relax = cap
        if in_cluster.size:
            diff = model.r[mem][:, None, :] - model.r[in_cluster][None, :, :]
            intra = np.sqrt((diff ** 2).sum(axis=2)).min(axis=1)
        else:
            intra = np.full(mem.size, cap)
        total += float(np.minimum(np.minimum(intra, relax), cap).sum())
    return total
