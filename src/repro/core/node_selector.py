"""Alg. 2 — the sampling-based greedy node selector.

Selects a coreset ``V_s`` of ``k`` representative nodes by maximizing
marginal representativity gain over ``n_s`` randomly sampled candidates per
round (Theorem 3 gives the ``1 − 1/e − ε`` guarantee for
``n_s = (n/k)·log(1/ε)``), then assigns each graph node to its nearest
selected node in ``R``-space to produce the weights ``λ_u`` that enter the
contrastive loss.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..graphs import Graph, propagated_features
from ..obs.tracer import emit_event
from ..perf import record
from .representativity import (
    ClusterModel,
    RepresentativityObjective,
    build_cluster_model,
    representativity_cost,
)


@dataclass
class CoresetResult:
    """Output of Alg. 2.

    Attributes
    ----------
    selected:
        ``(k,)`` node indices of the coreset ``V_s`` in selection order.
    weights:
        ``λ_u`` — how many graph nodes each selected node represents
        (nearest-neighbor counts in ``R``-space; sums to ``|V|``).
    representativity:
        Final ``RS(V_s)`` (lower = better coverage).
    gains:
        Realized marginal gain of each greedy addition (non-increasing in
        expectation; used by tests and diagnostics).
    selection_seconds:
        Wall-clock time of the full selection — the ``ST`` column of Tab. V.
    assignment:
        ``(n,)`` index into ``selected`` giving each node's representative.
    """

    selected: np.ndarray
    weights: np.ndarray
    representativity: float
    gains: List[float]
    selection_seconds: float
    assignment: np.ndarray

    @property
    def budget(self) -> int:
        return int(self.selected.shape[0])


def recommended_sample_size(num_nodes: int, budget: int, epsilon: float = 0.1) -> int:
    """Theorem 3's ``n_s = (n/k) log(1/ε)`` (rounded up, at least 1)."""
    if budget < 1:
        raise ValueError("budget must be >= 1")
    return max(1, int(np.ceil(num_nodes / budget * np.log(1.0 / epsilon))))


def _nearest_selected(r: np.ndarray, selected: np.ndarray) -> np.ndarray:
    """For every node, the index (into ``selected``) of its nearest coreset node."""
    sel_r = r[selected]
    sel_sq = (sel_r ** 2).sum(axis=1)
    n = r.shape[0]
    out = np.empty(n, dtype=np.int64)
    chunk = max(1, 8_000_000 // max(selected.size, 1))
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = r[start:stop]
        d = block @ sel_r.T
        d *= -2.0
        d += sel_sq
        out[start:stop] = d.argmin(axis=1)
    return out


def select_coreset(
    graph: Graph,
    budget: int,
    num_clusters: int = 60,
    sample_size: Optional[int] = None,
    hops: int = 2,
    rng: Optional[np.random.Generator] = None,
    r: Optional[np.ndarray] = None,
    cluster_model: Optional[ClusterModel] = None,
) -> CoresetResult:
    """Run Alg. 2 on ``graph``.

    Parameters
    ----------
    graph:
        Input graph ``G(V, A, X)``.
    budget:
        ``k`` — coreset size (clamped to ``|V|``).
    num_clusters:
        ``n_c`` for the KMeans partition.
    sample_size:
        ``n_s`` candidates per greedy round; defaults to Theorem 3's value.
    hops:
        ``L`` — propagation depth for ``R = A_n^L X`` (the GNN layer count).
    r, cluster_model:
        Optional precomputed propagated features / clustering, letting
        benchmark sweeps share the expensive pre-processing.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    rng = rng or np.random.default_rng()
    start_time = time.perf_counter()

    if r is None:
        with record("selector.propagate"):
            r = propagated_features(graph, hops)
    budget = min(budget, graph.num_nodes)
    if not np.isfinite(r).all():
        return _degree_fallback(
            graph, budget, r, None, start_time,
            reason="non-finite propagated features",
        )
    if cluster_model is None:
        with record("selector.cluster"):
            cluster_model = build_cluster_model(r, num_clusters, rng=rng)
    if budget < graph.num_nodes > 1 and np.ptp(r, axis=0).max() == 0.0:
        # Every node coincides in R-space (e.g. constant features after
        # propagation): distances carry no information and greedy would
        # pick by sampling order, which is arbitrary.
        return _degree_fallback(
            graph, budget, r, cluster_model, start_time,
            reason="all nodes coincide in R-space",
        )
    objective = RepresentativityObjective(cluster_model)
    if sample_size is None:
        sample_size = recommended_sample_size(graph.num_nodes, budget)

    unselected = np.ones(graph.num_nodes, dtype=bool)
    gains: List[float] = []
    with record("selector.greedy"):
        while len(objective.selected) < budget:
            pool = np.flatnonzero(unselected)
            if pool.size == 0:
                break
            if pool.size > sample_size:
                candidates = rng.choice(pool, size=sample_size, replace=False)
            else:
                candidates = pool
            batch_gains = objective.marginal_gains(candidates)
            if not np.isfinite(batch_gains).all():
                return _degree_fallback(
                    graph, budget, r, cluster_model, start_time,
                    reason="non-finite marginal gains",
                )
            if not gains and budget < graph.num_nodes and batch_gains.max() <= 0.0:
                # No candidate improves coverage on the very first round:
                # the objective carries no signal (e.g. all nodes coincide
                # in R-space) and greedy selection would be arbitrary.
                return _degree_fallback(
                    graph, budget, r, cluster_model, start_time,
                    reason="degenerate objective (no positive first-round gain)",
                )
            best_candidate = int(candidates[int(batch_gains.argmax())])
            gains.append(objective.add(best_candidate))
            unselected[best_candidate] = False

    selected = np.asarray(objective.selected, dtype=np.int64)
    with record("selector.assign"):
        assignment = _nearest_selected(cluster_model.r, selected)
        weights = np.bincount(assignment, minlength=selected.size).astype(np.float64)
    elapsed = time.perf_counter() - start_time
    return CoresetResult(
        selected=selected,
        weights=weights,
        representativity=objective.cost(),
        gains=gains,
        selection_seconds=elapsed,
        assignment=assignment,
    )


def _degree_fallback(
    graph: Graph,
    budget: int,
    r: np.ndarray,
    cluster_model: Optional[ClusterModel],
    start_time: float,
    reason: str,
) -> CoresetResult:
    """Degree-based coreset when the representativity objective degenerates.

    High-degree nodes are the coverage-maximizing choice when R-space
    distances carry no information (constant features, non-finite
    propagation); the result keeps Alg. 2's output contract — weights
    still sum to ``|V|`` via nearest-neighbor assignment (non-finite
    coordinates are zeroed first so the assignment stays well-defined).
    """
    warnings.warn(
        f"coreset objective degenerated ({reason}); falling back to "
        f"degree-based selection of {budget} nodes",
        RuntimeWarning,
    )
    emit_event("selector.fallback", reason=reason, budget=budget)
    order = np.lexsort((np.arange(graph.num_nodes), -graph.degrees))
    selected = np.sort(order[:budget]).astype(np.int64)
    r_safe = np.nan_to_num(r, nan=0.0, posinf=0.0, neginf=0.0)
    assignment = _nearest_selected(r_safe, selected)
    weights = np.bincount(assignment, minlength=selected.size).astype(np.float64)
    representativity = (
        representativity_cost(cluster_model, selected)
        if cluster_model is not None else float("inf")
    )
    return CoresetResult(
        selected=selected,
        weights=weights,
        representativity=float(representativity),
        gains=[],
        selection_seconds=time.perf_counter() - start_time,
        assignment=assignment,
    )
