"""E2GCL core: node selector, view generator, losses, trainer, facade."""

from .augmentations import (
    ALL_OPERATIONS,
    MINIMAL_OPERATIONS,
    add_edges,
    add_nodes,
    apply_view_plan,
    drop_edges,
    drop_features,
    drop_nodes,
    express_with_minimal_ops,
    mask_features,
    perturb_features,
    subgraph_sample,
)
from .config import E2GCLConfig, ablation_config
from .kmeans import KMeansResult, kmeans
from .losses import (
    euclidean_contrastive_loss,
    infonce_loss,
    sample_negative_indices,
)
from .model import E2GCL
from .node_selector import CoresetResult, recommended_sample_size, select_coreset
from .representativity import (
    ClusterModel,
    RepresentativityObjective,
    build_cluster_model,
    representativity_cost,
)
from .serialization import load_model, save_model
from .scores import (
    EdgeScoreTable,
    FeatureScoreTable,
    compute_edge_scores,
    compute_feature_scores,
    similarity_offset,
)
from .trainer import E2GCLTrainer, EpochRecord, TrainResult
from .view_generator import (
    NodeView,
    generate_global_view,
    generate_global_view_pair,
    generate_node_view,
    generate_node_view_pair,
)

__all__ = [
    "E2GCL",
    "E2GCLConfig",
    "ablation_config",
    "E2GCLTrainer",
    "TrainResult",
    "EpochRecord",
    "kmeans",
    "KMeansResult",
    "select_coreset",
    "CoresetResult",
    "recommended_sample_size",
    "ClusterModel",
    "RepresentativityObjective",
    "build_cluster_model",
    "representativity_cost",
    "compute_edge_scores",
    "compute_feature_scores",
    "similarity_offset",
    "save_model",
    "load_model",
    "EdgeScoreTable",
    "FeatureScoreTable",
    "generate_node_view",
    "generate_node_view_pair",
    "generate_global_view",
    "generate_global_view_pair",
    "NodeView",
    "euclidean_contrastive_loss",
    "infonce_loss",
    "sample_negative_indices",
    "drop_edges",
    "add_edges",
    "drop_nodes",
    "add_nodes",
    "subgraph_sample",
    "mask_features",
    "drop_features",
    "perturb_features",
    "express_with_minimal_ops",
    "apply_view_plan",
    "MINIMAL_OPERATIONS",
    "ALL_OPERATIONS",
]
