"""Contrastive losses — compatibility shim over :mod:`repro.contrast`.

The loss implementations moved into the composable contrast layer
(objective × mode × negative sampler); this module keeps the historical
function-style entry points alive for existing callers and checkpoints.
New code should compose :class:`repro.contrast.L2LContrast` directly.

Float behavior is unchanged: each wrapper instantiates the corresponding
objective and runs its all-pairs (or explicit-negatives) path, which is
the verbatim pre-refactor code (pinned by ``tests/contrast/``).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor
from ..contrast.negatives import sample_negative_indices  # noqa: F401  (re-export)
from ..contrast.objectives import Euclidean, InfoNCE

__all__ = ["euclidean_contrastive_loss", "infonce_loss", "sample_negative_indices"]


def euclidean_contrastive_loss(
    h_hat: Tensor,
    h_tilde: Tensor,
    negatives: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Eq. 5 over a batch of anchors (see :class:`repro.contrast.Euclidean`).

    Parameters
    ----------
    h_hat, h_tilde:
        ``(m, d)`` anchor representations from the two positive views
        (row ``i`` of both corresponds to the same anchor).
    negatives:
        ``(m, q)`` integer matrix: row ``i`` lists the *batch rows* serving
        as ``Neg_v`` for anchor ``i``.
    weights:
        Optional per-anchor λ weights; normalized internally.
    """
    return Euclidean().pair_loss(h_hat, h_tilde, negatives=negatives, weights=weights)


def infonce_loss(
    h_hat: Tensor,
    h_tilde: Tensor,
    temperature: float = 0.5,
    weights: Optional[np.ndarray] = None,
    symmetric: bool = True,
) -> Tensor:
    """GRACE-style NT-Xent (see :class:`repro.contrast.InfoNCE`).

    All-pairs denominator; ``weights`` re-weights per-anchor terms like
    Eq. 5 does.
    """
    objective = InfoNCE(temperature=temperature, symmetric=symmetric)
    return objective.pair_loss(h_hat, h_tilde, weights=weights)
