"""Contrastive losses: Eq. 5 (euclidean) and InfoNCE.

Eq. 5 per anchor ``v``::

    l(v) = ||ĥ_v − h̃_v||² − (1 / 2|Neg_v|) Σ_{h' ∈ {ĥ_v, h̃_v}} Σ_{u ∈ Neg_v} ||h'_v − h_u||²

As written the loss is unbounded below (pushing negatives to infinity keeps
decreasing it), so — as every practical implementation of Hadsell-style
losses does — the embeddings are l2-normalized inside the loss, which caps
every pairwise squared distance at 4 and makes the objective well-posed
without changing its minimizer structure.

Both losses accept per-anchor weights (the coreset λ_u of Alg. 2 line 10),
which is exactly how the coreset re-weights the gradient sum of Eq. 8.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autograd import Tensor, functional, ops


def _normalize_weights(weights, count: int) -> np.ndarray:
    if weights is None:
        return np.full(count, 1.0 / count)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape[0] != count:
        raise ValueError(f"expected {count} weights, got {weights.shape[0]}")
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    return weights / total


def euclidean_contrastive_loss(
    h_hat: Tensor,
    h_tilde: Tensor,
    negatives: np.ndarray,
    weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Eq. 5 over a batch of anchors.

    Parameters
    ----------
    h_hat, h_tilde:
        ``(m, d)`` anchor representations from the two positive views
        (row ``i`` of both corresponds to the same anchor).
    negatives:
        ``(m, q)`` integer matrix: row ``i`` lists the *batch rows* serving
        as ``Neg_v`` for anchor ``i`` (negatives are other anchors, as in
        the paper's random negative sampling).
    weights:
        Optional per-anchor λ weights; normalized internally.
    """
    negatives = np.asarray(negatives)
    m = h_hat.shape[0]
    if negatives.ndim != 2 or negatives.shape[0] != m:
        raise ValueError("negatives must be (num_anchors, num_negatives)")
    q = negatives.shape[1]
    w = _normalize_weights(weights, m)

    z_hat = ops.l2_normalize_rows(h_hat)
    z_tilde = ops.l2_normalize_rows(h_tilde)

    positive = functional.rowwise_sq_euclidean(z_hat, z_tilde)      # (m,)

    flat = negatives.reshape(-1)
    anchor_rows = np.repeat(np.arange(m), q)
    # Negatives for the hat view come from the tilde view and vice versa
    # (cross-view negatives, the standard instantiation of Neg_v).
    hat_anchor = ops.index(z_hat, anchor_rows)
    tilde_neg = ops.index(z_tilde, flat)
    term_hat = functional.rowwise_sq_euclidean(hat_anchor, tilde_neg)
    tilde_anchor = ops.index(z_tilde, anchor_rows)
    hat_neg = ops.index(z_hat, flat)
    term_tilde = functional.rowwise_sq_euclidean(tilde_anchor, hat_neg)

    neg_sum = ops.add(
        ops.reshape(term_hat, (m, q)).sum(axis=1),
        ops.reshape(term_tilde, (m, q)).sum(axis=1),
    )
    per_anchor = ops.sub(positive, ops.mul(neg_sum, 1.0 / (2.0 * q)))
    return ops.sum(ops.mul(per_anchor, w))


def infonce_loss(
    h_hat: Tensor,
    h_tilde: Tensor,
    temperature: float = 0.5,
    weights: Optional[np.ndarray] = None,
    symmetric: bool = True,
) -> Tensor:
    """GRACE-style NT-Xent: anchors attract their cross-view twin and repel
    every other node in both views.

    Used (a) as an alternative E2GCL objective and (b) by the GRACE/GCA
    baselines.  ``weights`` re-weights per-anchor terms like Eq. 5 does.
    """
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    m = h_hat.shape[0]
    w = _normalize_weights(weights, m)

    z1 = ops.l2_normalize_rows(h_hat)
    z2 = ops.l2_normalize_rows(h_tilde)

    def one_direction(a: Tensor, b: Tensor) -> Tensor:
        cross = ops.mul(ops.matmul(a, ops.transpose(b)), 1.0 / temperature)  # (m, m)
        intra = ops.mul(ops.matmul(a, ops.transpose(a)), 1.0 / temperature)  # (m, m)
        diag = np.arange(m)
        pos = ops.index(cross, (diag, diag))                                  # (m,)
        # Denominator: all cross-view pairs plus intra-view non-self pairs.
        # logsumexp over the concatenation of [cross_row, intra_row \ self].
        both = ops.concat([cross, intra], axis=1)                             # (m, 2m)
        max_row = both.data.max(axis=1, keepdims=True)
        shifted = ops.sub(both, max_row)
        exp_row = ops.exp(shifted)
        # Remove the intra-view self term exp(1/t - max) from the sum.
        self_term = np.exp(intra.data[diag, diag][:, None] - max_row)
        total = ops.sub(exp_row.sum(axis=1, keepdims=True), self_term)
        log_denominator = ops.add(ops.log(ops.reshape(total, (m,)), eps=1e-12),
                                  max_row.ravel())
        return ops.sub(log_denominator, pos)                                  # (m,)

    loss12 = one_direction(z1, z2)
    if not symmetric:
        return ops.sum(ops.mul(loss12, w))
    loss21 = one_direction(z2, z1)
    return ops.mul(ops.add(ops.sum(ops.mul(loss12, w)), ops.sum(ops.mul(loss21, w))), 0.5)


def sample_negative_indices(
    num_anchors: int,
    num_negatives: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Random ``Neg_v``: for each anchor, ``num_negatives`` *other* batch rows.

    Rejection-free construction: draw from ``0..m-2`` and shift indices ≥ the
    anchor by one, guaranteeing ``neg != anchor`` in a single vectorized pass.
    """
    if num_anchors < 2:
        raise ValueError("need at least 2 anchors to sample negatives")
    if num_negatives < 1:
        raise ValueError("num_negatives must be >= 1")
    draws = rng.integers(0, num_anchors - 1, size=(num_anchors, num_negatives))
    anchors = np.arange(num_anchors)[:, None]
    return draws + (draws >= anchors)
