"""The E2GCL pre-training loop (Alg. 1 lines 1-5, with Alg. 2 + Alg. 3 inside).

Per epoch: draw two global positive views with the score-aware generator,
run the shared GCN encoder on both, gather the coreset anchors, and descend
the contrastive loss weighted by the coreset λ.  Wall-clock milestones are
recorded so Fig. 3's accuracy-vs-time curves can be regenerated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..autograd import Adam, Tensor, ops
from ..graphs import Graph
from ..nn import GCN, ProjectionHead
from ..perf import record
from .config import E2GCLConfig
from .losses import euclidean_contrastive_loss, infonce_loss, sample_negative_indices
from .node_selector import CoresetResult, select_coreset
from .scores import compute_edge_scores, compute_feature_scores
from .view_generator import generate_global_view_pair


@dataclass
class EpochRecord:
    """One row of the training history (feeds Fig. 3)."""

    epoch: int
    loss: float
    elapsed_seconds: float


@dataclass
class TrainResult:
    """Everything produced by a pre-training run.

    ``selection_seconds`` is Tab. V's ST column, ``total_seconds`` its TT
    column (selection + score pre-computation + optimization).
    """

    encoder: GCN
    coreset: Optional[CoresetResult]
    history: List[EpochRecord]
    selection_seconds: float
    total_seconds: float

    @property
    def final_loss(self) -> float:
        return self.history[-1].loss if self.history else float("nan")


class E2GCLTrainer:
    """Orchestrates node selection, view generation, and encoder training.

    Parameters
    ----------
    graph:
        The pre-training graph (labels, if any, are never read).
    config:
        Full hyperparameter set.
    encoder:
        Optional externally constructed GCN (must map
        ``graph.num_features → config.embedding_dim``); by default one is
        built from the config.
    selector:
        Optional replacement for Alg. 2: a callable
        ``(graph, budget, rng) -> (selected_indices, weights)``.  The
        Tab. VII ablation plugs the baseline selectors in here.
    """

    def __init__(
        self,
        graph: Graph,
        config: E2GCLConfig,
        encoder: Optional[GCN] = None,
        selector=None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.encoder = encoder or GCN(
            in_features=graph.num_features,
            hidden_features=config.hidden_dim,
            out_features=config.embedding_dim,
            num_layers=config.num_layers,
            seed=config.seed,
        )
        self._rng = np.random.default_rng(config.seed)
        self.selector = selector
        self.projector: Optional[ProjectionHead] = None
        if config.loss == "infonce":
            self.projector = ProjectionHead(
                config.embedding_dim, config.hidden_dim, config.projection_dim,
                seed=config.seed + 101,
            )
        self.coreset: Optional[CoresetResult] = None
        self._anchors: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._edge_table = None
        self._feature_table = None
        self._selection_seconds = 0.0

    # ------------------------------------------------------------------
    def setup(self) -> "E2GCLTrainer":
        """Run Alg. 2 (if enabled) and precompute the Alg. 3 score tables."""
        cfg = self.config
        if cfg.use_coreset and self.selector is not None:
            start = time.perf_counter()
            selected, weights = self.selector(
                self.graph, cfg.budget_for(self.graph.num_nodes), self._rng
            )
            self._anchors = np.asarray(selected, dtype=np.int64)
            self._weights = np.asarray(weights, dtype=np.float64)
            self._selection_seconds = time.perf_counter() - start
        elif cfg.use_coreset:
            with record("trainer.selection"):
                self.coreset = select_coreset(
                    self.graph,
                    budget=cfg.budget_for(self.graph.num_nodes),
                    num_clusters=cfg.num_clusters,
                    sample_size=cfg.sample_size,
                    hops=cfg.num_layers,
                    rng=self._rng,
                )
            self._anchors = self.coreset.selected
            self._weights = self.coreset.weights
            self._selection_seconds = self.coreset.selection_seconds
        else:
            self._anchors = np.arange(self.graph.num_nodes)
            self._weights = np.ones(self.graph.num_nodes)
            self._selection_seconds = 0.0

        self._edge_table = compute_edge_scores(
            self.graph,
            beta=cfg.beta,
            uniform=not cfg.edge_aware,
            max_candidates=cfg.max_candidates,
            rng=self._rng,
            centrality_method=cfg.centrality_method,
        )
        self._feature_table = compute_feature_scores(
            self.graph,
            normalization=cfg.feature_normalization,
            uniform=not cfg.feature_aware,
            centrality_method=cfg.centrality_method,
        )
        return self

    # ------------------------------------------------------------------
    def _views(self):
        cfg = self.config
        with record("trainer.views"):
            return generate_global_view_pair(
                self.graph,
                self._edge_table,
                self._feature_table,
                self._rng,
                tau_hat=cfg.tau_hat,
                tau_tilde=cfg.tau_tilde,
                eta_hat=cfg.eta_hat,
                eta_tilde=cfg.eta_tilde,
            )

    def _loss(self, h_hat: Tensor, h_tilde: Tensor) -> Tensor:
        cfg = self.config
        if cfg.loss == "euclidean":
            negatives = sample_negative_indices(
                self._anchors.size, min(cfg.num_negatives, self._anchors.size - 1), self._rng
            )
            return euclidean_contrastive_loss(h_hat, h_tilde, negatives, weights=self._weights)
        z_hat = self.projector(h_hat)
        z_tilde = self.projector(h_tilde)
        return infonce_loss(z_hat, z_tilde, temperature=cfg.temperature, weights=self._weights)

    def train(
        self,
        callback: Optional[Callable[[int, "E2GCLTrainer"], None]] = None,
    ) -> TrainResult:
        """Run the optimization loop; ``callback(epoch, trainer)`` fires after
        each epoch (used by Fig. 3's timed evaluation)."""
        if self._anchors is None:
            self.setup()
        cfg = self.config
        start = time.perf_counter()
        params = self.encoder.parameters()
        if self.projector is not None:
            params = params + self.projector.parameters()
        optimizer = Adam(params, lr=cfg.lr, weight_decay=cfg.weight_decay)
        history: List[EpochRecord] = []
        views = None
        anchors = self._anchors
        for epoch in range(cfg.epochs):
            if views is None or epoch % max(cfg.view_refresh_interval, 1) == 0:
                views = self._views()
            view_hat, view_tilde = views
            with record("trainer.epoch"):
                optimizer.zero_grad()
                h_hat = ops.gather_rows(self.encoder(view_hat), anchors)
                h_tilde = ops.gather_rows(self.encoder(view_tilde), anchors)
                loss = self._loss(h_hat, h_tilde)
                loss.backward()
                optimizer.step()
            history.append(
                EpochRecord(
                    epoch=epoch,
                    loss=float(loss.item()),
                    elapsed_seconds=time.perf_counter() - start + self._selection_seconds,
                )
            )
            if callback is not None:
                callback(epoch, self)

        total = time.perf_counter() - start + self._selection_seconds
        return TrainResult(
            encoder=self.encoder,
            coreset=self.coreset,
            history=history,
            selection_seconds=self._selection_seconds,
            total_seconds=total,
        )

    def embed(self, graph: Optional[Graph] = None) -> np.ndarray:
        """Frozen-encoder node representations (evaluation protocol input)."""
        return self.encoder.embed(graph or self.graph)
