"""The E2GCL pre-training loop (Alg. 1 lines 1-5, with Alg. 2 + Alg. 3 inside).

Per epoch: draw two global positive views with the score-aware generator,
run the shared GCN encoder on both, gather the coreset anchors, and descend
the contrastive loss weighted by the coreset λ.

The trainer is a :class:`repro.engine.TrainStep` plugin: :meth:`train`
drives it through the shared :class:`repro.engine.TrainLoop`, which owns
the optimizer, the hook pipeline, checkpoint save/resume, and the one
canonical wall clock — started *before* selection and score precomputation,
so Fig. 3's accuracy-vs-time milestones are comparable with every baseline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..autograd import Tensor, ops
from ..contrast import L2LContrast, UniformK, get_negative_sampler, get_objective
from ..engine import CallbackHook, EpochRecord, RngStreams, RunHistory, TrainLoop, TrainStep
from ..graphs import Graph
from ..nn import GCN, ProjectionHead
from ..perf import record
from .config import E2GCLConfig
from .node_selector import CoresetResult, select_coreset
from .scores import compute_edge_scores, compute_feature_scores
from .view_generator import generate_global_view_pair

__all__ = ["E2GCLTrainer", "TrainResult", "EpochRecord"]


@dataclass
class TrainResult:
    """Everything produced by a pre-training run.

    ``selection_seconds`` is Tab. V's ST column, ``total_seconds`` its TT
    column (selection + score pre-computation + optimization), both
    measured from the engine's single timing origin.
    """

    encoder: GCN
    coreset: Optional[CoresetResult]
    run_history: RunHistory = field(default_factory=RunHistory)
    selection_seconds: float = 0.0
    total_seconds: float = 0.0

    @property
    def history(self) -> List[EpochRecord]:
        """Per-epoch records (feeds Fig. 3)."""
        return self.run_history.records

    @property
    def final_loss(self) -> float:
        return self.run_history.final_loss


class E2GCLTrainer(TrainStep):
    """Orchestrates node selection, view generation, and encoder training.

    Parameters
    ----------
    graph:
        The pre-training graph (labels, if any, are never read).
    config:
        Full hyperparameter set.
    encoder:
        Optional externally constructed GCN (must map
        ``graph.num_features → config.embedding_dim``); by default one is
        built from the config.
    selector:
        Optional replacement for Alg. 2: a callable
        ``(graph, budget, rng) -> (selected_indices, weights)``.  The
        Tab. VII ablation plugs the baseline selectors in here.
    """

    def __init__(
        self,
        graph: Graph,
        config: E2GCLConfig,
        encoder: Optional[GCN] = None,
        selector=None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.encoder = encoder or GCN(
            in_features=graph.num_features,
            hidden_features=config.hidden_dim,
            out_features=config.embedding_dim,
            num_layers=config.num_layers,
            seed=config.seed,
        )
        self.rngs = RngStreams(config.seed)
        self._rng = self.rngs.main
        # Subsampled negatives draw from a dedicated stream so the view
        # generator sees the same randomness as a dense run (common random
        # numbers).  The legacy Eq. 5 configuration keeps the main stream:
        # its reference trajectories interleave negative draws with view
        # generation, and that bit-exact behavior is pinned by tests.
        if config.loss == "euclidean" and config.negatives == "all":
            self._neg_rng = self._rng
        else:
            self._neg_rng = self.rngs.stream("negatives", offset=104729)
        self.selector = selector
        self.projector: Optional[ProjectionHead] = None
        if config.loss != "euclidean":
            # Similarity objectives act on a 2-layer projection of the
            # embeddings (as in GRACE); Eq. 5 acts on them directly.
            self.projector = ProjectionHead(
                config.embedding_dim, config.hidden_dim, config.projection_dim,
                seed=config.seed + 101,
            )
        self._contrast = self._build_contrast(config)
        self.coreset: Optional[CoresetResult] = None
        self._anchors: Optional[np.ndarray] = None
        self._weights: Optional[np.ndarray] = None
        self._edge_table = None
        self._feature_table = None
        self._selection_seconds = 0.0
        self._views_cache = None
        self._view_rng_state = None
        self._replay_view_state = None
        self.last_loop: Optional[TrainLoop] = None

    # ------------------------------------------------------------------
    def setup(self) -> "E2GCLTrainer":
        """Run Alg. 2 (if enabled) and precompute the Alg. 3 score tables."""
        self._run_selection()
        self._build_score_tables()
        return self

    def _propagated_r(self):
        """Optional precomputed ``R = A_n^L X`` for Alg. 2.

        ``None`` lets :func:`select_coreset` derive it densely; the
        sampled trainer overrides this with the blockwise out-of-core
        aggregation (see :mod:`repro.scale.feature_store`)."""
        return None

    def _run_selection(self) -> None:
        """Alg. 2: pick the coreset anchors and their λ weights."""
        cfg = self.config
        if cfg.use_coreset and self.selector is not None:
            start = time.perf_counter()
            selected, weights = self.selector(
                self.graph, cfg.budget_for(self.graph.num_nodes), self._rng
            )
            self._anchors = np.asarray(selected, dtype=np.int64)
            self._weights = np.asarray(weights, dtype=np.float64)
            self._selection_seconds = time.perf_counter() - start
        elif cfg.use_coreset:
            with record("trainer.selection"):
                self.coreset = select_coreset(
                    self.graph,
                    budget=cfg.budget_for(self.graph.num_nodes),
                    num_clusters=cfg.num_clusters,
                    sample_size=cfg.sample_size,
                    hops=cfg.num_layers,
                    rng=self._rng,
                    r=self._propagated_r(),
                )
            self._anchors = self.coreset.selected
            self._weights = self.coreset.weights
            self._selection_seconds = self.coreset.selection_seconds
        else:
            self._anchors = np.arange(self.graph.num_nodes)
            self._weights = np.ones(self.graph.num_nodes)
            self._selection_seconds = 0.0

    def _build_score_tables(self) -> None:
        """Precompute the Alg. 3 edge/feature score tables."""
        cfg = self.config
        self._edge_table = compute_edge_scores(
            self.graph,
            beta=cfg.beta,
            uniform=not cfg.edge_aware,
            max_candidates=cfg.max_candidates,
            rng=self._rng,
            centrality_method=cfg.centrality_method,
        )
        self._feature_table = compute_feature_scores(
            self.graph,
            normalization=cfg.feature_normalization,
            uniform=not cfg.feature_aware,
            centrality_method=cfg.centrality_method,
        )

    # ------------------------------------------------------------------
    def _views(self):
        cfg = self.config
        with record("trainer.views"):
            return generate_global_view_pair(
                self.graph,
                self._edge_table,
                self._feature_table,
                self._rng,
                tau_hat=cfg.tau_hat,
                tau_tilde=cfg.tau_tilde,
                eta_hat=cfg.eta_hat,
                eta_tilde=cfg.eta_tilde,
            )

    @staticmethod
    def _build_contrast(cfg: E2GCLConfig) -> L2LContrast:
        """Compose the config's objective × negative sampler.

        The euclidean objective always needs sampled negatives, so its
        legacy configuration (``negatives="all"``) maps to uniform
        sampling with the historical ``num_negatives`` budget — the same
        RNG draw as the pre-refactor inline sampling.
        """
        objective = get_objective(cfg.loss, temperature=cfg.temperature)
        if cfg.loss == "euclidean" and cfg.negatives == "all":
            sampler = UniformK(k=cfg.num_negatives)
        else:
            sampler = get_negative_sampler(cfg.negatives, k=cfg.neg_k)
        return L2LContrast(objective, sampler)

    def _loss(self, h_hat: Tensor, h_tilde: Tensor, weights=None) -> Tensor:
        if self._contrast.objective.name == "euclidean" and self._anchors.size < 2:
            raise ValueError(
                f"euclidean contrastive loss needs at least 2 coreset anchors "
                f"to sample negatives, got {self._anchors.size}; increase "
                f"node_ratio (or the selector budget) or switch to the "
                f"infonce loss"
            )
        if self.projector is not None:
            h_hat = self.projector(h_hat)
            h_tilde = self.projector(h_tilde)
        if weights is None:
            weights = self._weights
        return self._contrast.loss(h_hat, h_tilde, rng=self._neg_rng, weights=weights)

    # ------------------------------------------------------------------
    # TrainStep plugin surface
    # ------------------------------------------------------------------
    def prepare(self, loop) -> None:
        """Selection + score tables (skipped if ``setup`` already ran)."""
        if self._anchors is None:
            self.setup()

    def trainable_parameters(self):
        """Encoder, plus the projection head for the InfoNCE variant."""
        params = self.encoder.parameters()
        if self.projector is not None:
            params = params + self.projector.parameters()
        return params

    def checkpoint_components(self):
        """Encoder (and projector when the loss uses one)."""
        return {"encoder": self.encoder, "projector": self.projector}

    def _epoch_views(self, epoch: int):
        """The (view_hat, view_tilde) pair for ``epoch``, refreshed on the
        configured interval, with mid-interval resumes replayed bit-for-bit."""
        interval = max(self.config.view_refresh_interval, 1)
        if self._replay_view_state is not None and epoch % interval != 0:
            # Resuming mid-refresh-interval: regenerate the cached views by
            # replaying the RNG from the state saved at the last refresh,
            # then restore the live state so training continues bit-for-bit.
            live_state = self._rng.bit_generator.state
            self._rng.bit_generator.state = self._replay_view_state
            self._views_cache = self._views()
            self._rng.bit_generator.state = live_state
        elif self._views_cache is None or epoch % interval == 0:
            self._view_rng_state = self._rng.bit_generator.state
            self._views_cache = self._views()
        self._replay_view_state = None
        return self._views_cache

    def run_epoch(self, loop, epoch: int) -> float:
        """Refresh views on schedule, then one optimization step."""
        view_hat, view_tilde = self._epoch_views(epoch)

        optimizer = loop.optimizer
        optimizer.zero_grad()
        anchors = self._anchors
        h_hat = ops.gather_rows(self.encoder(view_hat), anchors)
        h_tilde = ops.gather_rows(self.encoder(view_tilde), anchors)
        loss = self._loss(h_hat, h_tilde)
        loss.backward()
        optimizer.step()
        return float(loss.item())

    def state_json(self) -> dict:
        """Scalars a resume needs: the view-refresh RNG state and the
        selection cost (already inside the engine's elapsed offset, kept
        for the Tab. V ST column)."""
        return {
            "view_rng_state": self._view_rng_state,
            "selection_seconds": self._selection_seconds,
        }

    def load_state_json(self, payload: dict) -> None:
        """Restore :meth:`state_json`; the saved view RNG state is replayed
        on the first resumed epoch when it falls mid-refresh-interval."""
        self._view_rng_state = payload.get("view_rng_state")
        self._replay_view_state = payload.get("view_rng_state")
        self._selection_seconds = float(payload.get("selection_seconds", 0.0))

    # ------------------------------------------------------------------
    def train(
        self,
        callback: Optional[Callable[[int, "E2GCLTrainer"], None]] = None,
        *,
        hooks: Sequence = (),
        resume_from: Optional[Union[str, Path]] = None,
    ) -> TrainResult:
        """Run the optimization loop through the shared engine.

        ``callback(epoch, trainer)`` fires after each epoch (used by
        Fig. 3's timed evaluation); ``hooks`` extends the engine pipeline;
        ``resume_from`` continues from a v2 checkpoint bit-identically.
        """
        cfg = self.config
        run_hooks = list(hooks)
        if callback is not None:
            run_hooks.append(CallbackHook(callback, owner=self))
        loop = TrainLoop(
            self,
            epochs=cfg.epochs,
            lr=cfg.lr,
            weight_decay=cfg.weight_decay,
            hooks=run_hooks,
            rngs=self.rngs,
            scope="trainer",
            resume_from=resume_from,
        )
        self.last_loop = loop
        history = loop.run()
        return TrainResult(
            encoder=self.encoder,
            coreset=self.coreset,
            run_history=history,
            selection_seconds=self._selection_seconds,
            total_seconds=history.total_seconds,
        )

    def embed(self, graph: Optional[Graph] = None) -> np.ndarray:
        """Frozen-encoder node representations (evaluation protocol input)."""
        return self.encoder.embed(graph or self.graph)
