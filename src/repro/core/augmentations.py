"""The eight primitive graph augmentation operations (Prop. 1).

The paper's expressivity argument (Prop. 1) says three operations — edge
deletion, edge addition, feature perturbation — span the same positive-view
space as the full operation set {edge deletion/addition, feature
masking/perturbation/dropping, node dropping/addition, subgraph sampling}.
This module implements *all eight* as uniform-random operators (these are
what the perturbation-based baselines and the E2GCL ablations use), plus a
constructive :func:`express_with_minimal_ops` that rewrites any target view
as a (deletion, addition, perturbation) triple — the computational content
of Prop. 1's proof, verified in the test suite.

All operators are pure: they return new :class:`Graph` objects.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graphs import Graph, adjacency_from_edge_mask, adjacency_from_edges


# ----------------------------------------------------------------------
# Structural operations
# ----------------------------------------------------------------------
def drop_edges(graph: Graph, rate: float, rng: np.random.Generator) -> Graph:
    """Delete each undirected edge independently with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    m = graph.num_edges
    keep = rng.random(m) >= rate
    return graph.with_adjacency(adjacency_from_edge_mask(graph, keep))


def add_edges(graph: Graph, rate: float, rng: np.random.Generator) -> Graph:
    """Add ``rate * |E|`` random non-edges (uniform over node pairs)."""
    if rate < 0:
        raise ValueError("rate must be non-negative")
    n = graph.num_nodes
    count = int(round(rate * graph.num_edges))
    if count == 0 or n < 2:
        return graph.copy()
    existing = {tuple(e) for e in graph.edge_array()}
    new_edges = []
    attempts = 0
    while len(new_edges) < count and attempts < 50 * count + 100:
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v:
            continue
        pair = (min(u, v), max(u, v))
        if pair in existing:
            continue
        existing.add(pair)
        new_edges.append(pair)
    all_edges = np.concatenate([graph.edge_array().reshape(-1, 2),
                                np.asarray(new_edges, dtype=np.int64).reshape(-1, 2)])
    return graph.with_adjacency(adjacency_from_edges(n, all_edges))


def drop_nodes(graph: Graph, rate: float, rng: np.random.Generator) -> Tuple[Graph, np.ndarray]:
    """Remove a random ``rate`` fraction of nodes; returns (view, kept ids)."""
    if not 0.0 <= rate < 1.0:
        raise ValueError("rate must be in [0, 1)")
    n = graph.num_nodes
    keep_count = max(1, int(round((1.0 - rate) * n)))
    kept = np.sort(rng.choice(n, size=keep_count, replace=False))
    sub, mapping = graph.induced_subgraph(kept)
    return sub, mapping


def add_nodes(graph: Graph, count: int, rng: np.random.Generator, degree: int = 2) -> Graph:
    """Append ``count`` new nodes, each wired to ``degree`` random nodes and
    given the feature vector of a random existing node (the convention used
    in the augmentation literature)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if count == 0:
        return graph.copy()
    n = graph.num_nodes
    new_n = n + count
    old_edges = graph.edge_array()
    extra = []
    for i in range(count):
        node = n + i
        targets = rng.choice(n, size=min(degree, n), replace=False)
        extra.extend((int(t), node) for t in targets)
    edges = np.concatenate([old_edges.reshape(-1, 2), np.asarray(extra).reshape(-1, 2)])
    donor = rng.integers(0, n, size=count)
    features = np.concatenate([graph.features, graph.features[donor]], axis=0)
    labels = None
    if graph.labels is not None:
        labels = np.concatenate([graph.labels, graph.labels[donor]])
    return Graph(adjacency_from_edges(new_n, edges), features, labels, graph.name)


def subgraph_sample(graph: Graph, rate: float, rng: np.random.Generator) -> Tuple[Graph, np.ndarray]:
    """Random-walk induced subgraph covering about ``rate`` of the nodes."""
    if not 0.0 < rate <= 1.0:
        raise ValueError("rate must be in (0, 1]")
    n = graph.num_nodes
    target = max(1, int(round(rate * n)))
    current = int(rng.integers(n))
    visited = {current}
    stall = 0
    while len(visited) < target and stall < 10 * target:
        neigh = graph.neighbors(current)
        if neigh.size == 0:
            current = int(rng.integers(n))
        else:
            current = int(neigh[rng.integers(neigh.size)])
        before = len(visited)
        visited.add(current)
        stall = stall + 1 if len(visited) == before else 0
    sub, mapping = graph.induced_subgraph(sorted(visited))
    return sub, mapping


# ----------------------------------------------------------------------
# Feature operations
# ----------------------------------------------------------------------
def mask_features(graph: Graph, rate: float, rng: np.random.Generator) -> Graph:
    """Zero out whole feature *dimensions* with probability ``rate``
    (GRACE-style column masking)."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    mask = rng.random(graph.num_features) >= rate
    return graph.with_features(graph.features * mask[None, :])


def drop_features(graph: Graph, rate: float, rng: np.random.Generator) -> Graph:
    """Zero out individual feature *entries* with probability ``rate``."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError("rate must be in [0, 1]")
    mask = rng.random(graph.features.shape) >= rate
    return graph.with_features(graph.features * mask)


def perturb_features(
    graph: Graph,
    probability,
    rng: np.random.Generator,
    magnitude: float = 1.0,
) -> Graph:
    """Eq. 16 multiplicative perturbation.

    ``x̂[u,i] = x[u,i] + m[u,i] · (2·U(0,1) − 1) · magnitude · x[u,i]`` where
    ``m ~ Bernoulli(probability)``.  ``probability`` may be a scalar or an
    ``(n, d)`` matrix (the score-aware case).
    """
    prob = np.broadcast_to(np.asarray(probability, dtype=np.float64), graph.features.shape)
    if prob.min() < 0 or prob.max() > 1:
        raise ValueError("perturbation probabilities must be in [0, 1]")
    mask = rng.random(graph.features.shape) < prob
    noise = (2.0 * rng.random(graph.features.shape) - 1.0) * magnitude
    perturbed = graph.features * (1.0 + mask * noise)
    return graph.with_features(perturbed)


# ----------------------------------------------------------------------
# Prop. 1: constructive minimality
# ----------------------------------------------------------------------
def express_with_minimal_ops(original: Graph, target: Graph):
    """Express ``target`` (any view over the same node set) with the minimal
    operation set: returns ``(edges_to_delete, edges_to_add, feature_delta)``.

    This is the constructive core of Prop. 1: node dropping is edge deletion
    of the node's incident edges plus feature perturbation to zero; masking
    and dropping features are feature perturbations with delta ``−x``;
    subgraph sampling is a composition of those.  Applying the returned plan
    via :func:`apply_view_plan` reproduces ``target`` exactly, which the
    property tests assert for random compositions of all eight operations.
    """
    if original.num_nodes != target.num_nodes:
        raise ValueError(
            "express_with_minimal_ops requires aligned node sets; embed node "
            "drop/add into the common superset first"
        )
    orig_edges = {tuple(e) for e in original.edge_array()}
    targ_edges = {tuple(e) for e in target.edge_array()}
    to_delete = np.asarray(sorted(orig_edges - targ_edges), dtype=np.int64).reshape(-1, 2)
    to_add = np.asarray(sorted(targ_edges - orig_edges), dtype=np.int64).reshape(-1, 2)
    feature_delta = target.features - original.features
    return to_delete, to_add, feature_delta


def apply_view_plan(
    graph: Graph,
    edges_to_delete: np.ndarray,
    edges_to_add: np.ndarray,
    feature_delta: np.ndarray,
) -> Graph:
    """Apply a (delete, add, perturb) plan produced by
    :func:`express_with_minimal_ops`."""
    edges = {tuple(e) for e in graph.edge_array()}
    edges -= {tuple(e) for e in np.asarray(edges_to_delete).reshape(-1, 2)}
    edges |= {tuple(e) for e in np.asarray(edges_to_add).reshape(-1, 2)}
    adjacency = adjacency_from_edges(graph.num_nodes, np.asarray(sorted(edges)).reshape(-1, 2))
    return Graph(adjacency, graph.features + feature_delta, graph.labels, graph.name)


MINIMAL_OPERATIONS = ("edge_deletion", "edge_addition", "feature_perturbation")
ALL_OPERATIONS = MINIMAL_OPERATIONS + (
    "feature_masking",
    "feature_dropping",
    "node_dropping",
    "node_addition",
    "subgraph_sampling",
)
