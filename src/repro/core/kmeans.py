"""KMeans with k-means++ seeding, from scratch.

Alg. 2 (line 2) partitions nodes by KMeans over the propagated features
``R = A_n^L X``.  sklearn is not available in this environment, so this is
a clean numpy implementation with:

* k-means++ initialization (D² sampling);
* empty-cluster repair (re-seed an empty cluster at the point farthest from
  its assigned center — keeps ``n_c`` effective clusters, which Def. 1's
  per-cluster bound relies on);
* deterministic behaviour under an explicit ``Generator``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class KMeansResult:
    """Clustering output.

    Attributes
    ----------
    assignments:
        ``(n,)`` cluster index per point.
    centers:
        ``(n_c, d)`` cluster centroid matrix.
    inertia:
        Sum of squared distances to assigned centers.
    n_iter:
        Lloyd iterations run before convergence / cap.
    """

    assignments: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int

    @property
    def num_clusters(self) -> int:
        return self.centers.shape[0]


def _plus_plus_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: iteratively sample proportional to squared distance."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = ((points - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centers; duplicate.
            centers[i:] = centers[0]
            break
        probs = closest_sq / total
        idx = int(rng.choice(n, p=probs))
        centers[i] = points[idx]
        dist_sq = ((points - centers[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def _assign(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center assignment (chunked to bound memory on large graphs)."""
    n = points.shape[0]
    assignments = np.empty(n, dtype=np.int64)
    chunk = max(1, 4_000_000 // max(centers.shape[0], 1))
    center_sq = (centers ** 2).sum(axis=1)
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = points[start:stop]
        # Expanded squared distance; the -2xc term dominates the cost.
        d = block @ centers.T
        d *= -2.0
        d += center_sq
        assignments[start:stop] = d.argmin(axis=1)
    return assignments


def kmeans(
    points: np.ndarray,
    num_clusters: int,
    rng: Optional[np.random.Generator] = None,
    max_iter: int = 50,
    tol: float = 1e-6,
) -> KMeansResult:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    points:
        ``(n, d)`` data matrix (``R`` in the paper).
    num_clusters:
        ``n_c``; capped to ``n`` when the dataset is smaller.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be 2-D")
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot cluster an empty dataset")
    if not np.isfinite(points).all():
        raise ValueError(
            "points contain non-finite values; kmeans distances (and every "
            "centroid) would be NaN — clean or clip the features first"
        )
    if num_clusters < 1:
        raise ValueError("num_clusters must be >= 1")
    rng = rng or np.random.default_rng()
    k = min(num_clusters, n)

    centers = _plus_plus_init(points, k, rng)
    assignments = _assign(points, centers)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        new_centers = np.zeros_like(centers)
        counts = np.bincount(assignments, minlength=k).astype(np.float64)
        np.add.at(new_centers, assignments, points)
        nonempty = counts > 0
        new_centers[nonempty] /= counts[nonempty, None]

        # Empty-cluster repair: move the center to the point currently
        # farthest from its own center.
        if not nonempty.all():
            dist_sq = ((points - new_centers[assignments]) ** 2).sum(axis=1)
            for cluster in np.flatnonzero(~nonempty):
                far = int(dist_sq.argmax())
                new_centers[cluster] = points[far]
                dist_sq[far] = 0.0

        shift = np.linalg.norm(new_centers - centers)
        centers = new_centers
        new_assignments = _assign(points, centers)
        if shift < tol and np.array_equal(new_assignments, assignments):
            assignments = new_assignments
            break
        assignments = new_assignments

    inertia = float(((points - centers[assignments]) ** 2).sum())
    return KMeansResult(assignments=assignments, centers=centers, inertia=inertia, n_iter=n_iter)
