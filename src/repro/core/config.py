"""Configuration for the E2GCL pipeline.

One dataclass carries every hyperparameter from Sec. V-A4 plus the ablation
switches of Sec. V-C, so each table/figure benchmark is a small diff on a
shared default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass
class E2GCLConfig:
    """Hyperparameters of the full pipeline.

    Node selector (Sec. III / Alg. 2)
    ---------------------------------
    node_ratio:
        ``r`` with ``k = r·|V|`` (paper default 0.4).
    num_clusters:
        ``n_c`` for KMeans.
    sample_size:
        ``n_s`` candidates per greedy round (``None`` → Theorem 3's value).
    use_coreset:
        ``False`` trains on all nodes (the ``E2GCL_{A,·}`` ablations).

    View generator (Sec. IV / Alg. 3)
    ---------------------------------
    tau_hat, tau_tilde:
        Neighbor sampling ratios τ̂ / τ̃ for the two views.
    eta_hat, eta_tilde:
        Feature perturbation strengths η̂ / η̃.
    beta:
        Existing-edge mass in the edge score.
    edge_aware, feature_aware:
        ``False`` switches to uniform sampling (the \\S and \\F ablations).
    max_candidates:
        Per-node candidate cap (memory guard on dense graphs).

    Encoder / optimization
    ----------------------
    hidden_dim, embedding_dim, num_layers:
        GCN shape (paper: 2-layer GCN; ``num_layers`` doubles as ``L``).
    loss:
        Any registered contrast objective (``"euclidean"`` = Eq. 5,
        ``"infonce"``, ``"jsd"``, ``"barlow"``, ``"bootstrap"``,
        ``"margin"``).
    num_negatives:
        ``|Neg_v|`` for the euclidean loss (its legacy per-anchor budget).
    negatives:
        Negative sampler for the contrast layer: ``"all"`` (dense,
        historical default), ``"uniform"`` (O(n·k) subsampling), or
        ``"hard"`` (top-k mining).
    neg_k:
        Per-anchor negative budget for the subsampling strategies.
    temperature:
        InfoNCE temperature.
    epochs, lr, weight_decay:
        Adam schedule.
    view_refresh_interval:
        Regenerate the two global views every this many epochs (1 =
        fresh views per epoch, the faithful setting).
    seed:
        Master seed; derived generators cover selection / views / init.
    """

    # Node selector
    node_ratio: float = 0.4
    num_clusters: int = 60
    sample_size: Optional[int] = 300
    use_coreset: bool = True

    # View generator (defaults tuned on the Cora analogue's validation
    # split, inside the paper's search grid of Sec. V-A4)
    tau_hat: float = 1.2
    tau_tilde: float = 1.0
    eta_hat: float = 0.2
    eta_tilde: float = 0.4
    beta: float = 0.9
    edge_aware: bool = True
    feature_aware: bool = True
    max_candidates: Optional[int] = 2000
    # φ_c variant for the importance scores ("degree" is the paper's
    # choice; "pagerank"/"eigenvector" follow GCA's alternatives).
    centrality_method: str = "degree"
    # Eq. 16 normalization: "global" (default; see repro/core/scores.py for
    # why) or "per_dimension" (the paper's literal reading).
    feature_normalization: str = "global"

    # Encoder / optimization
    hidden_dim: int = 64
    embedding_dim: int = 32
    num_layers: int = 2
    # "infonce" is the default objective: Eq. 5's euclidean loss (also
    # implemented, and the form analyzed in Theorem 1) repels negatives
    # linearly and plateaus on many-class graphs, while the log-sum-exp
    # spreads classes reliably.  Both accept the coreset λ weights.
    loss: str = "infonce"
    num_negatives: int = 8
    negatives: str = "all"
    neg_k: int = 64
    temperature: float = 0.5
    # InfoNCE is computed on a 2-layer projection of the embeddings (as in
    # GRACE); the projection head is discarded after pre-training.  The
    # euclidean loss of Eq. 5 acts on the embeddings directly.
    projection_dim: int = 32
    epochs: int = 60
    lr: float = 0.01
    weight_decay: float = 1e-5
    view_refresh_interval: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        from ..contrast import available_negative_samplers, available_objectives

        if not 0 < self.node_ratio <= 1:
            raise ValueError("node_ratio must be in (0, 1]")
        if self.loss not in available_objectives():
            raise ValueError(
                f"unknown loss {self.loss!r}; available: {available_objectives()}"
            )
        if self.negatives not in available_negative_samplers():
            raise ValueError(
                f"unknown negative sampler {self.negatives!r}; "
                f"available: {available_negative_samplers()}"
            )
        if self.neg_k < 1:
            raise ValueError("neg_k must be >= 1")
        if self.num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        for name in ("tau_hat", "tau_tilde", "eta_hat", "eta_tilde"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def budget_for(self, num_nodes: int) -> int:
        """``k = r·|V|`` (at least 2 so negatives exist)."""
        return max(2, int(round(self.node_ratio * num_nodes)))

    def with_overrides(self, **kwargs) -> "E2GCLConfig":
        """Functional update; benchmarks derive ablation configs this way."""
        return replace(self, **kwargs)


def ablation_config(base: E2GCLConfig, variant: str) -> E2GCLConfig:
    """The four framework variants of Tab. VI and the three of Tab. VIII.

    Variants: ``"S,I"`` (full), ``"S,U"``, ``"A,I"``, ``"A,U"`` (Tab. VI)
    and ``"\\F\\S"``, ``"\\S"``, ``"\\F"``, ``"full"`` (Tab. VIII).
    """
    table6 = {
        "S,I": dict(use_coreset=True, edge_aware=True, feature_aware=True),
        "S,U": dict(use_coreset=True, edge_aware=False, feature_aware=False),
        "A,I": dict(use_coreset=False, edge_aware=True, feature_aware=True),
        "A,U": dict(use_coreset=False, edge_aware=False, feature_aware=False),
    }
    table8 = {
        "\\F\\S": dict(edge_aware=False, feature_aware=False),
        "\\S": dict(edge_aware=False, feature_aware=True),
        "\\F": dict(edge_aware=True, feature_aware=False),
        "full": dict(edge_aware=True, feature_aware=True),
    }
    if variant in table6:
        return base.with_overrides(**table6[variant])
    if variant in table8:
        return base.with_overrides(**table8[variant])
    raise ValueError(f"unknown ablation variant {variant!r}")
