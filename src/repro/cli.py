"""Command-line interface.

Usage::

    python -m repro list-datasets
    python -m repro list-methods
    python -m repro list-experiments
    python -m repro train --dataset cora --method e2gcl --epochs 40
    python -m repro train --dataset cora --method e2gcl --trace run.jsonl
    python -m repro select --dataset computers --ratio 0.1
    python -m repro trace run.jsonl
    python -m repro stream --generate 500 --out deltas.jsonl --dataset cora
    python -m repro stream --replay deltas.jsonl --checkpoint ckpt.npz

``train`` pre-trains a method and reports linear-eval accuracy; ``select``
runs Alg. 2 standalone and prints coreset statistics; ``trace`` summarizes
a JSONL trace written by ``train --trace`` (slowest spans, per-epoch
metrics).  Benchmarks are run through pytest
(``pytest benchmarks/ --benchmark-only``), not the CLI.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _cmd_list_datasets(_args) -> int:
    from .graphs import dataset_names, get_spec, tu_dataset_names

    print("node-classification datasets (synthetic analogues):")
    for name in dataset_names():
        spec = get_spec(name)
        print(f"  {name:10s} {spec.num_nodes:>6d} nodes, {spec.num_classes:>3d} classes "
              f"(paper: {spec.paper_nodes} nodes)")
    print("graph-classification datasets:")
    for name in tu_dataset_names():
        print(f"  {name}")
    return 0


def _cmd_list_methods(_args) -> int:
    from .baselines import available_methods

    for name in available_methods():
        print(name)
    return 0


def _cmd_list_experiments(_args) -> int:
    from .bench import EXPERIMENTS

    for key, exp in EXPERIMENTS.items():
        print(f"{key:10s} {exp.artifact:12s} {exp.title}")
        print(f"{'':10s} -> benchmarks/{exp.bench_file}")
    return 0


def _cmd_train(args) -> int:
    from .baselines import MethodConfig, get_method
    from .engine import EarlyStopping, PeriodicCheckpoint
    from .eval import evaluate_embeddings
    from .graphs import load_dataset

    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    print(f"dataset: {graph}")
    config = MethodConfig(
        epochs=args.epochs,
        seed=args.seed,
        objective=args.objective,
        negatives=args.negatives,
        neg_k=args.neg_k,
    )
    scale_kwargs = {}
    if getattr(args, "sampled", False):
        if args.method != "e2gcl":
            print("--sampled only supports the e2gcl method", file=sys.stderr)
            return 2
        scale_kwargs["sampled"] = True
        if args.batch_size is not None:
            scale_kwargs["batch_size"] = args.batch_size
        if args.fanouts:
            scale_kwargs["fanouts"] = [
                None if tok in ("none", "full") else int(tok)
                for tok in args.fanouts.lower().split(",")
            ]
        if args.local_views:
            scale_kwargs["view_mode"] = "local"
        if args.anchors != "coreset":
            scale_kwargs["anchor_mode"] = args.anchors
        if args.partition_parts is not None:
            scale_kwargs["partition_parts"] = args.partition_parts
    method = get_method(args.method, **config.method_kwargs(), **scale_kwargs)
    hooks = []
    recovering = args.guard == "recover"
    if args.guard != "off":
        from .resilience import HealthGuard

        # Guard must run before AutoRecovery so a failure signalled at
        # epoch N is seen before recovery decides whether to checkpoint.
        hooks.append(HealthGuard(policy=args.guard))
    if recovering:
        from .resilience import AutoRecovery, CheckpointManager

        ckpt_dir = args.checkpoint or f"{args.method}-{args.dataset}-ckpts"
        manager = CheckpointManager(ckpt_dir, keep=args.keep_checkpoints)
        hooks.append(AutoRecovery(manager, every=args.checkpoint_every,
                                  max_retries=args.max_retries))
    elif args.checkpoint:
        hooks.append(PeriodicCheckpoint(args.checkpoint, every=args.checkpoint_every))
    if args.patience:
        hooks.append(EarlyStopping(args.patience))
    resume_from = args.resume
    if resume_from is not None:
        resume_from = _resolve_resume(resume_from)
        if resume_from is None:
            print(f"no valid checkpoint found under {args.resume}", file=sys.stderr)
            return 2
    tracer = None
    if args.trace:
        from .obs import MetricsHook, TraceHook, Tracer, build_manifest

        tracer = Tracer(args.trace)
        # Activate here (not in the hook) so the post-fit linear eval below
        # is traced too; TraceHook sees an active tracer and leaves
        # ownership with us.
        tracer.activate()
        manifest = build_manifest(
            config=vars(args), seed=args.seed, graph=graph,
            extra={"method": args.method},
        )
        hooks.append(TraceHook(tracer, manifest=manifest))
        hooks.append(MetricsHook(tracer))
    try:
        method.fit(graph, hooks=hooks, resume_from=resume_from)
        if recovering:
            print(f"recovering checkpoints under {ckpt_dir} "
                  f"(keep {args.keep_checkpoints}, every {args.checkpoint_every} epochs)")
            if method.last_loop is not None:
                for entry in method.last_loop.history.recoveries:
                    print(f"recovered: epoch {entry['failed_epoch']} -> "
                          f"{entry['resume_epoch']} ({entry['reason']})")
        elif args.checkpoint:
            print(f"engine checkpoint at {args.checkpoint} "
                  f"(every {args.checkpoint_every} epochs)")
        stop = method.last_loop.stop_reason if method.last_loop is not None else None
        if stop:
            print(stop)
        result = evaluate_embeddings(graph, method.embed(graph), seed=args.seed,
                                     trials=args.trials)
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace}")
    print(f"{args.method}: accuracy {result.test_accuracy} "
          f"(fit {method.info.seconds:.1f}s)")
    if args.save:
        if args.method != "e2gcl":
            print("--save only supports the e2gcl method", file=sys.stderr)
            return 2
        from .core.serialization import save_model

        save_model_path = save_model_wrapper(method, args.save)
        print(f"checkpoint written to {save_model_path}")
    return 0


def _resolve_resume(target):
    """Resolve ``--resume``: a file is used as-is, a directory is searched
    for its newest digest-valid checkpoint (corrupt files are skipped)."""
    from pathlib import Path

    from .engine import find_latest_valid

    path = Path(target)
    if path.is_dir():
        return find_latest_valid(path)
    if not path.is_file():
        return None
    return path


def save_model_wrapper(method, path):
    """Adapt an :class:`E2GCLMethod` to the facade-based checkpoint format."""
    from .core import E2GCL
    from .core.serialization import save_model

    facade = E2GCL(method.config)
    facade.trainer = method.trainer
    facade.result = method.train_result
    return save_model(facade, path)


def _build_server(args):
    """Shared serve/query setup: dataset + registry + server + client."""
    from .graphs import load_dataset
    from .serve import (
        EmbeddingServer,
        InProcessClient,
        ModelRegistry,
        ServeError,
    )

    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    registry = ModelRegistry()
    try:
        version = registry.load(args.checkpoint)
    except ServeError as exc:
        print(f"cannot load model: {exc}", file=sys.stderr)
        return None
    server = EmbeddingServer(
        registry, graph,
        use_batching=not args.no_batching,
        cache_size=args.cache_size,
        snapshot_dir=args.snapshot_dir,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        rate_limit=args.rate_limit,
        burst=args.burst,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
    )
    retry = None
    if args.retries > 0:
        from .serve import RetryPolicy

        retry = RetryPolicy(max_retries=args.retries, seed=args.seed)
    return graph, version, server, InProcessClient(server, retry=retry)


def _cmd_serve(args) -> int:
    import json

    built = _build_server(args)
    if built is None:
        return 2
    graph, version, server, client = built
    print(f"serving {version.version_id} ({version.step_class}) over {graph}")
    try:
        server.warmup()
        if args.rollout:
            from .serve import RolloutError

            try:
                rollout = server.start_rollout(args.rollout)
            except RolloutError as exc:
                print(f"rollout rejected: {exc}", file=sys.stderr)
                return 2
            print(f"rollout: shadowing {rollout.candidate_id} against "
                  f"{rollout.active_id} "
                  f"(promote after {rollout.min_shadow} healthy reads)")
        if args.requests:
            # In-process transport: one JSON request per line, answers on
            # stdout — the socket-free path the integration tests drive.
            with open(args.requests) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except ValueError as exc:
                        payload = {"_unparseable": str(exc)}
                    print(json.dumps(client.request(payload)))
            return 0
        from .serve import build_http_server

        httpd = build_http_server(server, host=args.host, port=args.port)
        host, port = httpd.server_address[:2]
        print(f"listening on http://{host}:{port}/query (POST JSON; ctrl-c to stop)")
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            httpd.server_close()
        return 0
    finally:
        client.close()
        server.close()


def _cmd_query(args) -> int:
    import json

    built = _build_server(args)
    if built is None:
        return 2
    _, _, server, client = built
    request = {"op": args.op}
    if args.node is not None:
        request["node"] = args.node
    if args.features is not None:
        try:
            request["features"] = json.loads(args.features)
        except ValueError as exc:
            print(f"--features must be a JSON array: {exc}", file=sys.stderr)
            client.close()
            server.close()
            return 2
    if args.neighbors is not None:
        try:
            request["neighbors"] = json.loads(args.neighbors)
        except ValueError as exc:
            print(f"--neighbors must be a JSON array: {exc}", file=sys.stderr)
            client.close()
            server.close()
            return 2
    try:
        response = client.request(request)
    finally:
        client.close()
        server.close()
    print(json.dumps(response, indent=None))
    return 0 if response.get("ok") else 1


def _cmd_stream(args) -> int:
    import json

    from .stream import DeltaGenerator, DeltaLog, replay_log

    if args.generate is not None:
        if args.out is None:
            print("--generate needs --out <log.jsonl>", file=sys.stderr)
            return 2
        from .graphs import load_dataset

        graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
        generator = DeltaGenerator(graph, seed=args.seed)
        with DeltaLog(args.out) as log:
            log.extend(generator.generate(args.generate))
        print(f"wrote {log.written} deltas to {args.out} "
              f"(dataset {graph.name}, {graph.num_nodes} nodes)")
        return 0
    if args.checkpoint is None:
        print("--replay needs --checkpoint", file=sys.stderr)
        return 2
    built = _build_server(args)
    if built is None:
        return 2
    graph, version, server, client = built
    print(f"replaying {args.replay} against {version.version_id} "
          f"({version.step_class}) over {graph}")
    try:
        server.warmup()
        summary = replay_log(
            server, args.replay,
            batch_size=args.delta_batch,
            probes_per_batch=args.probes,
            checkpoint=version.path if args.finetune else None,
            workdir=args.workdir if args.finetune else None,
            extra_epochs=args.finetune_epochs,
            drift_threshold=args.drift_threshold,
            drift_min_samples=args.drift_min_samples,
            start_seq=args.start_seq,
            seed=args.seed,
        )
    finally:
        client.close()
        server.close()
    if args.out:
        Path(args.out).write_text(json.dumps(summary, indent=2))
        print(f"summary written to {args.out}")
    print(json.dumps({k: v for k, v in summary.items() if k != "batches"},
                     indent=2))
    return 1 if summary["probe_failures"] else 0


def _add_serve_common(parser, require_checkpoint: bool = True) -> None:
    parser.add_argument("--checkpoint", required=require_checkpoint,
                        default=None,
                        help="engine checkpoint file, or a directory searched "
                             "for its newest digest-valid checkpoint")
    parser.add_argument("--dataset", default="cora")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--cache-size", type=int, default=4096)
    parser.add_argument("--snapshot-dir", default=None,
                        help="persist digest-validated embedding snapshots here")
    parser.add_argument("--no-batching", action="store_true",
                        help="disable request microbatching")
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--rate-limit", type=float, default=None,
                        help="admission: shed workload ops beyond this req/s")
    parser.add_argument("--burst", type=float, default=None,
                        help="admission: token-bucket burst headroom")
    parser.add_argument("--max-inflight", type=int, default=None,
                        help="admission: concurrent-request watermark; "
                             "requests beyond it are shed, not queued")
    parser.add_argument("--deadline-ms", type=float, default=None,
                        help="default per-request latency budget; expired "
                             "work is dropped, never computed")
    parser.add_argument("--retries", type=int, default=0,
                        help="client-side retries (capped backoff + jitter) "
                             "for shed idempotent requests")


def _cmd_trace(args) -> int:
    from .obs import render_summary, summarize_trace

    try:
        summary = summarize_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.path}: {exc}", file=sys.stderr)
        return 2
    print(render_summary(summary, top=args.top))
    return 0


def _cmd_select(args) -> int:
    from .core import select_coreset
    from .graphs import load_dataset

    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    budget = max(2, int(round(args.ratio * graph.num_nodes)))
    result = select_coreset(graph, budget=budget, num_clusters=args.clusters,
                            sample_size=args.samples,
                            rng=np.random.default_rng(args.seed))
    print(f"dataset: {graph}")
    print(f"selected {result.budget} nodes in {result.selection_seconds:.2f}s "
          f"(RS = {result.representativity:.2f})")
    print(f"weights: min={result.weights.min():.0f} "
          f"max={result.weights.max():.0f} sum={result.weights.sum():.0f}")
    if graph.labels is not None:
        hist = np.bincount(graph.labels[result.selected], minlength=graph.num_classes)
        print(f"class histogram of coreset: {hist.tolist()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-datasets").set_defaults(func=_cmd_list_datasets)
    sub.add_parser("list-methods").set_defaults(func=_cmd_list_methods)
    sub.add_parser("list-experiments").set_defaults(func=_cmd_list_experiments)

    train = sub.add_parser("train", help="pre-train a method and linear-evaluate it")
    train.add_argument("--dataset", default="cora")
    train.add_argument("--method", default="e2gcl")
    train.add_argument("--epochs", type=int, default=40)
    train.add_argument("--trials", type=int, default=3)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--scale", type=float, default=1.0)
    train.add_argument("--dtype", choices=["float32", "float64"], default="float64",
                       help="process-wide tensor precision (float32 halves "
                            "memory traffic; see docs/PERFORMANCE.md)")
    train.add_argument("--objective", default=None,
                       choices=["infonce", "jsd", "barlow", "bootstrap",
                                "margin", "euclidean"],
                       help="contrast objective (default: the method's paper "
                            "objective; see docs/CONTRAST.md)")
    train.add_argument("--negatives", default="all",
                       choices=["all", "uniform", "hard"],
                       help="negative sampler: all pairs (dense), uniform-k "
                            "subsampling (O(n*k)), or top-k hard mining")
    train.add_argument("--neg-k", type=int, default=64,
                       help="negatives per anchor for --negatives uniform/hard")
    train.add_argument("--sampled", action="store_true",
                       help="train e2gcl on neighbor-sampled mini-batches "
                            "(repro.scale; see docs/SCALE.md)")
    train.add_argument("--batch-size", type=int, default=None,
                       help="anchors per mini-batch for --sampled "
                            "(default: all anchors in one batch)")
    train.add_argument("--fanouts", default=None,
                       help="comma list of per-hop neighbor budgets for "
                            "--sampled, outermost first (e.g. '10,5'; "
                            "'full' keeps a hop exact)")
    train.add_argument("--local-views", action="store_true",
                       help="per-block view corruption instead of global "
                            "Alg. 3 views (--sampled; sublinear per epoch)")
    train.add_argument("--anchors", choices=["coreset", "uniform", "all"],
                       default="coreset",
                       help="anchor selection for --sampled (default coreset)")
    train.add_argument("--partition-parts", type=int, default=None,
                       help="batch anchors by BFS partition part "
                            "(--sampled; Cluster-GCN-style locality)")
    train.add_argument("--save", default=None, help="write an .npz checkpoint (e2gcl only)")
    train.add_argument("--checkpoint", default=None,
                       help="write a resumable engine checkpoint (.npz, any method)")
    train.add_argument("--checkpoint-every", type=int, default=10,
                       help="epochs between --checkpoint writes")
    train.add_argument("--resume", default=None,
                       help="resume from an engine checkpoint, or from the newest "
                            "valid checkpoint when given a directory")
    train.add_argument("--patience", type=int, default=None,
                       help="early-stop after N epochs without loss improvement")
    train.add_argument("--guard", choices=["off", "warn", "raise", "recover"],
                       default="off",
                       help="numerical health guard policy (recover adds "
                            "checkpoint rollback + retry)")
    train.add_argument("--max-retries", type=int, default=3,
                       help="recovery attempts before giving up (--guard recover)")
    train.add_argument("--keep-checkpoints", type=int, default=3,
                       help="checkpoints retained by the recovery manager")
    train.add_argument("--trace", default=None,
                       help="write a JSONL run trace (spans, metrics, manifest)")
    train.set_defaults(func=_cmd_train)

    serve = sub.add_parser(
        "serve", help="serve embedding/classification queries from a checkpoint")
    _add_serve_common(serve)
    serve.add_argument("--requests", default=None,
                       help="answer JSONL requests from this file in-process "
                            "(one JSON object per line) instead of binding HTTP")
    serve.add_argument("--rollout", default=None,
                       help="candidate checkpoint to roll out blue/green "
                            "next to the active model (shadow traffic, "
                            "auto-promote/auto-rollback)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8071,
                       help="HTTP port (0 picks an ephemeral port)")
    serve.set_defaults(func=_cmd_serve)

    query = sub.add_parser(
        "query", help="answer one serving query in-process (no server needed)")
    _add_serve_common(query)
    query.add_argument("--op", default="embed",
                       choices=["embed", "classify", "neighbors", "models", "stats"])
    query.add_argument("--node", type=int, default=None)
    query.add_argument("--features", default=None,
                       help="JSON array: unseen-node feature vector")
    query.add_argument("--neighbors", default=None,
                       help="JSON array: unseen-node neighbor ids")
    query.set_defaults(func=_cmd_query)

    stream = sub.add_parser(
        "stream", help="generate a delta log, or replay one against a live "
                       "server (incremental mutation + blast-radius "
                       "invalidation + optional drift-triggered fine-tune)")
    mode = stream.add_mutually_exclusive_group(required=True)
    mode.add_argument("--generate", type=int, metavar="N", default=None,
                      help="generate N seeded dynamic-SBM deltas into --out")
    mode.add_argument("--replay", metavar="LOG", default=None,
                      help="JSONL delta log to replay against a live server")
    _add_serve_common(stream, require_checkpoint=False)
    stream.add_argument("--out", default=None,
                        help="generate: the JSONL log to write; "
                             "replay: also write the run summary JSON here")
    stream.add_argument("--delta-batch", type=int, default=32,
                        help="deltas applied per batch during replay")
    stream.add_argument("--probes", type=int, default=4,
                        help="embed probe requests issued after each batch")
    stream.add_argument("--start-seq", type=int, default=None,
                        help="skip log records below this seq (resume)")
    stream.add_argument("--finetune", action="store_true",
                        help="answer drift with an online fine-tune + "
                             "blue/green rollout of the result")
    stream.add_argument("--finetune-epochs", type=int, default=1,
                        help="extra epochs per drift-triggered fine-tune")
    stream.add_argument("--drift-threshold", type=float, default=0.9,
                        help="window-mean cosine below which the stream "
                             "counts as drifted")
    stream.add_argument("--drift-min-samples", type=int, default=8)
    stream.add_argument("--workdir", default="stream-finetune",
                        help="where fine-tuned checkpoints land (--finetune)")
    stream.set_defaults(func=_cmd_stream)

    trace = sub.add_parser("trace", help="summarize a JSONL trace from train --trace")
    trace.add_argument("path", help="trace file written by train --trace")
    trace.add_argument("--top", type=int, default=12,
                       help="number of slowest spans to show")
    trace.set_defaults(func=_cmd_trace)

    select = sub.add_parser("select", help="run Alg. 2 coreset selection standalone")
    select.add_argument("--dataset", default="cora")
    select.add_argument("--ratio", type=float, default=0.4)
    select.add_argument("--clusters", type=int, default=60)
    select.add_argument("--samples", type=int, default=300)
    select.add_argument("--seed", type=int, default=0)
    select.add_argument("--scale", type=float, default=1.0)
    select.set_defaults(func=_cmd_select)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    dtype = getattr(args, "dtype", None)
    if dtype is not None:
        from .autograd import set_default_dtype

        set_default_dtype(dtype)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
