"""2-D projections of node embeddings (the technique report's Appx. B4 shows
t-SNE maps of the selected coreset).

Two projectors are provided, both from scratch:

* :func:`pca_2d` — exact principal components (fast, deterministic);
* :func:`tsne_2d` — a compact Barnes-Hut-free t-SNE (exact pairwise
  gradients, fine for the few-thousand-node analogues used here).

:func:`coreset_scatter` packages the common use: project all nodes, tag
each with its label and coreset membership, and return plain arrays the
caller can plot or dump (no plotting dependency is assumed).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


def pca_2d(embeddings: np.ndarray) -> np.ndarray:
    """Project rows onto the top two principal components."""
    x = np.asarray(embeddings, dtype=np.float64)
    if x.ndim != 2 or x.shape[0] < 2:
        raise ValueError("need a (n>=2, d) matrix")
    centered = x - x.mean(axis=0, keepdims=True)
    # SVD of the centered matrix: right singular vectors = principal axes.
    _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
    return centered @ vt[:2].T


def _pairwise_affinities(x: np.ndarray, perplexity: float) -> np.ndarray:
    """Symmetrized conditional gaussian affinities with per-point bandwidth
    found by binary search on the target perplexity."""
    n = x.shape[0]
    sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        lo, hi = 1e-10, 1e10
        beta = 1.0
        row = sq[i].copy()
        row[i] = np.inf
        for _ in range(50):
            probs = np.exp(-row * beta)
            total = probs.sum()
            if total <= 0:
                beta = lo = max(lo / 2, 1e-12)
                continue
            probs /= total
            entropy = -(probs[probs > 0] * np.log(probs[probs > 0])).sum()
            if abs(entropy - target_entropy) < 1e-4:
                break
            if entropy > target_entropy:
                lo = beta
                beta = beta * 2 if hi >= 1e10 else (beta + hi) / 2
            else:
                hi = beta
                beta = (beta + lo) / 2
        p[i] = probs
    p = (p + p.T) / (2.0 * n)
    return np.maximum(p, 1e-12)


def tsne_2d(
    embeddings: np.ndarray,
    perplexity: float = 20.0,
    iterations: int = 300,
    learning_rate: float = 100.0,
    seed: int = 0,
) -> np.ndarray:
    """Exact t-SNE to 2-D with momentum and early exaggeration.

    O(n²) per iteration — intended for the benchmark-scale graphs
    (hundreds to a few thousand nodes).
    """
    x = np.asarray(embeddings, dtype=np.float64)
    n = x.shape[0]
    if n < 5:
        raise ValueError("t-SNE needs at least 5 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    p = _pairwise_affinities(x, perplexity)

    rng = np.random.default_rng(seed)
    y = rng.normal(scale=1e-3, size=(n, 2))
    velocity = np.zeros_like(y)
    exaggeration = 4.0
    for iteration in range(iterations):
        p_eff = p * exaggeration if iteration < 50 else p
        sq = ((y[:, None, :] - y[None, :, :]) ** 2).sum(axis=2)
        q_num = 1.0 / (1.0 + sq)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        coeff = (p_eff - q) * q_num
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
        momentum = 0.5 if iteration < 100 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y -= y.mean(axis=0, keepdims=True)
    return y


@dataclass
class ScatterData:
    """Plain arrays behind a coreset scatter plot."""

    coordinates: np.ndarray   # (n, 2)
    labels: Optional[np.ndarray]
    selected_mask: np.ndarray

    def to_rows(self) -> list:
        """(x, y, label, selected) tuples — trivially dumpable to CSV."""
        rows = []
        for i, (x, y) in enumerate(self.coordinates):
            label = int(self.labels[i]) if self.labels is not None else -1
            rows.append((float(x), float(y), label, bool(self.selected_mask[i])))
        return rows


def coreset_scatter(
    embeddings: np.ndarray,
    selected: np.ndarray,
    labels: Optional[np.ndarray] = None,
    method: str = "pca",
    seed: int = 0,
) -> ScatterData:
    """Project embeddings to 2-D and mark the coreset nodes.

    ``method`` is ``"pca"`` or ``"tsne"``.
    """
    if method == "pca":
        coords = pca_2d(embeddings)
    elif method == "tsne":
        coords = tsne_2d(embeddings, seed=seed)
    else:
        raise ValueError(f"unknown projection {method!r}")
    mask = np.zeros(embeddings.shape[0], dtype=bool)
    mask[np.asarray(selected, dtype=np.int64)] = True
    return ScatterData(coordinates=coords, labels=labels, selected_mask=mask)
