"""Evaluation protocols: linear eval, link prediction, graph classification."""

from .graph_classification import (
    GraphClassificationResult,
    evaluate_graph_classification,
    summarize_graphs,
)
from .link_prediction import LinkPredictionResult, evaluate_link_prediction
from .metrics import MeanStd, accuracy, macro_f1, roc_auc
from .node_classification import NodeClassificationResult, evaluate_embeddings
from .protocol import CurvePoint, TimedCurve, TimedEvaluator
from .visualize import ScatterData, coreset_scatter, pca_2d, tsne_2d

__all__ = [
    "accuracy",
    "macro_f1",
    "roc_auc",
    "MeanStd",
    "evaluate_embeddings",
    "NodeClassificationResult",
    "evaluate_link_prediction",
    "LinkPredictionResult",
    "evaluate_graph_classification",
    "summarize_graphs",
    "GraphClassificationResult",
    "TimedEvaluator",
    "TimedCurve",
    "CurvePoint",
    "pca_2d",
    "tsne_2d",
    "coreset_scatter",
    "ScatterData",
]
