"""Link-prediction evaluation (Sec. V-E1).

Protocol: split edges 70/10/20, pre-train the encoder on the *training-edge
graph only* (no leakage), embed, fit the pair decoder on training
positives/negatives, and report test accuracy (the paper's Tab. IX metric)
plus ROC-AUC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..graphs import Graph, split_edges
from ..nn import LinkDecoder
from .metrics import MeanStd, roc_auc


@dataclass
class LinkPredictionResult:
    """Aggregated link-prediction outcome over repeated splits."""

    test_accuracy: MeanStd
    test_auc: MeanStd

    def __str__(self) -> str:  # pragma: no cover
        return f"acc={self.test_accuracy} auc={self.test_auc}"


def evaluate_link_prediction(
    graph: Graph,
    embed_fn: Callable[[Graph], np.ndarray],
    seed: int = 0,
    trials: int = 3,
    decoder_epochs: int = 200,
) -> LinkPredictionResult:
    """Run the full leakage-free protocol.

    Parameters
    ----------
    embed_fn:
        ``train_graph -> (n, d) embeddings``.  It receives the graph with
        only training edges, so the method pre-trains from scratch per trial
        (matching the paper's setup where test edges are invisible).
    """
    accuracies: List[float] = []
    aucs: List[float] = []
    for trial in range(trials):
        rng = np.random.default_rng(seed + 97 * trial)
        split = split_edges(graph, rng)
        embeddings = embed_fn(split.train_graph)
        decoder = LinkDecoder(embedding_dim=embeddings.shape[1],
                              epochs=decoder_epochs, seed=seed + trial)
        decoder.fit(embeddings, split.train_pos, split.train_neg)

        pairs = np.concatenate([split.test_pos, split.test_neg])
        labels = np.concatenate([
            np.ones(len(split.test_pos)), np.zeros(len(split.test_neg)),
        ])
        scores = decoder.predict_proba(embeddings, pairs)
        accuracies.append(float(((scores >= 0.5) == labels.astype(bool)).mean()))
        aucs.append(roc_auc(scores, labels))

    return LinkPredictionResult(
        test_accuracy=MeanStd.from_values(accuracies),
        test_auc=MeanStd.from_values(aucs),
    )
