"""Timed-training evaluation protocol for Fig. 3's accuracy-vs-time curves.

During pre-training, the encoder is checkpoint-evaluated at fixed epoch
intervals; each checkpoint records (cumulative wall-clock seconds, linear-
eval accuracy), producing the series plotted in Fig. 3.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..graphs import Graph
from .node_classification import evaluate_embeddings


@dataclass
class CurvePoint:
    """One point of an accuracy-vs-time curve."""

    epoch: int
    seconds: float
    accuracy: float


@dataclass
class TimedCurve:
    """A labeled accuracy-vs-time series (one line of Fig. 3)."""

    label: str
    points: List[CurvePoint]

    def best_accuracy(self) -> float:
        return max(p.accuracy for p in self.points) if self.points else float("nan")

    def final_accuracy(self) -> float:
        return self.points[-1].accuracy if self.points else float("nan")

    def time_to_reach(self, accuracy: float) -> Optional[float]:
        """Seconds until the curve first reaches ``accuracy`` (None = never)."""
        for point in self.points:
            if point.accuracy >= accuracy:
                return point.seconds
        return None


class TimedEvaluator:
    """Callback object plugged into a trainer's per-epoch hook.

    Evaluation time is *excluded* from the recorded wall clock (the paper
    measures training time, not the probe's cost).

    Legacy interface: it keeps its own ``start()``-reset clock, which does
    not see engine setup/selection time.  Engine-driven runs should prefer
    :class:`repro.engine.TimedEvalHook`, which reads the loop's canonical
    clock (one origin shared by every method, probe cost excluded via
    ``loop.exclude_seconds``) and is passed as ``fit(graph, hooks=[...])``.
    """

    def __init__(
        self,
        graph: Graph,
        embed_fn: Callable[[], np.ndarray],
        label: str,
        every: int = 5,
        eval_trials: int = 2,
        eval_seed: int = 0,
        decoder_epochs: int = 120,
    ) -> None:
        self.graph = graph
        self.embed_fn = embed_fn
        self.curve = TimedCurve(label=label, points=[])
        self.every = max(1, every)
        self.eval_trials = eval_trials
        self.eval_seed = eval_seed
        self.decoder_epochs = decoder_epochs
        self._start = time.perf_counter()
        self._eval_overhead = 0.0
        self.extra_seconds = 0.0  # e.g. selection time incurred before epoch 0

    def start(self) -> "TimedEvaluator":
        """Reset the wall clock (call immediately before training)."""
        self._start = time.perf_counter()
        self._eval_overhead = 0.0
        return self

    def __call__(self, epoch: int, _trainer=None) -> None:
        if epoch % self.every != 0:
            return
        elapsed = time.perf_counter() - self._start - self._eval_overhead + self.extra_seconds
        probe_start = time.perf_counter()
        result = evaluate_embeddings(
            self.graph,
            self.embed_fn(),
            seed=self.eval_seed,
            trials=self.eval_trials,
            decoder_epochs=self.decoder_epochs,
        )
        self._eval_overhead += time.perf_counter() - probe_start
        self.curve.points.append(
            CurvePoint(epoch=epoch, seconds=elapsed, accuracy=result.test_accuracy.mean)
        )
