"""Evaluation metrics: accuracy, macro-F1, ROC-AUC, and mean ± std helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of exact matches."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if predictions.size == 0:
        raise ValueError("cannot score empty predictions")
    return float((predictions == labels).mean())


def macro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores (classes absent from both
    predictions and labels are skipped)."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    classes = np.union1d(np.unique(labels), np.unique(predictions))
    scores = []
    for c in classes:
        tp = float(((predictions == c) & (labels == c)).sum())
        fp = float(((predictions == c) & (labels != c)).sum())
        fn = float(((predictions != c) & (labels == c)).sum())
        if tp + fp + fn == 0:
            continue
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
        scores.append(f1)
    return float(np.mean(scores)) if scores else 0.0


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Binary ROC-AUC via the rank statistic (ties get average ranks)."""
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels).astype(bool)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC-AUC requires both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    pos_rank_sum = ranks[labels].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


@dataclass
class MeanStd:
    """Aggregated repeated-trial metric, formatted paper-style (``84.06±0.21``)."""

    mean: float
    std: float
    values: tuple

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "MeanStd":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ValueError("no values to aggregate")
        return cls(mean=float(arr.mean()), std=float(arr.std()), values=tuple(arr.tolist()))

    def as_percent(self) -> str:
        return f"{100 * self.mean:.2f}±{100 * self.std:.2f}"

    def __str__(self) -> str:  # pragma: no cover - formatting
        return self.as_percent()
