"""Graph-classification evaluation (Sec. V-E2).

Protocol: pre-train an encoder over the graph collection, summarize each
graph with the SUM readout (``z_i = Σ_v H_i[v]``), fit the linear decoder on
70% of the graphs, and report test accuracy over repeated splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..graphs import Graph, split_graphs
from ..nn import LogisticRegressionDecoder
from .metrics import MeanStd, accuracy


@dataclass
class GraphClassificationResult:
    """Aggregated graph-classification outcome."""

    test_accuracy: MeanStd

    def __str__(self) -> str:  # pragma: no cover
        return f"acc={self.test_accuracy}"


def summarize_graphs(
    graphs: Sequence[Graph],
    embed_fn: Callable[[Graph], np.ndarray],
    readout: str = "sum",
) -> np.ndarray:
    """Embed every graph and pool node representations into graph vectors."""
    summaries = []
    for graph in graphs:
        h = embed_fn(graph)
        if readout == "sum":
            summaries.append(h.sum(axis=0))
        elif readout == "mean":
            summaries.append(h.mean(axis=0))
        else:
            raise ValueError(f"unknown readout {readout!r}")
    return np.stack(summaries)


def evaluate_graph_classification(
    graphs: Sequence[Graph],
    labels: np.ndarray,
    embed_fn: Callable[[Graph], np.ndarray],
    seed: int = 0,
    trials: int = 3,
    readout: str = "sum",
    decoder_epochs: int = 200,
) -> GraphClassificationResult:
    """SUM-readout linear evaluation over repeated 70/10/20 graph splits."""
    labels = np.asarray(labels)
    if len(graphs) != labels.shape[0]:
        raise ValueError("one label per graph required")
    summaries = summarize_graphs(graphs, embed_fn, readout=readout)
    # Standardize summaries: SUM readout scales with graph size, and the
    # linear decoder benefits from comparable feature magnitudes.
    mean = summaries.mean(axis=0, keepdims=True)
    std = summaries.std(axis=0, keepdims=True) + 1e-9
    summaries = (summaries - mean) / std

    num_classes = int(labels.max()) + 1
    scores: List[float] = []
    for trial in range(trials):
        rng = np.random.default_rng(seed + 31 * trial)
        split = split_graphs(len(graphs), rng)
        decoder = LogisticRegressionDecoder(
            num_features=summaries.shape[1],
            num_classes=num_classes,
            epochs=decoder_epochs,
            seed=seed + trial,
        )
        decoder.fit(summaries[split.train], labels[split.train])
        scores.append(accuracy(decoder.predict(summaries[split.test]), labels[split.test]))
    return GraphClassificationResult(test_accuracy=MeanStd.from_values(scores))
