"""Wall-clock instrumentation for the efficiency experiments (Tab. V, Fig. 4b/c)."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator


@dataclass
class Stopwatch:
    """Accumulates named wall-clock segments.

    Usage::

        watch = Stopwatch()
        with watch.measure("selection"):
            ...
        watch.seconds("selection")
    """

    segments: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.segments[name] = self.segments.get(name, 0.0) + elapsed
            self.counts[name] = self.counts.get(name, 0) + 1

    def seconds(self, name: str) -> float:
        return self.segments.get(name, 0.0)

    def mean_seconds(self, name: str) -> float:
        count = self.counts.get(name, 0)
        return self.segments.get(name, 0.0) / count if count else 0.0

    def total(self) -> float:
        return sum(self.segments.values())

    def report(self) -> str:
        """Human-readable summary, longest segment first."""
        lines = [
            f"  {name}: {secs:.3f}s ({self.counts[name]}x)"
            for name, secs in sorted(self.segments.items(), key=lambda kv: -kv[1])
        ]
        return "\n".join(lines)
