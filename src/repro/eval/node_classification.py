"""Node-classification linear evaluation (Sec. V-A2).

Protocol: freeze the pre-trained encoder's embeddings, draw a random
10%/10%/80% node split, fit the l2-regularized linear decoder on the
training nodes, report test accuracy; repeat over several splits and
aggregate mean ± std — exactly the paper's procedure for Tab. IV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..graphs import Graph, split_nodes
from ..nn import LogisticRegressionDecoder
from ..perf import record
from .metrics import MeanStd, accuracy


@dataclass
class NodeClassificationResult:
    """Aggregated linear-eval outcome."""

    test_accuracy: MeanStd
    val_accuracy: MeanStd

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"test={self.test_accuracy} val={self.val_accuracy}"


def evaluate_embeddings(
    graph: Graph,
    embeddings: np.ndarray,
    seed: int = 0,
    trials: int = 10,
    train_frac: float = 0.1,
    val_frac: float = 0.1,
    l2: float = 1e-3,
    decoder_epochs: int = 200,
) -> NodeClassificationResult:
    """Linear-eval ``embeddings`` against ``graph.labels`` over random splits."""
    if graph.labels is None:
        raise ValueError("node classification needs labels")
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.shape[0] != graph.num_nodes:
        raise ValueError("one embedding row per node required")

    test_scores: List[float] = []
    val_scores: List[float] = []
    with record("eval.linear_probe"):
        for trial in range(trials):
            rng = np.random.default_rng(seed + 1000 * trial)
            split = split_nodes(
                graph.num_nodes, rng, train_frac=train_frac, val_frac=val_frac,
                labels=graph.labels, stratified=True,
            )
            decoder = LogisticRegressionDecoder(
                num_features=embeddings.shape[1],
                num_classes=graph.num_classes,
                l2=l2,
                epochs=decoder_epochs,
                seed=seed + trial,
            )
            decoder.fit(embeddings[split.train], graph.labels[split.train])
            test_scores.append(accuracy(decoder.predict(embeddings[split.test]), graph.labels[split.test]))
            if split.val.size:
                val_scores.append(accuracy(decoder.predict(embeddings[split.val]), graph.labels[split.val]))
            else:
                val_scores.append(test_scores[-1])

    return NodeClassificationResult(
        test_accuracy=MeanStd.from_values(test_scores),
        val_accuracy=MeanStd.from_values(val_scores),
    )
