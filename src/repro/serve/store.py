"""Embedding store: precomputed full-graph snapshots + a per-node LRU.

Consistency model: a snapshot is the frozen encoder applied to the whole
served graph exactly as the offline ``embed`` path would — the same
arrays, the same op order — so served embeddings are bit-identical to
offline ones for any node.  Snapshots are immutable and content-addressed
by model version (which is itself content-addressed by checkpoint digest),
so a cache entry can never be stale with respect to its version: version
ids change when weights change.

Persistence: with a ``snapshot_dir``, each snapshot is written crash-safely
(``atomic_savez``) with the engine's SHA-256 digest convention.  On reload
the store accepts only digest-valid files whose recorded model fingerprint
matches the registered version — a process killed mid-snapshot leaves
either a valid older file or a temp file that is ignored, and a corrupt
file is skipped and recomputed (the same recovery contract as training
checkpoints).
"""

from __future__ import annotations

import struct
import threading
import zipfile
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Dict, Optional, Set, Union

import numpy as np

from ..engine import (
    atomic_savez,
    pack_json,
    payload_digest,
    unpack_json,
)
from ..graphs import Graph
from ..obs import emit_event, span
from .errors import SnapshotError, StaleVersionError, UnknownNodeError
from .metrics import ServeMetrics
from .registry import ModelRegistry, ModelVersion

_SNAPSHOT_PREFIX = "emb-"

#: Everything a corrupt ``.npz`` can raise mid-read: zip structure errors
#: surface as ``BadZipFile``/``OSError``/``EOFError``/``struct.error``,
#: flipped bytes in a compressed member as ``zlib.error``, and mangled
#: array headers as ``ValueError``/``KeyError``.  A snapshot read must
#: convert *all* of these into a structured rejection — under concurrent
#: readers a half-written or bit-rotted file is an expected input, not an
#: internal error.
_CORRUPT_READ_ERRORS = (OSError, ValueError, KeyError, EOFError,
                        zipfile.BadZipFile, zlib.error, struct.error)


class EmbeddingStore:
    """Versioned full-graph embedding snapshots with an LRU node cache.

    The LRU is keyed ``(model_version, node_id)`` and fronts the snapshot
    matrices: with many versions resident the matrices can be dropped
    (:meth:`evict_snapshot`) while hot nodes stay cached, and the hit/miss
    counters feed the serving cache-hit-rate metric.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        graph: Graph,
        cache_size: int = 4096,
        snapshot_dir: Optional[Union[str, Path]] = None,
        metrics: Optional[ServeMetrics] = None,
        health=None,
    ):
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.registry = registry
        self.graph = graph
        self.cache_size = cache_size
        self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.metrics = metrics or ServeMetrics()
        #: Optional :class:`~repro.serve.resilience.ServerHealth` fed by
        #: snapshot rejections and failures (set by the server).
        self.health = health
        self._snapshots: Dict[str, np.ndarray] = {}
        self._lru: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self._compute_locks: Dict[str, threading.Lock] = {}
        # Streaming state: rows invalidated by a blast radius, per version;
        # the per-row recompute path (the server installs its inductive
        # encoder); and whether the served graph has mutated since start
        # (which disables on-disk snapshots — they describe the old graph).
        self._stale: Dict[str, Set[int]] = {}
        self._row_computer: Optional[Callable[[str, int], np.ndarray]] = None
        self._mutated = False
        if self.snapshot_dir is not None:
            self.snapshot_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, version_id: Optional[str] = None) -> np.ndarray:
        """Full-graph embedding matrix for a version (computed once).

        Resolution order: in-memory → digest-valid file in
        ``snapshot_dir`` → recompute (and persist).  The returned array is
        the live snapshot; callers must not mutate it.

        Rows invalidated by a graph mutation (:meth:`invalidate`) are
        repaired before the matrix is handed out: through the registered
        per-row computer when one exists — warm rows stay untouched
        bit-for-bit — or by a full recompute on the current graph
        otherwise.
        """
        version = self.registry.get(version_id)
        vid = version.version_id
        with self._lock:
            cached = self._snapshots.get(vid)
            has_stale = bool(self._stale.get(vid))
            if cached is not None and not has_stale:
                return cached
            # One materializer per version: concurrent first-touch queries
            # would otherwise duplicate the full-graph forward and race the
            # same snapshot filename.
            compute_lock = self._compute_locks.setdefault(
                vid, threading.Lock())
        with compute_lock:
            with self._lock:
                cached = self._snapshots.get(vid)
                stale = sorted(self._stale.get(vid, ()))
            if cached is not None and not stale:
                return cached
            if cached is not None and self._row_computer is not None:
                # Lazy repair: recompute only the stale rows in place; every
                # other row of the resident matrix is left untouched.
                for node in stale:
                    cached[node] = np.asarray(self._row_computer(vid, node))
                with self._lock:
                    self._stale.pop(vid, None)
                self.metrics.observe_stale_refresh(len(stale))
                return cached
            loaded = self._load_snapshot(version)
            if loaded is None:
                try:
                    with span("serve.snapshot_compute",
                              version=vid):
                        loaded = version.artifact.embed(self.graph)
                except Exception as exc:  # noqa: BLE001 - structured below
                    # A model that cannot embed the served graph must fail
                    # as a structured envelope, not a raw traceback across
                    # the transport.
                    self._note_failure(version, f"recompute failed: {exc}")
                    raise SnapshotError(
                        f"cannot materialize snapshot for "
                        f"{vid}: {exc}",
                        version=vid,
                    ) from exc
                self._persist_snapshot(version, loaded)
            with self._lock:
                self._snapshots[vid] = loaded
                # A full materialization ran on the *current* graph, so it
                # is fresh by construction.
                self._stale.pop(vid, None)
        return loaded

    def _note_failure(self, version: ModelVersion, reason: str) -> None:
        """Count a snapshot failure and degrade health (if attached)."""
        self.metrics.observe_snapshot_failure()
        if self.health is not None:
            self.health.note_snapshot_failure()
        emit_event("serve.snapshot_failed", version=version.version_id,
                   reason=reason)

    def evict_snapshot(self, version_id: str) -> None:
        """Drop a version's in-memory matrix (LRU entries survive)."""
        with self._lock:
            self._snapshots.pop(version_id, None)

    def _snapshot_path(self, version: ModelVersion) -> Optional[Path]:
        if self.snapshot_dir is None:
            return None
        return self.snapshot_dir / f"{_SNAPSHOT_PREFIX}{version.version_id}.npz"

    def _persist_snapshot(self, version: ModelVersion, embeddings: np.ndarray) -> None:
        path = self._snapshot_path(version)
        if path is None or self._mutated:
            # After a graph mutation the on-disk layout describes a graph
            # that no longer exists; never overwrite those files with
            # mutated-graph matrices under the same name.
            return
        payload = {
            "embeddings": np.ascontiguousarray(embeddings),
            "meta/snapshot": pack_json({
                "version": version.version_id,
                "fingerprint": version.artifact.fingerprint,
                "num_nodes": int(embeddings.shape[0]),
                # Serving precision: snapshots written by a float32 process
                # reload as float32 even in a float64 reader (and vice
                # versa), keeping cached and recomputed embeddings
                # byte-comparable per version.
                "dtype": str(embeddings.dtype),
            }),
        }
        payload["meta/digest"] = np.frombuffer(
            payload_digest(payload).encode(), dtype=np.uint8
        )
        atomic_savez(path, payload)
        emit_event("serve.snapshot_written", version=version.version_id,
                   path=str(path))

    def _reject(self, version: ModelVersion, path: Path,
                reason: str) -> None:
        """Record a rejected (corrupt/mismatched) snapshot file.

        Rejection is recoverable — the caller recomputes — but it is a
        health signal: bit rot under a live server degrades it until the
        incident ages out of the health window.
        """
        emit_event("serve.snapshot_rejected", version=version.version_id,
                   path=str(path), reason=reason)
        self.metrics.observe_snapshot_failure()
        if self.health is not None:
            self.health.note_snapshot_failure()

    def _load_snapshot(self, version: ModelVersion) -> Optional[np.ndarray]:
        """Digest-valid snapshot from disk, or None (corrupt files skipped).

        The *entire* read — zip open, member decompression, digest check,
        meta parse, dtype restore — sits under one corrupt-read guard:
        a reader racing bit rot or a torn write gets a structured
        rejection (and a recompute), never a raw ``zlib.error`` or
        ``KeyError`` escaping to the client.
        """
        path = self._snapshot_path(version)
        if path is None or not path.is_file() or self._mutated:
            # A digest-valid file written before a graph mutation is
            # perfectly healthy — and wrong: it was computed against the
            # old graph.  Once mutated, disk snapshots are dead to us.
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                contents = {key: data[key] for key in data.files}
            if "meta/digest" not in contents:
                self._reject(version, path, "missing digest")
                return None
            stored = bytes(contents["meta/digest"]).decode(errors="replace")
            if stored != payload_digest(contents):
                self._reject(version, path, "digest mismatch")
                return None
            meta = unpack_json(contents["meta/snapshot"])
            if meta.get("fingerprint") != version.artifact.fingerprint:
                # Same version id but different weights can only happen if
                # the directory is shared across incompatible registries;
                # refuse.
                self._reject(version, path, "fingerprint mismatch")
                return None
            embeddings = np.asarray(contents["embeddings"])
            recorded = meta.get("dtype")
            if recorded is not None and str(embeddings.dtype) != recorded:
                embeddings = embeddings.astype(recorded)
        except _CORRUPT_READ_ERRORS as exc:
            self._reject(version, path, f"unreadable: {exc}")
            return None
        return embeddings

    def verify_snapshot_file(self, path: Union[str, Path]) -> bool:
        """Whether a snapshot file is readable and digest-valid."""
        path = Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                contents = {key: data[key] for key in data.files}
        except _CORRUPT_READ_ERRORS:
            return False
        if "meta/digest" not in contents:
            return False
        stored = bytes(contents["meta/digest"]).decode(errors="replace")
        return stored == payload_digest(contents)

    def persist_all(self) -> int:
        """Write every in-memory snapshot that is not (validly) on disk.

        The graceful-drain path: a server shutting down persists its
        materialized snapshots so a restarted process serves identical
        embeddings from disk instead of recomputing.  Returns the number
        of files written; a no-op without a ``snapshot_dir``.
        """
        if self.snapshot_dir is None or self._mutated:
            return 0
        with self._lock:
            resident = dict(self._snapshots)
        written = 0
        for version_id, embeddings in resident.items():
            try:
                version = self.registry.get(version_id)
            except StaleVersionError:
                continue  # e.g. a rolled-back candidate still resident
            path = self._snapshot_path(version)
            if path is not None and path.is_file() \
                    and self.verify_snapshot_file(path):
                continue
            self._persist_snapshot(version, embeddings)
            written += 1
        return written

    # ------------------------------------------------------------------
    # Streaming: blast-radius invalidation + lazy per-row refresh
    # ------------------------------------------------------------------
    def set_row_computer(
        self, fn: Optional[Callable[[str, int], np.ndarray]]
    ) -> None:
        """Register the per-row recompute path for stale rows.

        ``fn(version_id, node) -> row`` must return exactly what a full
        offline embed of the *current* graph would put in that row — the
        server installs its :class:`InductiveEncoder` here, whose ego
        forward is bit-identical to the full forward at the center node.
        """
        self._row_computer = fn

    def resident_snapshot(
        self, version_id: Optional[str] = None
    ) -> Optional[np.ndarray]:
        """The in-memory matrix if materialized, else None (never computes)."""
        version = self.registry.get(version_id)
        with self._lock:
            return self._snapshots.get(version.version_id)

    def stale_rows(self, version_id: Optional[str] = None) -> list:
        """Sorted node ids currently awaiting lazy refresh for a version."""
        version = self.registry.get(version_id)
        with self._lock:
            return sorted(self._stale.get(version.version_id, ()))

    def invalidate(self, version_id: Optional[str], node_ids) -> dict:
        """Mark specific rows of a version stale: the blast-radius entry.

        Invalidated rows are dropped from the LRU and recompute lazily on
        their next read (through the registered row computer); every other
        row — resident matrix and LRU alike — is left untouched.  Returns
        a counts dict (``invalidated`` / ``preserved`` / total ``stale``)
        and feeds the same numbers into the serving metrics.
        """
        version = self.registry.get(version_id)
        vid = version.version_id
        nodes = np.unique(np.asarray(node_ids, dtype=np.int64))
        nodes = nodes[(nodes >= 0) & (nodes < self.graph.num_nodes)]
        with self._lock:
            resident = self._snapshots.get(vid)
            total = resident.shape[0] if resident is not None \
                else self.graph.num_nodes
            stale = self._stale.setdefault(vid, set())
            stale.update(int(x) for x in nodes)
            for x in nodes:
                self._lru.pop((vid, int(x)), None)
            stale_now = len(stale)
        invalidated = int(nodes.size)
        preserved = max(int(total) - stale_now, 0)
        self.metrics.observe_invalidation(invalidated, preserved)
        emit_event("serve.rows_invalidated", version=vid,
                   invalidated=invalidated, preserved=preserved)
        return {"invalidated": invalidated, "preserved": preserved,
                "stale": stale_now}

    def rebind_graph(self, graph: Graph) -> None:
        """Swap the served graph for a mutated successor.

        Resident snapshot matrices are padded with zero rows for added
        nodes — into a *new* array, so matrices handed out before the
        mutation stay frozen — and the padded rows are marked stale.  From
        here on disk snapshots are disabled (they describe the old graph)
        and warm rows survive untouched until something invalidates them.
        """
        n = graph.num_nodes
        with self._lock:
            self.graph = graph
            self._mutated = True
            for vid, snap in list(self._snapshots.items()):
                old_n = snap.shape[0]
                if old_n < n:
                    pad = np.zeros((n - old_n, snap.shape[1]),
                                   dtype=snap.dtype)
                    self._snapshots[vid] = np.vstack([snap, pad])
                    self._stale.setdefault(vid, set()).update(
                        range(old_n, n))
        self.metrics.observe_graph_rebind()
        emit_event("serve.graph_rebind", num_nodes=n)

    def _refresh_row(self, version: ModelVersion, node: int) -> np.ndarray:
        """Recompute one stale row (and heal the resident matrix)."""
        vid = version.version_id
        fn = self._row_computer
        if fn is None:
            # No per-row path registered: fall back to a full recompute on
            # the current graph (standalone-store usage).
            with self._lock:
                self._snapshots.pop(vid, None)
            return np.array(self.snapshot(vid)[node])
        row = np.asarray(fn(vid, node))
        with self._lock:
            resident = self._snapshots.get(vid)
            if resident is not None:
                resident[node] = row
            stale = self._stale.get(vid)
            if stale is not None:
                stale.discard(node)
                if not stale:
                    self._stale.pop(vid, None)
        self.metrics.observe_stale_refresh()
        return np.array(row)

    # ------------------------------------------------------------------
    # Per-node reads (LRU front)
    # ------------------------------------------------------------------
    def embedding(self, node_id: int, version_id: Optional[str] = None) -> np.ndarray:
        """One node's embedding under a version, through the LRU cache.

        Stale rows (see :meth:`invalidate`) bypass the LRU and recompute
        through the registered row computer before being re-cached."""
        version = self.registry.get(version_id)
        node = self._check_node(node_id)
        key = (version.version_id, node)
        with self._lock:
            stale_set = self._stale.get(version.version_id)
            is_stale = stale_set is not None and node in stale_set
            hit = None if is_stale else self._lru.get(key)
            if hit is not None:
                self._lru.move_to_end(key)
        if hit is not None:
            self.metrics.observe_cache(True)
            return hit
        self.metrics.observe_cache(False)
        if is_stale:
            row = self._refresh_row(version, node)
        else:
            row = np.array(self.snapshot(version.version_id)[node])
        with self._lock:
            self._lru[key] = row
            self._lru.move_to_end(key)
            while len(self._lru) > self.cache_size:
                self._lru.popitem(last=False)
        return row

    def _check_node(self, node_id) -> int:
        if isinstance(node_id, bool) or not isinstance(node_id, (int, np.integer)):
            raise UnknownNodeError(
                f"node id must be an integer, got {type(node_id).__name__}",
                node=repr(node_id),
            )
        node = int(node_id)
        if not 0 <= node < self.graph.num_nodes:
            raise UnknownNodeError(
                f"node {node} is outside the served graph "
                f"(0..{self.graph.num_nodes - 1})",
                node=node, num_nodes=self.graph.num_nodes,
            )
        return node

    @property
    def cached_nodes(self) -> int:
        with self._lock:
            return len(self._lru)
