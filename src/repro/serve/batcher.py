"""Request-coalescing microbatcher.

Concurrent queries hit a single queue; one worker thread drains it into
batches bounded by a size watermark (``max_batch``) and a time watermark
(``max_wait_ms``, measured from the first request of the batch), then runs
one batched encode for the whole group.  Callers block on a per-request
:class:`~concurrent.futures.Future`, so the thread-pool front end stays
synchronous while forward passes amortize python/scipy dispatch across the
batch — that amortization is the measured win in ``BENCH_serve.json``.

Failure isolation: the handler receives the whole batch and may return an
``Exception`` instance in any slot; only that request's future fails.  A
handler that raises outright fails every request in the batch with the
same exception — nothing is ever silently dropped.

Resilience (the serving-resilience layer rides here):

* a request submitted with a :class:`~repro.serve.resilience.Deadline`
  is re-checked at *dequeue* — work whose budget expired while queued is
  failed with a structured ``deadline_exceeded`` and never handed to the
  handler (the pre-encode check inside the handler catches the rest);
* :meth:`close` that cannot join the worker within its timeout marks the
  metrics ``dirty_shutdown`` and raises instead of silently leaking a
  thread;
* a dead worker (chaos: :meth:`~repro.resilience.FaultPlan.
  kill_batcher_worker`) is replaced immediately — the drain loop runs
  under a supervisor that starts a fresh worker whenever the old one dies
  with the batcher still open, so futures already queued behind the corpse
  are never stranded.  :meth:`submit` re-checks liveness as a second line
  of defense.  Every replacement is counted in
  ``ServeMetrics.worker_restarts``.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence

from ..obs import emit_event
from .errors import DeadlineExceededError
from .metrics import ServeMetrics
from .resilience import Deadline

_STOP = object()
_KILL = object()   # fault injection: worker exits abruptly, queue survives


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into batched handler calls.

    Parameters
    ----------
    handler:
        ``handler(items) -> results`` with one result per item, in order.
        A result slot may be an ``Exception`` to fail just that item.
    max_batch:
        Size watermark: a batch is dispatched as soon as it has this many
        requests.
    max_wait_ms:
        Time watermark: a batch waits at most this long (after its first
        request) for company before dispatching, bounding added latency.
    """

    def __init__(
        self,
        handler: Callable[[List[object]], Sequence[object]],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        metrics: Optional[ServeMetrics] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.handler = handler
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics or ServeMetrics()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._worker_lock = threading.Lock()
        self._worker = self._start_worker()

    def _start_worker(self) -> threading.Thread:
        worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        worker.start()
        return worker

    # ------------------------------------------------------------------
    def submit(self, item: object,
               deadline: Optional[Deadline] = None) -> "Future":
        """Enqueue one request; resolve/fail via the returned future.

        ``deadline`` (optional) is re-checked when the worker dequeues the
        request: if the budget expired while queued, the future fails with
        :class:`DeadlineExceededError` and the handler never sees the item.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        with self._worker_lock:
            if not self._worker.is_alive() and not self._closed:
                # Normally the supervisor already replaced a dead worker;
                # this is the backstop for a death it could not see.
                self._restart_worker()
        future: "Future" = Future()
        self._queue.put((item, future, deadline))
        return future

    def _restart_worker(self) -> None:
        """Replace a dead worker (caller holds ``_worker_lock``)."""
        self.metrics.observe_worker_restart()
        emit_event("serve.batcher_worker_restarted")
        self._worker = self._start_worker()

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding requests, then stop the worker.

        A worker that fails to join within ``timeout`` is a *dirty*
        shutdown: the metrics are flagged and a ``RuntimeError`` raised so
        the leak is loud, never silent.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join(timeout)
        if self._worker.is_alive():
            self.metrics.mark_dirty_shutdown()
            emit_event("serve.batcher_dirty_shutdown", timeout_s=float(timeout))
            raise RuntimeError(
                f"batcher worker failed to join within {timeout}s; "
                "shutdown is dirty (a worker thread is still running)"
            )

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _inject_worker_death(self) -> None:
        """Chaos hook (see :meth:`repro.resilience.FaultPlan.
        kill_batcher_worker`): the worker exits abruptly at this queue
        position without honoring ``_STOP`` semantics — exactly what an
        uncaught error in the drain loop would look like from outside."""
        self._queue.put(_KILL)

    def _expire(self, entry: tuple) -> bool:
        """Fail a dequeued entry whose deadline lapsed while queued."""
        item, future, deadline = entry
        if deadline is None or not deadline.expired:
            return False
        del item
        self.metrics.observe_deadline_expired("dequeue")
        future.set_exception(DeadlineExceededError(
            f"deadline of {deadline.budget_ms:.0f}ms expired while queued",
            stage="dequeue", budget_ms=deadline.budget_ms,
        ))
        return True

    def _run(self) -> None:
        """Worker entry point: drain under a restart supervisor.

        An abnormal exit (injected kill, or an uncaught bug in the drain
        loop) with the batcher still open starts a replacement worker from
        the dying thread itself — requests already sitting in the queue
        behind the corpse resolve instead of hanging forever.  A normal
        ``_STOP`` exit restarts nothing.
        """
        try:
            clean = self._drain()
        except Exception:  # noqa: BLE001 - a worker bug must not strand the queue
            clean = False
        if not clean and not self._closed:
            with self._worker_lock:
                if not self._closed:
                    self._restart_worker()

    def _drain(self) -> bool:
        """The batching loop; True on a clean ``_STOP`` exit."""
        while True:
            first = self._queue.get()
            if first is _STOP:
                return True
            if first is _KILL:
                return False  # injected death: abrupt exit, queue left as-is
            if self._expire(first):
                continue
            batch = [first]
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            stop_after = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    entry = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if entry is _STOP:
                    stop_after = True
                    break
                if entry is _KILL:
                    self._dispatch(batch)
                    return False
                if self._expire(entry):
                    continue
                batch.append(entry)
            self._dispatch(batch)
            if stop_after:
                return True

    def _dispatch(self, batch: List[tuple]) -> None:
        self.metrics.observe_batch(len(batch))
        items = [item for item, _, _ in batch]
        try:
            results = self.handler(items)
        except Exception as exc:  # noqa: BLE001 - forwarded, never swallowed
            # The future carries the failure to the blocked caller; the
            # worker itself must survive to serve the next batch.
            for _, future, _ in batch:
                future.set_exception(exc)
            return
        if len(results) != len(batch):
            mismatch = RuntimeError(
                f"batch handler returned {len(results)} results "
                f"for {len(batch)} requests"
            )
            for _, future, _ in batch:
                future.set_exception(mismatch)
            return
        for (_, future, _), result in zip(batch, results):
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)
