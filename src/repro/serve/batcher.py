"""Request-coalescing microbatcher.

Concurrent queries hit a single queue; one worker thread drains it into
batches bounded by a size watermark (``max_batch``) and a time watermark
(``max_wait_ms``, measured from the first request of the batch), then runs
one batched encode for the whole group.  Callers block on a per-request
:class:`~concurrent.futures.Future`, so the thread-pool front end stays
synchronous while forward passes amortize python/scipy dispatch across the
batch — that amortization is the measured win in ``BENCH_serve.json``.

Failure isolation: the handler receives the whole batch and may return an
``Exception`` instance in any slot; only that request's future fails.  A
handler that raises outright fails every request in the batch with the
same exception — nothing is ever silently dropped.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable, List, Optional, Sequence

from .metrics import ServeMetrics

_STOP = object()


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into batched handler calls.

    Parameters
    ----------
    handler:
        ``handler(items) -> results`` with one result per item, in order.
        A result slot may be an ``Exception`` to fail just that item.
    max_batch:
        Size watermark: a batch is dispatched as soon as it has this many
        requests.
    max_wait_ms:
        Time watermark: a batch waits at most this long (after its first
        request) for company before dispatching, bounding added latency.
    """

    def __init__(
        self,
        handler: Callable[[List[object]], Sequence[object]],
        max_batch: int = 32,
        max_wait_ms: float = 2.0,
        metrics: Optional[ServeMetrics] = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.handler = handler
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics or ServeMetrics()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    def submit(self, item: object) -> "Future":
        """Enqueue one request; resolve/fail via the returned future."""
        if self._closed:
            raise RuntimeError("batcher is closed")
        future: "Future" = Future()
        self._queue.put((item, future))
        return future

    def close(self, timeout: float = 5.0) -> None:
        """Drain outstanding requests, then stop the worker."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join(timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            stop_after = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    entry = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if entry is _STOP:
                    stop_after = True
                    break
                batch.append(entry)
            self._dispatch(batch)
            if stop_after:
                return

    def _dispatch(self, batch: List[tuple]) -> None:
        self.metrics.observe_batch(len(batch))
        items = [item for item, _ in batch]
        try:
            results = self.handler(items)
        except Exception as exc:  # noqa: BLE001 - forwarded, never swallowed
            # The future carries the failure to the blocked caller; the
            # worker itself must survive to serve the next batch.
            for _, future in batch:
                future.set_exception(exc)
            return
        if len(results) != len(batch):
            mismatch = RuntimeError(
                f"batch handler returned {len(results)} results "
                f"for {len(batch)} requests"
            )
            for _, future in batch:
                future.set_exception(mismatch)
            return
        for (_, future), result in zip(batch, results):
            if isinstance(result, Exception):
                future.set_exception(result)
            else:
                future.set_result(result)
