"""Serving resilience: admission control, deadlines, health, retries.

Four small, composable pieces keep the serving tier standing under load
instead of collapsing into an unbounded queue:

* :class:`TokenBucket` + :class:`AdmissionController` — a rate limiter and
  an inflight-watermark gate in front of ``EmbeddingServer.handle``.  Work
  beyond capacity is *shed* with a structured ``overloaded`` envelope
  carrying ``retry_after_ms``, so goodput stays near saturation while
  excess demand backs off (load shedding beats queueing: a queue deeper
  than the deadline budget serves nobody).
* :class:`Deadline` — a per-request latency budget (``deadline_ms``)
  checked at admission, at batcher dequeue, and immediately pre-encode.
  Expired work is dropped, never computed; every drop is counted per
  stage in :class:`~repro.serve.metrics.ServeMetrics`.
* :class:`ServerHealth` — a warming → ready → degraded → draining state
  machine fed by snapshot failures, the recent shed rate, and a p99
  latency watermark; backs the ``health``/``ready`` server ops and gates
  blue/green rollouts.
* :class:`RetryPolicy` — client-side capped exponential backoff with
  seeded jitter that honors the server's ``retry_after_ms`` hint and
  retries only idempotent ops (reads; never ``rollout``/``rollback``).

Everything takes an injectable ``clock`` so the chaos tier can test
timing behavior deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from ..obs import emit_event
from .errors import DeadlineExceededError, NotReadyError, OverloadedError
from .metrics import ServeMetrics


class TokenBucket:
    """Classic token-bucket rate limiter (thread-safe, lazily refilled).

    ``rate`` tokens accrue per second up to ``burst``; :meth:`try_acquire`
    either takes a token (returns ``0.0``) or returns the seconds until
    one will be available — which the admission gate converts into the
    ``retry_after_ms`` hint clients back off by.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/s")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take ``tokens`` now; return 0.0 on success, else seconds to wait."""
        with self._lock:
            now = self._clock()
            self._tokens = min(self.burst,
                               self._tokens + (now - self._stamp) * self.rate)
            self._stamp = now
            if self._tokens >= tokens:
                self._tokens -= tokens
                return 0.0
            return (tokens - self._tokens) / self.rate


class AdmissionController:
    """Shed work beyond capacity before it costs anything.

    Two independent gates, both optional:

    * ``rate_limit`` requests/s with ``burst`` headroom (token bucket);
    * ``max_inflight`` concurrently admitted requests (queue watermark —
      the bound that prevents queue collapse under sustained overload).

    :meth:`admit` raises :class:`OverloadedError` with a ``retry_after_ms``
    hint when either gate rejects; otherwise it returns a ticket whose
    ``release()`` (or context-manager exit) frees the inflight slot.
    Every decision lands in ``ServeMetrics`` (``admitted``/``shed``) and
    the ``serve.shed`` obs metric stream.
    """

    def __init__(
        self,
        rate_limit: Optional[float] = None,
        burst: Optional[float] = None,
        max_inflight: Optional[int] = None,
        metrics: Optional[ServeMetrics] = None,
        retry_after_ms: float = 50.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.metrics = metrics or ServeMetrics()
        self.retry_after_ms = float(retry_after_ms)
        self.max_inflight = max_inflight
        self._bucket = None
        if rate_limit is not None:
            self._bucket = TokenBucket(rate_limit, burst or max(1.0, rate_limit),
                                       clock=clock)
        self._inflight = 0
        self._lock = threading.Lock()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def admit(self, op: str) -> "AdmissionTicket":
        """Admit one request or raise :class:`OverloadedError` (shed)."""
        if self.max_inflight is not None:
            with self._lock:
                if self._inflight >= self.max_inflight:
                    self.metrics.observe_admission(False)
                    raise OverloadedError(
                        f"server is at its inflight limit "
                        f"({self.max_inflight}); request shed",
                        retry_after_ms=self.retry_after_ms,
                        op=op, inflight=self._inflight,
                    )
                self._inflight += 1
        else:
            with self._lock:
                self._inflight += 1
        if self._bucket is not None:
            wait = self._bucket.try_acquire()
            if wait > 0.0:
                self._release()
                self.metrics.observe_admission(False)
                raise OverloadedError(
                    f"rate limit exceeded ({self._bucket.rate:.0f} req/s); "
                    "request shed",
                    retry_after_ms=max(self.retry_after_ms, wait * 1000.0),
                    op=op,
                )
        self.metrics.observe_admission(True)
        return AdmissionTicket(self)

    def _release(self) -> None:
        with self._lock:
            self._inflight -= 1


class AdmissionTicket:
    """One admitted request's inflight slot (release exactly once)."""

    def __init__(self, controller: AdmissionController):
        self._controller = controller
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class Deadline:
    """An absolute expiry derived from a request's ``deadline_ms`` budget.

    The budget starts when the server admits the request; every later
    stage calls :meth:`check` with its name and the request is dropped
    (structured ``deadline_exceeded`` envelope, per-stage counter) the
    moment the budget is gone — expired work never reaches the encoder.
    """

    __slots__ = ("budget_ms", "expires_at", "_clock")

    def __init__(self, budget_ms: float,
                 clock: Callable[[], float] = time.monotonic):
        if not np.isfinite(budget_ms) or budget_ms < 0:
            raise ValueError("deadline_ms must be a finite value >= 0")
        self.budget_ms = float(budget_ms)
        self._clock = clock
        self.expires_at = clock() + budget_ms / 1000.0

    @property
    def expired(self) -> bool:
        return self._clock() >= self.expires_at

    def remaining_ms(self) -> float:
        return max(0.0, (self.expires_at - self._clock()) * 1000.0)

    def check(self, stage: str, metrics: Optional[ServeMetrics] = None) -> None:
        """Raise :class:`DeadlineExceededError` (and count it) if expired."""
        if self.expired:
            if metrics is not None:
                metrics.observe_deadline_expired(stage)
            raise DeadlineExceededError(
                f"deadline of {self.budget_ms:.0f}ms expired at {stage}",
                stage=stage, budget_ms=self.budget_ms,
            )


#: Health states, in escalation order.
WARMING = "warming"
READY = "ready"
DEGRADED = "degraded"
DRAINING = "draining"


class ServerHealth:
    """Warming → ready → degraded → draining, derived from live signals.

    * ``warming`` until the first successful workload response
      (:meth:`mark_ready`);
    * ``degraded`` while any signal trips: a snapshot failure within the
      last ``window`` outcomes, the recent shed rate above
      ``shed_rate_threshold``, or the embed p99 above ``p99_watermark_ms``;
    * ``draining`` once :meth:`start_drain` is called (terminal — the
      server stops admitting and flushes).

    Readiness (should a balancer send traffic?) is ``ready`` *or*
    ``degraded``: a degraded server still answers, it is just signalling
    that it is past a watermark.
    """

    def __init__(
        self,
        metrics: Optional[ServeMetrics] = None,
        shed_rate_threshold: float = 0.5,
        p99_watermark_ms: Optional[float] = None,
        window: int = 256,
    ):
        if not 0.0 < shed_rate_threshold <= 1.0:
            raise ValueError("shed_rate_threshold must be in (0, 1]")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.metrics = metrics or ServeMetrics()
        self.shed_rate_threshold = float(shed_rate_threshold)
        self.p99_watermark_ms = p99_watermark_ms
        self.window = int(window)
        self._lock = threading.Lock()
        self._warmed = False
        self._draining = False
        self._outcomes: Deque[bool] = deque(maxlen=window)  # True == shed
        self._outcomes_since_snapshot_failure: Optional[int] = None

    # ------------------------------------------------------------------
    # Signal feeds
    # ------------------------------------------------------------------
    def mark_ready(self) -> None:
        with self._lock:
            if not self._warmed:
                self._warmed = True
                emit_event("serve.health_ready")

    def note_outcome(self, shed: bool) -> None:
        """One admission outcome (sheds drive the windowed shed rate)."""
        with self._lock:
            self._outcomes.append(shed)
            if self._outcomes_since_snapshot_failure is not None:
                self._outcomes_since_snapshot_failure += 1

    def note_snapshot_failure(self) -> None:
        """A snapshot load/compute failed; degrades until it ages out."""
        with self._lock:
            self._outcomes_since_snapshot_failure = 0

    def start_drain(self) -> None:
        with self._lock:
            if not self._draining:
                self._draining = True
                emit_event("serve.health_draining")

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    def _degraded_reasons(self) -> List[str]:
        reasons = []
        since = self._outcomes_since_snapshot_failure
        if since is not None and since < self.window:
            reasons.append(
                f"snapshot failure {since} outcomes ago (window {self.window})")
        if self._outcomes:
            rate = sum(self._outcomes) / len(self._outcomes)
            if rate > self.shed_rate_threshold:
                reasons.append(
                    f"shed rate {rate:.2f} over last {len(self._outcomes)} "
                    f"requests (threshold {self.shed_rate_threshold:.2f})")
        if self.p99_watermark_ms is not None:
            p99 = self.metrics.latency("embed").percentile(99) * 1000.0
            if np.isfinite(p99) and p99 > self.p99_watermark_ms:
                reasons.append(
                    f"embed p99 {p99:.1f}ms above watermark "
                    f"{self.p99_watermark_ms:.1f}ms")
        return reasons

    @property
    def state(self) -> str:
        with self._lock:
            if self._draining:
                return DRAINING
            if not self._warmed:
                return WARMING
            return DEGRADED if self._degraded_reasons() else READY

    @property
    def ready(self) -> bool:
        """Whether a load balancer should route traffic here."""
        return self.state in (READY, DEGRADED)

    def check_admitting(self) -> None:
        """Raise :class:`NotReadyError` when the server no longer admits."""
        if self.state == DRAINING:
            raise NotReadyError("server is draining; not admitting new work",
                                state=DRAINING)

    def describe(self) -> dict:
        """JSON-ready health report (the ``health`` op's payload)."""
        with self._lock:
            reasons = [] if self._draining or not self._warmed \
                else self._degraded_reasons()
            outcomes = len(self._outcomes)
            shed = sum(self._outcomes)
        return {
            "state": self.state,
            "ready": self.ready,
            "reasons": reasons,
            "window": {"outcomes": outcomes, "shed": shed},
            "shed_rate_threshold": self.shed_rate_threshold,
            "p99_watermark_ms": self.p99_watermark_ms,
        }


class RetryPolicy:
    """Capped exponential backoff with seeded jitter for serve clients.

    Attempt ``k`` waits ``base_ms * 2**k`` (capped at ``cap_ms``) plus
    uniform jitter of up to ``jitter`` of the delay; a server-provided
    ``retry_after_ms`` hint raises the floor.  The jitter stream is
    seeded so retry schedules are reproducible in tests.  Only the error
    codes in ``retryable_codes`` are retried, and clients must further
    gate on op idempotency (see ``IDEMPOTENT_OPS`` in
    :mod:`repro.serve.server`).
    """

    def __init__(
        self,
        max_retries: int = 3,
        base_ms: float = 10.0,
        cap_ms: float = 2000.0,
        jitter: float = 0.5,
        seed: int = 0,
        retryable_codes: tuple = ("overloaded",),
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if base_ms <= 0 or cap_ms < base_ms:
            raise ValueError("need 0 < base_ms <= cap_ms")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_retries = int(max_retries)
        self.base_ms = float(base_ms)
        self.cap_ms = float(cap_ms)
        self.jitter = float(jitter)
        self.retryable_codes = tuple(retryable_codes)
        self._rng = np.random.default_rng(seed)

    def should_retry(self, response: dict, attempt: int) -> bool:
        """Whether a (parsed) error response warrants attempt ``attempt+1``."""
        if attempt >= self.max_retries or response.get("ok"):
            return False
        error = response.get("error") or {}
        return error.get("code") in self.retryable_codes

    def backoff_ms(self, attempt: int,
                   retry_after_ms: Optional[float] = None) -> float:
        """Delay before attempt ``attempt + 1`` (attempt counts from 0)."""
        delay = min(self.cap_ms, self.base_ms * (2.0 ** attempt))
        if retry_after_ms is not None:
            delay = max(delay, float(retry_after_ms))
        if self.jitter:
            delay += delay * self.jitter * float(self._rng.random())
        return min(delay, self.cap_ms * (1.0 + self.jitter))


def request_with_retries(
    send: Callable[[object], dict],
    payload: object,
    policy: RetryPolicy,
    idempotent: bool,
    sleep: Callable[[float], None] = time.sleep,
) -> dict:
    """Drive ``send`` under ``policy``; shared by both transports' clients.

    Non-idempotent payloads are sent exactly once — a retry of ``rollout``
    after an ambiguous failure could double-apply it.
    """
    attempt = 0
    while True:
        response = send(payload)
        if not idempotent or not policy.should_retry(response, attempt):
            return response
        details = (response.get("error") or {}).get("details") or {}
        delay_ms = policy.backoff_ms(attempt, details.get("retry_after_ms"))
        emit_event("serve.client_retry", attempt=attempt,
                   delay_ms=float(delay_ms))
        sleep(delay_ms / 1000.0)
        attempt += 1
