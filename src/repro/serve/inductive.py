"""Inductive ego-subgraph inference for single nodes and unseen nodes.

An L-layer GCN's output at node ``v`` depends only on the L-hop ego
subgraph around ``v`` — *provided* the normalization is the parent graph's.
A plain ``ego_subgraph`` + ``embed`` is wrong at the boundary: nodes at
distance L have their degrees truncated by the cut, which perturbs
``D̃^{-1/2}(A+I)D̃^{-1/2}`` and contaminates the center through L hops of
propagation.  The encoder here therefore builds the ego adjacency but
scales it with the *true* parent degrees (degree-corrected normalization),
which reproduces the full-graph normalized entries exactly — the sliced
``A_n`` rows are the same floats the offline path produces, and CSR
relabeling preserves each row's summation order.

Two hot-path optimizations keep per-request cost overhead-dominated (the
regime microbatching amortizes):

* the first layer's feature transform ``H0 = X W_0`` is input-independent,
  so it is computed once for the whole base graph and sliced per request —
  slicing the full-graph product is *more* bit-faithful than re-running
  the gemm on ego rows, since they are literally the offline floats;
* ego extraction and degree-corrected normalization run as vectorized
  gathers over the parent CSR arrays (no per-request scipy slicing or
  diag-sandwich products), emitting COO triplets that one
  ``csr_matrix`` call canonicalizes.

Unseen nodes (:class:`EgoQuery`: features + neighbor ids) are spliced
against the cached base graph: the query's L-hop neighborhood is the
(L-1)-hop neighborhood of its declared neighbors, base degrees are bumped
by one for each new edge, and only this delta subgraph is encoded — never
the full graph.

Batched encoding concatenates per-query triplets with block offsets (one
adjacency build, one forward pass for the whole microbatch) and splits the
result with :func:`repro.graphs.batch.split_union_embeddings`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..autograd import Tensor
from ..core.serialization import EncoderArtifact
from ..graphs import Graph
from ..graphs.batch import split_union_embeddings
from ..obs import span
from ..scale import blocks as _blocks
from .errors import MalformedQueryError, UnknownNodeError

#: (rows, cols, data) of a normalized ego block, its local h0 rows, and the
#: center's local index — everything one batch member contributes.
_EgoBlock = Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]


@dataclass
class EgoQuery:
    """An unseen node to splice into the served graph.

    ``features`` is the node's feature vector; ``neighbors`` the parent
    graph ids it attaches to.  A neighborless query is legal — the GCN
    renormalization gives an isolated node a self-loop of weight 1.
    """

    features: np.ndarray
    neighbors: np.ndarray

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=np.float64)
        self.neighbors = np.asarray(self.neighbors, dtype=np.int64).ravel()


class InductiveEncoder:
    """Ego-subgraph GCN inference against a fixed base graph."""

    def __init__(self, artifact: EncoderArtifact, graph: Graph):
        if not artifact.inductive:
            raise ValueError(
                f"{artifact.step_class} produced a transductive "
                f"{artifact.kind!r} artifact; inductive serving needs a GCN"
            )
        if graph.num_features != artifact.in_features:
            raise ValueError(
                f"artifact expects {artifact.in_features} features, "
                f"graph {graph.name!r} has {graph.num_features}"
            )
        self.artifact = artifact
        self.graph = graph
        self.radius = int(artifact.num_layers)
        # Parameters are frozen and every scipy/numpy op here is read-only,
        # so concurrent encodes need no lock; only the lazy caches do.
        self._cache_lock = threading.Lock()
        self._degrees: Optional[np.ndarray] = None
        self._h0: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Lazy per-graph caches
    # ------------------------------------------------------------------
    def _true_degrees(self) -> np.ndarray:
        with self._cache_lock:
            if self._degrees is None:
                self._degrees = np.asarray(
                    self.graph.adjacency.sum(axis=1)
                ).ravel()
            return self._degrees

    def _layer0_transform(self) -> np.ndarray:
        """``H0 = X W_0`` for the whole base graph (sliced per request).

        These are the exact floats ``GCNLayer.forward`` feeds its spmm on
        the offline path (``ops.matmul`` is ``a.data @ b.data``), so ego
        slices of this cache keep served embeddings bit-identical.
        """
        with self._cache_lock:
            if self._h0 is None:
                weight = self.artifact.encoder.layers[0].weight.data
                self._h0 = np.ascontiguousarray(self.graph.features @ weight)
            return self._h0

    def _query_transform(self, features: np.ndarray) -> np.ndarray:
        """First-layer transform of one unseen node's feature row."""
        return features @ self.artifact.encoder.layers[0].weight.data

    # ------------------------------------------------------------------
    # Streaming rebind
    # ------------------------------------------------------------------
    def rebind_graph(self, graph: Graph,
                     refreshed_rows: Optional[np.ndarray] = None) -> None:
        """Swap the base graph for a mutated successor.

        Degrees re-derive lazily on next use; the ``H0 = X W_0`` cache is
        patched incrementally instead of recomputed: rows whose features
        did not change carry over (they *are* the old floats, and
        ``(X W)[i]`` depends only on row ``i``), while added nodes and the
        ``refreshed_rows`` whose features a delta batch rewrote get a
        fresh row-wise transform.
        """
        if graph.num_features != self.artifact.in_features:
            raise ValueError(
                f"artifact expects {self.artifact.in_features} features, "
                f"graph {graph.name!r} has {graph.num_features}"
            )
        refreshed = np.asarray(
            [] if refreshed_rows is None else refreshed_rows,
            dtype=np.int64).ravel()
        with self._cache_lock:
            old_h0 = self._h0
            self.graph = graph
            self._degrees = None
            if old_h0 is None:
                return
            weight = self.artifact.encoder.layers[0].weight.data
            n = graph.num_nodes
            keep = min(old_h0.shape[0], n)
            h0 = np.empty((n, old_h0.shape[1]), dtype=old_h0.dtype)
            h0[:keep] = old_h0[:keep]
            if n > keep:
                h0[keep:] = graph.features[keep:] @ weight
            stale = refreshed[refreshed < keep]
            if stale.size:
                h0[stale] = graph.features[stale] @ weight
            self._h0 = np.ascontiguousarray(h0)

    # ------------------------------------------------------------------
    # Vectorized CSR gathers — shared kernels live in repro.scale.blocks
    # (promoted from here in the scale-layer PR); these thin wrappers bind
    # the served graph so the call sites below read as before.
    # ------------------------------------------------------------------
    def _gather_rows(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(local rows, global cols, values) of the parent rows ``nodes``."""
        return _blocks.gather_rows(self.graph.adjacency, nodes)

    def _ego_nodes(self, seeds: np.ndarray, hops: int) -> np.ndarray:
        """Sorted ids within ``hops`` of any seed (vectorized BFS)."""
        return _blocks.grow_ego(self.graph.adjacency, seeds, hops)

    def _sub_triplets(self, nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triplets of ``A[nodes][:, nodes]`` with the diagonal dropped."""
        return _blocks.sub_triplets(self.graph.adjacency, nodes)

    def _normalized_block(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray,
        true_degrees: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Degree-corrected ``D̃^{-1/2}(A+I)D̃^{-1/2}`` as COO triplets."""
        return _blocks.normalized_block(rows, cols, vals, true_degrees)

    def _forward(self, a_n: sp.csr_matrix, h0: np.ndarray) -> np.ndarray:
        """Drive the frozen layers with a precomputed ``A_n`` and ``H0``.

        Bypasses ``GCN.forward`` deliberately: its internal normalization
        would re-derive degrees from the (truncated) subgraph, and its
        adjacency cache mutates encoder state, which concurrent serving
        must not do.  The first layer starts from the pre-transformed
        ``H0`` rows (see :meth:`_layer0_transform`).
        """
        layers = self.artifact.encoder.layers
        h = layers[0].propagate(a_n, Tensor(h0))
        for layer in layers[1:]:
            h = layer(a_n, h)
        return h.data

    @staticmethod
    def _block_csr(block: _EgoBlock) -> sp.csr_matrix:
        rows, cols, vals, h0, _ = block
        n = h0.shape[0]
        return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))

    # ------------------------------------------------------------------
    # Known nodes
    # ------------------------------------------------------------------
    def _ego_block(self, node: int) -> _EgoBlock:
        """Normalized triplets + h0 rows + local center for one ego."""
        nodes = self._ego_nodes(np.array([node]), self.radius)
        rows, cols, vals = self._sub_triplets(nodes)
        rows, cols, vals = self._normalized_block(
            rows, cols, vals, self._true_degrees()[nodes])
        center = int(np.searchsorted(nodes, node))
        return rows, cols, vals, self._layer0_transform()[nodes], center

    def _check_node(self, node) -> int:
        if isinstance(node, bool) or not isinstance(node, (int, np.integer)):
            raise UnknownNodeError(
                f"node id must be an integer, got {type(node).__name__}",
                node=repr(node),
            )
        value = int(node)
        if not 0 <= value < self.graph.num_nodes:
            raise UnknownNodeError(
                f"node {value} is outside the served graph "
                f"(0..{self.graph.num_nodes - 1})",
                node=value, num_nodes=self.graph.num_nodes,
            )
        return value

    def encode_node(self, node: int) -> np.ndarray:
        """Embedding of an existing node from its ego subgraph only."""
        with span("serve.inductive_encode", node=int(node)):
            block = self._ego_block(self._check_node(node))
            return self._forward(self._block_csr(block), block[3])[block[4]]

    # ------------------------------------------------------------------
    # Unseen nodes
    # ------------------------------------------------------------------
    def validate_query(self, query: EgoQuery) -> EgoQuery:
        features = query.features
        if features.ndim != 1 or features.shape[0] != self.artifact.in_features:
            raise MalformedQueryError(
                f"query features must have shape "
                f"({self.artifact.in_features},), got {features.shape}",
                expected=self.artifact.in_features,
            )
        if not np.all(np.isfinite(features)):
            raise MalformedQueryError("query features contain NaN/Inf")
        neighbors = query.neighbors
        if neighbors.size != np.unique(neighbors).size:
            raise MalformedQueryError(
                "query neighbor list contains duplicates",
                neighbors=neighbors.tolist(),
            )
        bad = neighbors[(neighbors < 0) | (neighbors >= self.graph.num_nodes)]
        if bad.size:
            raise UnknownNodeError(
                f"query neighbors {bad.tolist()} are outside the served graph "
                f"(0..{self.graph.num_nodes - 1})",
                nodes=bad.tolist(), num_nodes=self.graph.num_nodes,
            )
        return query

    def _splice_block(self, query: EgoQuery) -> _EgoBlock:
        """Normalized triplets + h0 rows + local center for a spliced node.

        The spliced node's L-hop ego is itself plus everything within L-1
        hops of its declared neighbors; splice edges add 1 to each declared
        neighbor's true degree, and the new node's degree is its edge count.
        """
        self.validate_query(query)
        neighbors = np.sort(query.neighbors)
        if neighbors.size:
            base_nodes = self._ego_nodes(neighbors, self.radius - 1)
        else:
            base_nodes = np.empty(0, dtype=np.int64)
        m = base_nodes.shape[0]
        rows, cols, vals = self._sub_triplets(base_nodes)
        attach = np.searchsorted(base_nodes, neighbors)
        # Splice edges: neighbor -> new node (column m) and back.
        rows = np.concatenate([rows, attach, np.full(attach.size, m)])
        cols = np.concatenate([cols, np.full(attach.size, m), attach])
        vals = np.concatenate([vals, np.ones(2 * attach.size)])
        true_deg = np.empty(m + 1)
        true_deg[:m] = self._true_degrees()[base_nodes]
        true_deg[attach] += 1.0
        true_deg[m] = float(neighbors.size)
        rows, cols, vals = self._normalized_block(rows, cols, vals, true_deg)
        h0 = np.vstack([self._layer0_transform()[base_nodes],
                        self._query_transform(query.features)[None, :]])
        return rows, cols, vals, h0, m

    def encode_unseen(self, query: EgoQuery) -> np.ndarray:
        """Embedding the frozen encoder would give the spliced node."""
        with span("serve.splice_encode", neighbors=int(query.neighbors.size)):
            block = self._splice_block(query)
            return self._forward(self._block_csr(block), block[3])[block[4]]

    def spliced_graph(self, query: EgoQuery) -> Tuple[Graph, int]:
        """The full base graph with the query node appended (offline oracle).

        Only for verification — serving never materializes this; returns
        the graph and the new node's id.
        """
        self.validate_query(query)
        n = self.graph.num_nodes
        base = self.graph.adjacency
        link = np.zeros((n, 1))
        link[query.neighbors, 0] = 1.0
        adjacency = sp.bmat(
            [[base, sp.csr_matrix(link)], [sp.csr_matrix(link.T), None]],
            format="csr",
        )
        features = np.vstack([self.graph.features, query.features[None, :]])
        # Label-free: the query node has no ground truth, and embedding the
        # spliced graph never reads labels.
        return Graph(adjacency, features, labels=None,
                     name=f"{self.graph.name}[+1]"), n

    # ------------------------------------------------------------------
    # Microbatched encoding
    # ------------------------------------------------------------------
    def _fused_ego_blocks(
        self, centers: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized multi-source ego extraction for a batch of known nodes.

        The kernel (``key = block * N + node`` tagging, one BFS, one row
        gather, one ``searchsorted``) lives in
        :func:`repro.scale.blocks.fused_ego_blocks`; this wrapper slices
        the served ``H0`` cache for the block's global node ids.  Returns
        ``(rows, cols, vals, h0, offsets, centers_local)`` where offsets
        are the block boundaries in the concatenated node order.
        """
        fused = _blocks.fused_ego_blocks(
            self.graph.adjacency, centers, self.radius,
            degrees=self._true_degrees())
        return (fused.rows, fused.cols, fused.vals,
                self._layer0_transform()[fused.nodes],
                fused.offsets, fused.centers)

    def encode_batch(
        self, items: Sequence[Union[int, np.integer, EgoQuery]]
    ) -> List[np.ndarray]:
        """Encode a mixed batch of node ids and splice queries at once.

        Known-node items share one fused extraction (see
        :meth:`_fused_ego_blocks`); splice queries contribute per-item
        blocks.  Everything is stacked block-diagonally into a single
        forward pass — this is the amortization the microbatcher buys.
        Item validation errors raise before any encoding happens; the
        batcher validates per-item first so one bad request cannot poison
        a batch.
        """
        if not items:
            return []
        node_slots: List[int] = []
        centers: List[int] = []
        splices: List[Tuple[int, _EgoBlock]] = []
        for slot, item in enumerate(items):
            if isinstance(item, EgoQuery):
                splices.append((slot, self._splice_block(item)))
            else:
                node_slots.append(slot)
                centers.append(self._check_node(item))
        with span("serve.batch_encode", size=len(items)):
            chunks_rows: List[np.ndarray] = []
            chunks_cols: List[np.ndarray] = []
            chunks_vals: List[np.ndarray] = []
            chunks_h0: List[np.ndarray] = []
            boundaries = [0]
            local_centers: List[int] = []
            if centers:
                rows, cols, vals, h0, offsets, fused_centers = (
                    self._fused_ego_blocks(np.asarray(centers, dtype=np.int64)))
                chunks_rows.append(rows)
                chunks_cols.append(cols)
                chunks_vals.append(vals)
                chunks_h0.append(h0)
                boundaries.extend(int(o) for o in offsets[1:])
                local_centers.extend(int(c) for c in fused_centers)
            for _, block in splices:
                shift = boundaries[-1]
                chunks_rows.append(block[0] + shift)
                chunks_cols.append(block[1] + shift)
                chunks_vals.append(block[2])
                chunks_h0.append(block[3])
                boundaries.append(shift + block[3].shape[0])
                local_centers.append(block[4])
            offsets = np.asarray(boundaries, dtype=np.int64)
            total = int(offsets[-1])
            a_n = sp.csr_matrix(
                (np.concatenate(chunks_vals),
                 (np.concatenate(chunks_rows), np.concatenate(chunks_cols))),
                shape=(total, total))
            stacked = self._forward(a_n, np.vstack(chunks_h0))
            per_block = split_union_embeddings(stacked, offsets)
        results: List[Optional[np.ndarray]] = [None] * len(items)
        ordered_slots = node_slots + [slot for slot, _ in splices]
        for slot, embedding, center in zip(ordered_slots, per_block, local_centers):
            results[slot] = embedding[center]
        return results
