"""Model registry: checkpoint files → versioned frozen encoders.

A :class:`ModelRegistry` turns any digest-valid v2 engine checkpoint (or
legacy v1 E2GCL file) into a :class:`ModelVersion` the server can route
queries to.  Version ids are content-addressed — ``<method>-<digest12>``,
where the digest is the SHA-256 the checkpoint writer stored — so the same
file always yields the same version id and two different sets of weights
can never collide under one id.  Loading reuses the engine's validated
read path (:func:`repro.engine.read_checkpoint` via
:func:`repro.core.serialization.export_encoder`), so a truncated or
bit-flipped checkpoint is rejected at registration time, never at query
time.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Union

from ..baselines import registered_methods
from ..core.serialization import EncoderArtifact, export_encoder
from ..engine import CheckpointCorruptError, checkpoint_digest, find_latest_valid
from ..obs import emit_event
from .errors import ModelNotFoundError, StaleVersionError


def method_for_step_class(step_class: str) -> Optional[str]:
    """Registry method name for a checkpoint's ``step_class``, or None.

    Baseline methods are their own :class:`TrainStep`, so the step class is
    the method class (``GRACE`` → ``grace``); E2GCL checkpoints are written
    by the inner ``E2GCLTrainer`` step, which the method facade owns.
    """
    reverse = {cls.__name__: name for name, cls in registered_methods().items()}
    reverse["E2GCLTrainer"] = "e2gcl"
    return reverse.get(step_class)


@dataclass
class ModelVersion:
    """One registered frozen model, addressable by ``version_id``."""

    version_id: str
    method: Optional[str]
    step_class: str
    digest: str
    artifact: EncoderArtifact
    path: Optional[Path] = None
    meta: dict = field(default_factory=dict)

    @property
    def inductive(self) -> bool:
        return self.artifact.inductive

    def describe(self) -> dict:
        """JSON-ready summary (what ``models`` queries return)."""
        return {
            "version": self.version_id,
            "method": self.method,
            "step_class": self.step_class,
            "kind": self.artifact.kind,
            "inductive": self.inductive,
            "embedding_dim": self.artifact.embedding_dim,
            "num_layers": self.artifact.num_layers,
            "path": str(self.path) if self.path else None,
        }


class ModelRegistry:
    """Thread-safe mapping of version ids to frozen models.

    The most recently registered version is the default target for queries
    that name no version.  Requesting an id that was never registered (or
    was evicted by :meth:`unregister`) raises :class:`StaleVersionError`
    so clients holding an old id get a structured 409, not a KeyError.
    """

    def __init__(self):
        self._versions: "OrderedDict[str, ModelVersion]" = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def load(self, path: Union[str, Path],
             activate: bool = True) -> ModelVersion:
        """Register the checkpoint at ``path`` (file, or directory searched
        for its newest digest-valid checkpoint).

        ``activate=False`` registers the version *without* making it the
        default target — the blue/green candidate path: it can be pinned
        explicitly (shadow traffic) while the active version keeps
        answering unpinned queries, then :meth:`promote` flips it atomically.
        """
        target = Path(path)
        if target.is_dir():
            resolved = find_latest_valid(target)
            if resolved is None:
                raise ModelNotFoundError(
                    f"no digest-valid checkpoint under {target}", path=str(target)
                )
            target = resolved
        if not target.is_file():
            raise ModelNotFoundError(f"no checkpoint at {target}", path=str(target))
        try:
            artifact = export_encoder(target)
            digest = checkpoint_digest(target)
        except (CheckpointCorruptError, ValueError) as exc:
            raise ModelNotFoundError(
                f"cannot load checkpoint {target}: {exc}", path=str(target)
            ) from exc
        method = method_for_step_class(artifact.step_class)
        version_id = f"{method or artifact.step_class.lower()}-{digest[:12]}"
        version = ModelVersion(
            version_id=version_id,
            method=method,
            step_class=artifact.step_class,
            digest=digest,
            artifact=artifact,
            path=target,
        )
        return self._register(version, activate=activate)

    def register_artifact(
        self, artifact: EncoderArtifact, version_id: Optional[str] = None,
        activate: bool = True,
    ) -> ModelVersion:
        """Register an in-memory artifact (tests, checkpoint-free serving)."""
        method = method_for_step_class(artifact.step_class)
        if version_id is None:
            version_id = f"{method or artifact.step_class.lower()}-{artifact.fingerprint[:12]}"
        version = ModelVersion(
            version_id=version_id,
            method=method,
            step_class=artifact.step_class,
            digest=artifact.fingerprint,
            artifact=artifact,
        )
        return self._register(version, activate=activate)

    def _register(self, version: ModelVersion,
                  activate: bool = True) -> ModelVersion:
        with self._lock:
            # Re-registering an id moves it to the end: it becomes latest.
            self._versions.pop(version.version_id, None)
            self._versions[version.version_id] = version
            if not activate and len(self._versions) > 1:
                # Park the candidate at the front so the previously-active
                # version stays the default for unpinned queries.
                self._versions.move_to_end(version.version_id, last=False)
        emit_event("serve.model_registered", version=version.version_id,
                   method=version.method or version.step_class,
                   activate=bool(activate))
        return version

    def promote(self, version_id: str) -> ModelVersion:
        """Atomically make a registered version the default target.

        One ``move_to_end`` under the registry lock — queries racing the
        promotion see either the old default or the new one, never a
        half-state.  Raises :class:`StaleVersionError` for unknown ids.
        """
        with self._lock:
            if version_id not in self._versions:
                raise StaleVersionError(
                    f"model version {version_id!r} is not registered",
                    requested=version_id, available=list(self._versions),
                )
            self._versions.move_to_end(version_id)
            version = self._versions[version_id]
        emit_event("serve.model_promoted", version=version_id)
        return version

    # ------------------------------------------------------------------
    def get(self, version_id: Optional[str] = None) -> ModelVersion:
        """The named version, or the latest-registered when ``None``."""
        with self._lock:
            if version_id is None:
                if not self._versions:
                    raise StaleVersionError("no model versions registered")
                return next(reversed(self._versions.values()))
            found = self._versions.get(version_id)
        if found is None:
            raise StaleVersionError(
                f"model version {version_id!r} is not registered",
                requested=version_id, available=self.versions(),
            )
        return found

    def unregister(self, version_id: str) -> None:
        """Drop a version; later queries for it get :class:`StaleVersionError`."""
        with self._lock:
            if version_id not in self._versions:
                raise StaleVersionError(
                    f"model version {version_id!r} is not registered",
                    requested=version_id,
                )
            del self._versions[version_id]

    def versions(self) -> List[str]:
        """Registered version ids, oldest first (last one is the default)."""
        with self._lock:
            return list(self._versions)

    def describe(self) -> List[dict]:
        with self._lock:
            entries = list(self._versions.values())
        return [entry.describe() for entry in entries]

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)
