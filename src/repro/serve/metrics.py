"""Serving metrics: latency histograms, cache hit rate, batch occupancy.

All counters are thread-safe (queries arrive from a thread pool) and are
mirrored into :mod:`repro.obs` as first-class metric series when a tracer
is active — ``serve.latency`` (attributed by op), ``serve.cache`` (hit
0/1), and ``serve.batch_size`` — so a traced serving run can be analysed
with the same ``repro trace`` tooling as training runs.  With no tracer
the obs calls are one global read each.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from ..obs import emit_metric

# Raw samples kept per histogram.  A closed-loop bench at concurrency 32
# stays far below this; past the cap the reservoir halves by keeping every
# other sample so quantiles stay representative without unbounded memory.
_MAX_SAMPLES = 262_144


class LatencyHistogram:
    """Streaming latency recorder with exact quantiles over a reservoir."""

    def __init__(self, name: str):
        self.name = name
        self._samples: List[float] = []
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._count += 1
            self._total += seconds
            self._samples.append(seconds)
            if len(self._samples) > _MAX_SAMPLES:
                self._samples = self._samples[::2]

    def percentile(self, q: float) -> float:
        """Latency at percentile ``q`` (0-100); NaN with no samples."""
        with self._lock:
            if not self._samples:
                return float("nan")
            return float(np.percentile(self._samples, q))

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> dict:
        with self._lock:
            samples = np.asarray(self._samples, dtype=np.float64)
            count, total = self._count, self._total
        if samples.size == 0:
            return {"count": 0, "mean_s": float("nan"),
                    "p50_s": float("nan"), "p95_s": float("nan"),
                    "p99_s": float("nan")}
        p50, p95, p99 = np.percentile(samples, [50, 95, 99])
        return {
            "count": count,
            "mean_s": total / count,
            "p50_s": float(p50),
            "p95_s": float(p95),
            "p99_s": float(p99),
        }


class ServeMetrics:
    """All serving-side counters for one :class:`EmbeddingServer`."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latency: Dict[str, LatencyHistogram] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.batches = 0
        self.batched_requests = 0
        self.errors: Dict[str, int] = {}
        # Resilience counters (admission control, deadlines, lifecycle).
        self.admitted = 0
        self.shed = 0
        self.deadline_expired: Dict[str, int] = {}
        self.encoded_requests = 0
        self.snapshot_failures = 0
        self.worker_restarts = 0
        self.dirty_shutdown = False
        # Streaming counters (delta-aware invalidation, lazy refresh).
        self.invalidations = 0
        self.invalidated_rows = 0
        self.preserved_rows = 0
        self.stale_refreshes = 0
        self.graph_rebinds = 0

    # ------------------------------------------------------------------
    def latency(self, op: str) -> LatencyHistogram:
        with self._lock:
            hist = self._latency.get(op)
            if hist is None:
                hist = self._latency[op] = LatencyHistogram(op)
            return hist

    def observe(self, op: str, seconds: float) -> None:
        self.latency(op).record(seconds)
        emit_metric("serve.latency", seconds, op=op)

    def observe_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        emit_metric("serve.cache", 1.0 if hit else 0.0)

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += size
        emit_metric("serve.batch_size", float(size))

    def observe_error(self, code: str) -> None:
        with self._lock:
            self.errors[code] = self.errors.get(code, 0) + 1
        emit_metric("serve.error", 1.0, code=code)

    def observe_admission(self, admitted: bool) -> None:
        """One admission decision: accepted into the server, or shed."""
        with self._lock:
            if admitted:
                self.admitted += 1
            else:
                self.shed += 1
        emit_metric("serve.shed" if not admitted else "serve.admitted", 1.0)

    def observe_deadline_expired(self, stage: str) -> None:
        """A request's deadline ran out at ``stage``; its work was dropped."""
        with self._lock:
            self.deadline_expired[stage] = self.deadline_expired.get(stage, 0) + 1
        emit_metric("serve.deadline_expired", 1.0, stage=stage)

    def observe_encoded(self, count: int = 1) -> None:
        """``count`` requests actually reached the encoder forward pass."""
        with self._lock:
            self.encoded_requests += count

    def observe_snapshot_failure(self) -> None:
        with self._lock:
            self.snapshot_failures += 1
        emit_metric("serve.snapshot_failure", 1.0)

    def observe_worker_restart(self) -> None:
        with self._lock:
            self.worker_restarts += 1
        emit_metric("serve.worker_restart", 1.0)

    def observe_invalidation(self, invalidated: int, preserved: int) -> None:
        """One blast-radius invalidation: rows dropped vs. rows kept warm."""
        with self._lock:
            self.invalidations += 1
            self.invalidated_rows += invalidated
            self.preserved_rows += preserved
        emit_metric("serve.invalidated_rows", float(invalidated))
        emit_metric("serve.preserved_rows", float(preserved))

    def observe_stale_refresh(self, count: int = 1) -> None:
        """``count`` stale rows were lazily recomputed on read."""
        with self._lock:
            self.stale_refreshes += count
        emit_metric("serve.stale_refresh", float(count))

    def observe_graph_rebind(self) -> None:
        """The served graph was swapped for a mutated successor."""
        with self._lock:
            self.graph_rebinds += 1
        emit_metric("serve.graph_rebind", 1.0)

    def mark_dirty_shutdown(self) -> None:
        """A shutdown left a worker thread behind (close join timed out)."""
        with self._lock:
            self.dirty_shutdown = True
        emit_metric("serve.dirty_shutdown", 1.0)

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> Optional[float]:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    @property
    def shed_rate(self) -> Optional[float]:
        total = self.admitted + self.shed
        return self.shed / total if total else None

    @property
    def deadline_expired_total(self) -> int:
        with self._lock:
            return sum(self.deadline_expired.values())

    @property
    def mean_batch_occupancy(self) -> Optional[float]:
        return self.batched_requests / self.batches if self.batches else None

    def snapshot(self) -> dict:
        """JSON-ready view of every counter (what ``stats`` queries return)."""
        with self._lock:
            latency = {op: h.summary() for op, h in self._latency.items()}
            errors = dict(self.errors)
            deadline_expired = dict(self.deadline_expired)
        return {
            "latency": latency,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": self.cache_hit_rate,
            },
            "batching": {
                "batches": self.batches,
                "batched_requests": self.batched_requests,
                "mean_occupancy": self.mean_batch_occupancy,
            },
            "admission": {
                "admitted": self.admitted,
                "shed": self.shed,
                "shed_rate": self.shed_rate,
            },
            "deadlines": {
                "expired": deadline_expired,
                "expired_total": sum(deadline_expired.values()),
                "encoded_requests": self.encoded_requests,
            },
            "lifecycle": {
                "snapshot_failures": self.snapshot_failures,
                "worker_restarts": self.worker_restarts,
                "dirty_shutdown": self.dirty_shutdown,
            },
            "streaming": {
                "invalidations": self.invalidations,
                "invalidated_rows": self.invalidated_rows,
                "preserved_rows": self.preserved_rows,
                "stale_refreshes": self.stale_refreshes,
                "graph_rebinds": self.graph_rebinds,
            },
            "errors": errors,
        }
